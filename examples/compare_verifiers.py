"""Compare ABONN against the baselines on benchmark-suite instances.

Run with::

    python examples/compare_verifiers.py

This mirrors the paper's RQ1 setting at a small scale: a handful of
verification problems from one model family, solved by BaB-baseline, the
αβ-CROWN-like baseline, ABONN and the exact MILP oracle.
"""

from repro import (
    AbonnVerifier,
    AlphaBetaCrownVerifier,
    BaBBaselineVerifier,
    Budget,
    MilpVerifier,
)
from repro.experiments import SuiteConfig, generate_suite, render_table


def main() -> None:
    print("generating a small benchmark suite (one model family)...")
    suite = generate_suite(SuiteConfig(families=("MNIST_L2",), instances_per_family=5,
                                       seed=0))
    budget = Budget(max_nodes=600, max_seconds=60)

    verifiers = {
        "BaB-baseline": BaBBaselineVerifier(),
        "alpha-beta-CROWN": AlphaBetaCrownVerifier(),
        "ABONN": AbonnVerifier(),
        "MILP oracle": MilpVerifier(),
    }

    rows = []
    for instance in suite.instances:
        network = suite.network_for(instance)
        row = [instance.instance_id, f"{instance.epsilon:.4f}"]
        for verifier in verifiers.values():
            result = verifier.verify(network, instance.spec, budget.copy())
            row.append(f"{result.status.value[:9]}/{result.nodes_explored}n"
                       f"/{result.elapsed_seconds:.2f}s")
        rows.append(row)

    headers = ["instance", "epsilon"] + [f"{name} (verdict/nodes/time)"
                                         for name in verifiers]
    print(render_table(headers, rows, title="Verifier comparison"))


if __name__ == "__main__":
    main()
