"""Export a robustness problem to VNN-LIB, reload it, and verify it.

Run with::

    python examples/vnnlib_workflow.py

VNN-COMP distributes verification problems as ``.vnnlib`` files.  This
example shows the full interoperability loop supported by the library:
build a property programmatically, write it to disk in VNN-LIB syntax, load
it back, and verify the reloaded property with ABONN.
"""

import tempfile
from pathlib import Path

from repro import AbonnVerifier, Budget, load_vnnlib, local_robustness_spec, save_vnnlib
from repro.nn import build_trained_model


def main() -> None:
    network, dataset = build_trained_model("MNIST_L2", seed=0)
    image, label = dataset.sample(3)
    reference = image.reshape(-1)

    spec = local_robustness_spec(reference, 0.03, label, dataset.num_classes,
                                 name="exported-robustness-problem")

    with tempfile.TemporaryDirectory() as directory:
        path = Path(directory) / "problem.vnnlib"
        save_vnnlib(spec, path)
        print(f"wrote {path} ({path.stat().st_size} bytes)")
        print("--- first lines of the property file ---")
        print("\n".join(path.read_text().splitlines()[:6]))
        print("...\n")

        reloaded = load_vnnlib(path)
        print(f"reloaded property: {reloaded.output_spec.num_constraints} output "
              f"constraints over {reloaded.input_dim} inputs")

        result = AbonnVerifier().verify(network, reloaded,
                                        Budget(max_nodes=1000, max_seconds=30))
        print(f"verification result: {result.summary()}")


if __name__ == "__main__":
    main()
