"""Quickstart: verify local robustness of a small trained classifier with ABONN.

Run with::

    python examples/quickstart.py

The script trains a tiny classifier on the synthetic blob dataset, builds an
L∞ local-robustness specification around one test image, and verifies it
with ABONN.  It then enlarges the perturbation radius until the property is
violated and prints the counterexample that ABONN finds.
"""

import numpy as np

from repro import AbonnVerifier, Budget, local_robustness_spec
from repro.datasets import make_blob_dataset
from repro.nn import Dense, Flatten, Network, ReLU, TrainingConfig, accuracy, train_network


def main() -> None:
    # 1. Train a small classifier on the synthetic "MNIST-like" dataset.
    dataset = make_blob_dataset(count=240, size=6, num_classes=3, seed=0)
    network = Network(
        [Flatten(), Dense(36, 16, seed=0), ReLU(), Dense(16, 12, seed=1), ReLU(),
         Dense(12, dataset.num_classes, seed=2)],
        dataset.image_shape, name="quickstart-classifier")
    train_network(network, dataset.inputs, dataset.labels, TrainingConfig(epochs=20))
    print(network.summary())
    print(f"training accuracy: {accuracy(network, dataset.inputs, dataset.labels):.2%}\n")

    # 2. Pick a correctly-classified reference image.
    image, label = dataset.sample(0)
    reference = image.reshape(-1)
    assert int(network.predict(reference.reshape(1, -1))[0]) == label

    # 3. Verify robustness for increasing perturbation radii.
    verifier = AbonnVerifier()
    for epsilon in (0.01, 0.05, 0.1, 0.2, 0.4):
        spec = local_robustness_spec(reference, epsilon, label, dataset.num_classes,
                                     name=f"robustness eps={epsilon}")
        result = verifier.verify(network, spec, Budget(max_nodes=2000, max_seconds=30))
        print(f"eps={epsilon:<5}: {result.summary()}")
        if result.counterexample is not None:
            adversarial_label = int(network.predict(
                result.counterexample.reshape(1, -1))[0])
            distance = float(np.max(np.abs(result.counterexample - reference)))
            print(f"        counterexample: label {label} -> {adversarial_label}, "
                  f"L-inf distance {distance:.4f}")
            break


if __name__ == "__main__":
    main()
