"""A miniature version of the paper's RQ2 hyperparameter study (Fig. 5).

Run with::

    python examples/hyperparameter_study.py

ABONN has two hyperparameters: λ (the weight of the depth attribute in the
counterexample potentiality, Def. 1) and c (the UCB1 exploration constant).
This example sweeps a small λ × c grid over a few benchmark instances and
prints the three Fig. 5 panels: average speedup over BaB-baseline, average
time, and the number of solved problems.
"""

from repro import AbonnConfig, AbonnVerifier, BaBBaselineVerifier, Budget
from repro.experiments import (
    SuiteConfig,
    fig5_hyperparameter_grid,
    generate_suite,
    render_fig5,
    run_suite,
)


def main() -> None:
    suite = generate_suite(SuiteConfig(families=("MNIST_L4",), instances_per_family=4,
                                       seed=0))
    budget = Budget(max_nodes=400, max_seconds=30)

    print(f"running BaB-baseline on {len(suite)} instances...")
    baseline = run_suite(lambda: BaBBaselineVerifier(), suite, budget)

    print("sweeping lambda x c...")
    grid = fig5_hyperparameter_grid(
        suite, baseline,
        make_abonn=lambda lam, c: AbonnVerifier(AbonnConfig(lam=lam, exploration=c)),
        budget=budget,
        lambdas=(0.0, 0.5, 1.0),
        explorations=(0.0, 0.2, 1.0),
        timeout_seconds=30.0)

    print()
    print(render_fig5(grid))
    best = grid.best_cell("average_speedup")
    print(f"\nbest average speedup: lambda={best.lam:g}, c={best.exploration:g} "
          f"({best.average_speedup:.2f}x)")


if __name__ == "__main__":
    main()
