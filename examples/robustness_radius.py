"""Compute certified and empirical robustness radii for a trained model.

Run with::

    python examples/robustness_radius.py

For several test inputs of the CIFAR-like model family the script reports

* the radius certified by the root DeepPoly bound alone,
* the radius certified by complete verification with ABONN (binary search),
* the empirical radius at which a PGD attack finds an adversarial example.

The gap between the first two columns is exactly the value added by branch
and bound; the gap between the last two brackets the true robustness radius.
"""

import numpy as np

from repro import AbonnVerifier, Budget, local_robustness_spec
from repro.experiments import root_certified_radius
from repro.nn import build_trained_model
from repro.verifiers import AttackConfig, empirical_robustness_radius
from repro.verifiers.result import VerificationStatus


def certified_radius_with_abonn(network, reference, label, num_classes,
                                upper: float, steps: int = 8) -> float:
    """Largest radius (up to ``upper``) that ABONN certifies within its budget."""
    low, high = 0.0, upper
    for _ in range(steps):
        mid = 0.5 * (low + high)
        spec = local_robustness_spec(reference, mid, label, num_classes)
        result = AbonnVerifier().verify(network, spec,
                                        Budget(max_nodes=800, max_seconds=20))
        if result.status == VerificationStatus.VERIFIED:
            low = mid
        else:
            high = mid
    return low


def main() -> None:
    network, dataset = build_trained_model("CIFAR_BASE", seed=0)
    print(f"model: {network.name}, {network.num_relu_neurons} ReLU neurons\n")
    print(f"{'input':>6} {'label':>5} {'root-certified':>15} "
          f"{'ABONN-certified':>16} {'attack radius':>14}")

    shown = 0
    for index in range(dataset.count):
        image, label = dataset.sample(index)
        reference = image.reshape(-1)
        if int(network.predict(reference.reshape(1, -1))[0]) != label:
            continue
        root_radius = root_certified_radius(network, reference, label,
                                            dataset.num_classes, steps=8)
        attack_radius = empirical_robustness_radius(network, reference, label,
                                                    dataset.num_classes, upper=0.5,
                                                    config=AttackConfig(steps=30,
                                                                        restarts=3))
        abonn_radius = certified_radius_with_abonn(network, reference, label,
                                                   dataset.num_classes,
                                                   upper=attack_radius)
        print(f"{index:>6} {label:>5} {root_radius:>15.4f} "
              f"{abonn_radius:>16.4f} {attack_radius:>14.4f}")
        shown += 1
        if shown >= 5:
            break


if __name__ == "__main__":
    main()
