"""Serve a batch of robustness queries through the verification service.

Run with::

    python examples/serve_robustness.py

The script plays a small verification "server": a mixed batch of local
robustness queries on one trained model — several references, several radii,
some radii queried twice (as bisection searches and dashboards do) — is
submitted to one :class:`repro.service.VerificationService` and the results
stream back in completion order.  Along the way it demonstrates

* **priorities** — the urgent query (highest radius) is submitted last with
  high priority and still finishes among the first;
* **deadlines** — one query carries a tight wall-clock deadline and comes
  back TIMEOUT with ``deadline_exceeded`` when it cannot finish in time;
* **cross-request cache reuse** — repeated queries share their problem
  fingerprint's LP/bound caches, visible in the per-job cache deltas;
* the :func:`repro.specs.robustness.robustness_radius_sweep_service`
  convenience, which runs a whole radius ladder as service jobs.
"""

import numpy as np

from repro import Budget
from repro.nn import build_trained_model
from repro.service import ServiceConfig, VerificationService
from repro.specs import local_robustness_spec, robustness_radius_sweep_service


def main() -> None:
    network, dataset = build_trained_model("MNIST_L2", seed=0)
    print(f"model: {network.name}, {network.num_relu_neurons} ReLU neurons\n")

    service = VerificationService(ServiceConfig(pool_size=2,
                                                rounds_per_slice=2))
    budget = Budget(max_nodes=300)

    # A mixed query batch: three references, two radii each, the middle
    # radius queried twice so its second query runs against warm caches.
    submitted = {}
    for index in range(3):
        image, label = dataset.sample(index)
        reference = image.reshape(-1)
        for epsilon in (0.01, 0.03, 0.03):
            spec = local_robustness_spec(reference, epsilon, label,
                                         dataset.num_classes)
            job_id = service.submit(network, spec, budget=budget.copy())
            submitted[job_id] = (index, epsilon)
    # The urgent query arrives last but runs at high priority, and one
    # query gets a (deliberately tight) deadline.
    image, label = dataset.sample(3)
    urgent_spec = local_robustness_spec(image.reshape(-1), 0.05, label,
                                        dataset.num_classes)
    job_id = service.submit(network, urgent_spec, budget=budget.copy(),
                            priority=10)
    submitted[job_id] = (3, 0.05)
    deadline_spec = local_robustness_spec(image.reshape(-1), 0.02, label,
                                          dataset.num_classes)
    job_id = service.submit(network, deadline_spec, budget=budget.copy(),
                            deadline_seconds=0.05)
    submitted[job_id] = (3, 0.02)

    print(f"{'job':>7} {'input':>5} {'eps':>6} {'verdict':>10} "
          f"{'slices':>6} {'lp hits':>8} {'bound hits':>10} {'note':>9}")
    for job in service.as_completed():
        index, epsilon = submitted[job.job_id]
        if job.ok:
            verdict = job.result.status.value
            note = "deadline" if job.deadline_exceeded else ""
        else:
            verdict = "error"
            note = job.error.kind
        lp_hits = job.cache_stats.get("lp_hits", 0)
        bound_hits = (job.cache_stats.get("bound_layer_hits", 0)
                      + job.cache_stats.get("bound_report_hits", 0))
        print(f"{job.job_id:>7} {index:>5} {epsilon:>6.3f} {verdict:>10} "
              f"{job.slices:>6} {lp_hits:>8} {bound_hits:>10} {note:>9}")

    stats = service.stats()
    pool = stats["pool"]
    print(f"\nservice: {stats['jobs_completed']} jobs in {stats['slices']} "
          f"slices over {stats['pool_size']} workers; "
          f"{pool['fingerprints']} problem fingerprints, "
          f"{pool['model_cache_hits']} warm-model digest hits")

    # The radius-sweep helper runs a whole epsilon ladder as service jobs.
    image, label = dataset.sample(0)
    results, sweep_service = robustness_radius_sweep_service(
        network, image.reshape(-1), epsilons=np.linspace(0.005, 0.04, 4),
        label=label, num_classes=dataset.num_classes, budget=budget)
    print("\nradius sweep through the service:")
    for epsilon, result in results:
        print(f"  eps={epsilon:.4f}: {result.status.value} "
              f"({result.nodes_explored} nodes)")


if __name__ == "__main__":
    main()
