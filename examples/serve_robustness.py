"""Serve a batch of robustness queries through the verification service.

Run with::

    python examples/serve_robustness.py [--transport cooperative|threaded|process]

The script plays a small verification "server": a mixed batch of local
robustness queries on one trained model — several references, several radii,
some radii queried twice (as bisection searches and dashboards do) — is
submitted to one :class:`repro.service.VerificationService` and the results
stream back in completion order.  Along the way it demonstrates

* **transport selection** — the same batch runs unchanged on the
  caller-driven cooperative loop, worker threads, or supervised worker
  *processes* (``--transport``), with byte-identical verdicts;
* **priorities** — the urgent query (highest radius) is submitted last with
  high priority and still finishes among the first;
* **deadlines** — one query carries a tight wall-clock deadline and comes
  back TIMEOUT with ``deadline_exceeded`` when it cannot finish in time;
* **cross-request cache reuse** — repeated queries share their problem
  fingerprint's LP/bound caches, visible in the per-job cache deltas;
* **crash resilience** — a final section SIGKILLs a worker process
  mid-round on purpose and shows the supervised process transport restart
  the worker and retry the job to the same verdict, with the attempt
  count visible on the :class:`~repro.service.jobs.JobResult`;
* the :func:`repro.specs.robustness.robustness_radius_sweep_service`
  convenience, which runs a whole radius ladder as service jobs.
"""

import argparse
import functools
import os
import signal
import tempfile

import numpy as np

from repro import Budget
from repro.core.abonn import AbonnVerifier
from repro.nn import build_trained_model, dense_network
from repro.service import RetryPolicy, ServiceConfig, VerificationService
from repro.specs import local_robustness_spec, robustness_radius_sweep_service
from repro.verifiers.result import VerifierRun


class _CrashOnceRun(VerifierRun):
    """Delegates to a real run, but SIGKILLs its own process once.

    The marker file makes the crash once-per-path: the first ``step()``
    creates it and kills the worker process mid-round (no cleanup — the
    cheap stand-in for a segfault or an OOM kill); the retried job's fresh
    run sees the marker and delegates untouched.
    """

    def __init__(self, inner, marker):
        self.inner = inner
        self.marker = marker

    def step(self):
        if not os.path.exists(self.marker):
            with open(self.marker, "w"):
                pass
            os.kill(os.getpid(), signal.SIGKILL)
        return self.inner.step()

    def interrupt(self):
        return self.inner.interrupt()


class _CrashOnceVerifier:
    """A real cache-wired verifier whose first run kills its process."""

    def __init__(self, bundle, marker):
        self.inner = AbonnVerifier(lp_cache=bundle.lp_cache,
                                   bound_cache=bundle.bound_cache)
        self.marker = marker

    def start_run(self, network, spec, budget=None):
        return _CrashOnceRun(self.inner.start_run(network, spec, budget),
                             self.marker)


def _crash_once(marker, bundle):
    """Module-level (hence picklable) crash-once verifier factory."""
    return _CrashOnceVerifier(bundle, marker)


def demo_crash_resilience() -> None:
    """SIGKILL a worker process mid-round; watch the service recover."""
    print("\ncrash resilience (process transport):")
    network = dense_network([4, 8, 6, 3], seed=1)
    reference = np.array([0.45, 0.55, 0.5, 0.4])
    spec = local_robustness_spec(reference, 0.08, 0, 3)
    marker = os.path.join(tempfile.mkdtemp(prefix="serve-robustness-"),
                          "crashed-once")
    with VerificationService(ServiceConfig(
            pool_size=1, transport="process",
            retry=RetryPolicy(backoff_seconds=0.01))) as service:
        job_id = service.submit(
            network, spec, budget=Budget(max_nodes=60),
            verifier_factory=functools.partial(_crash_once, marker))
        done, = service.run_until_complete()
        assert done.job_id == job_id
        stats = service.stats()
    verdict = done.result.status.value if done.ok else done.error.kind
    print(f"  job {done.job_id}: verdict={verdict} after "
          f"attempts={done.attempts} (worker crashes seen by this job: "
          f"{done.worker_crashes})")
    print(f"  service: worker_crashes={stats['worker_crashes']}, "
          f"worker_restarts={stats['worker_restarts']}, "
          f"retries={stats['retries']}, "
          f"transport_downgrades={stats['transport_downgrades']}")
    assert done.ok and done.attempts == 2, "expected a survive-and-retry run"


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--transport", default="cooperative",
                        choices=("cooperative", "threaded", "process"),
                        help="execution transport for the query batch "
                             "(default: cooperative)")
    args = parser.parse_args()

    network, dataset = build_trained_model("MNIST_L2", seed=0)
    print(f"model: {network.name}, {network.num_relu_neurons} ReLU neurons")
    print(f"transport: {args.transport}\n")

    service = VerificationService(ServiceConfig(pool_size=2,
                                                rounds_per_slice=2,
                                                transport=args.transport))
    budget = Budget(max_nodes=300)

    # A mixed query batch: three references, two radii each, the middle
    # radius queried twice so its second query runs against warm caches.
    submitted = {}
    for index in range(3):
        image, label = dataset.sample(index)
        reference = image.reshape(-1)
        for epsilon in (0.01, 0.03, 0.03):
            spec = local_robustness_spec(reference, epsilon, label,
                                         dataset.num_classes)
            job_id = service.submit(network, spec, budget=budget.copy())
            submitted[job_id] = (index, epsilon)
    # The urgent query arrives last but runs at high priority, and one
    # query gets a (deliberately tight) deadline.
    image, label = dataset.sample(3)
    urgent_spec = local_robustness_spec(image.reshape(-1), 0.05, label,
                                        dataset.num_classes)
    job_id = service.submit(network, urgent_spec, budget=budget.copy(),
                            priority=10)
    submitted[job_id] = (3, 0.05)
    deadline_spec = local_robustness_spec(image.reshape(-1), 0.02, label,
                                          dataset.num_classes)
    job_id = service.submit(network, deadline_spec, budget=budget.copy(),
                            deadline_seconds=0.05)
    submitted[job_id] = (3, 0.02)

    print(f"{'job':>7} {'input':>5} {'eps':>6} {'verdict':>10} "
          f"{'slices':>6} {'lp hits':>8} {'bound hits':>10} {'note':>9}")
    for job in service.as_completed():
        index, epsilon = submitted[job.job_id]
        if job.ok:
            verdict = job.result.status.value
            note = "deadline" if job.deadline_exceeded else ""
        else:
            verdict = "error"
            note = job.error.kind
        lp_hits = job.cache_stats.get("lp_hits", 0)
        bound_hits = (job.cache_stats.get("bound_layer_hits", 0)
                      + job.cache_stats.get("bound_report_hits", 0))
        print(f"{job.job_id:>7} {index:>5} {epsilon:>6.3f} {verdict:>10} "
              f"{job.slices:>6} {lp_hits:>8} {bound_hits:>10} {note:>9}")

    stats = service.stats()
    pool = stats["pool"]
    print(f"\nservice: {stats['jobs_completed']} jobs in {stats['slices']} "
          f"slices over {stats['pool_size']} workers; "
          f"{pool['fingerprints']} problem fingerprints, "
          f"{pool['model_cache_hits']} warm-model digest hits")
    service.shutdown()

    # The radius-sweep helper runs a whole epsilon ladder as service jobs.
    image, label = dataset.sample(0)
    results, sweep_service = robustness_radius_sweep_service(
        network, image.reshape(-1), epsilons=np.linspace(0.005, 0.04, 4),
        label=label, num_classes=dataset.num_classes, budget=budget)
    print("\nradius sweep through the service:")
    for epsilon, result in results:
        print(f"  eps={epsilon:.4f}: {result.status.value} "
              f"({result.nodes_explored} nodes)")

    # Finally: kill a worker process mid-round and survive it.
    demo_crash_resilience()


if __name__ == "__main__":
    main()
