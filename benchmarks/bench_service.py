"""Benchmark: verification-service throughput, latency and cache reuse.

Models the service's target workload — repeated queries against a small set
of verification problems (radius bisections, dashboards, repeated API
calls) — and compares:

* ``sequential`` — every job run cold, one at a time, on a fresh
  ``AbonnVerifier`` with fresh caches (the pre-service behaviour);
* ``service`` — the same jobs multiplexed through one
  :class:`repro.service.VerificationService` at pool sizes {1, 2, 4},
  where jobs sharing a problem fingerprint share that fingerprint's
  LP/bound cache bundle and the pool-wide warm-model digest;
* ``transports`` — a *multi-fingerprint* workload (distinct wide problems,
  so jobs shard across all workers) run on each execution transport:
  ``cooperative``, ``threaded`` (real worker threads; numpy's BLAS kernels
  release the GIL, so distinct shards overlap on multi-core hosts),
  ``process`` (one supervised worker process per shard — parallelism plus
  crash isolation, paying a pipe round-trip per slice) and ``async`` (the
  asyncio front-end over the threaded pool).  The process rows also report
  the robustness counters (job retries, worker crashes/restarts) so the
  regression gate notices a bench run that only passed by retrying.

The cooperative service's speedup is *reuse*, not parallelism: repeat jobs
serve their bound passes and leaf LPs from the warm fingerprint bundle.
The threaded transport adds parallelism on top — its speedup over
cooperative is reported per run together with ``cpu_count``, since it
cannot exceed 1.0x on a single-core host.  Every job's verdict, node
charges and counterexample are gated for equality with its sequential-cold
run on *every* transport, and the report includes throughput (jobs/s and
speedup over sequential), latency percentiles (p50/p95/p99 of per-job
submit-to-finish wall time) and cache reuse rates (per-job LP/bound hit
deltas).

Job priorities are drawn from a per-job RNG seeded by the job *index*
(:func:`_job_rng`), never from numpy's global state, so a threaded run is
replayable bit-for-bit no matter what other code touched ``np.random``.

Results are printed as JSON and written to
``benchmarks/output/BENCH_service.json``; the stable top-level ``summary``
block feeds ``tools/check_bench_regression.py`` against the committed
baseline.  Smoke mode (``REPRO_BENCH_SMOKE=1`` or ``--smoke``) shrinks the
workload for CI.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import os
import sys
import time
from pathlib import Path
from typing import Dict, List

import numpy as np

from repro.core.abonn import AbonnVerifier
from repro.nn import dense_network
from repro.nn.zoo import MODEL_FAMILIES
from repro.service import (
    AsyncVerificationService,
    JobRequest,
    ServiceConfig,
    VerificationService,
)
from repro.specs.robustness import local_robustness_spec
from repro.utils.timing import Budget
from repro.verifiers.appver import ApproximateVerifier

OUTPUT_PATH = Path(__file__).resolve().parent / "output" / "BENCH_service.json"

FULL_FAMILIES = ("MNIST_L2", "MNIST_L4")
SMOKE_FAMILIES = ("MNIST_L2",)
POOL_SIZES = (1, 2, 4)

#: Execution transports compared on the multi-fingerprint workload.
TRANSPORTS = ("cooperative", "threaded", "process", "async")
#: Workers for the transport comparison (jobs shard across all of them).
TRANSPORT_POOL_SIZE = 4

#: Root of every derived per-job seed (see :func:`_job_rng`).
BENCH_SEED = 8


def _job_rng(job_index: int) -> np.random.Generator:
    """The RNG of job ``job_index`` — a pure function of the index.

    Seeded from ``(BENCH_SEED, job_index)`` and *never* from numpy's global
    state: two bench runs draw identical per-job values (priorities,
    references) regardless of what other code did to ``np.random`` in
    between, which is what makes threaded runs replayable.
    """
    return np.random.default_rng((BENCH_SEED, int(job_index)))


def _smoke_mode(args: argparse.Namespace) -> bool:
    return args.smoke or os.environ.get("REPRO_BENCH_SMOKE", "") not in ("", "0")


def _branching_problem(family_name: str):
    """A robustness problem whose root needs splits (the BaB regime)."""
    family = MODEL_FAMILIES[family_name]
    dataset = family.build_dataset(0)
    network = family.build_network(dataset, 0)
    for reference_index in range(8):
        reference = dataset.inputs[reference_index].reshape(-1)
        label = int(network.predict(reference.reshape(1, -1))[0])
        for epsilon in (0.005, 0.01, 0.02, 0.05, 0.1, 0.2, 0.4):
            spec = local_robustness_spec(reference, epsilon,
                                         label, dataset.num_classes)
            outcome = ApproximateVerifier(network, spec,
                                          use_cache=False).evaluate()
            if outcome.needs_split:
                return network, spec, epsilon
    raise RuntimeError(f"no branching problem found for {family_name}")


def _make_workload(families, repeats: int):
    """``(network, spec)`` jobs: each family's problem, ``repeats`` times.

    Jobs are interleaved across families (A B A B …) the way concurrent
    clients would submit them, so cross-request reuse happens under
    realistic mixing rather than back-to-back repeats.
    """
    problems = [_branching_problem(name) + (name,) for name in families]
    # A tiny dense problem that resolves leaf LPs within a few nodes, so the
    # workload also exercises cross-request LP-cache reuse (the family
    # problems rarely reach fully decided leaves at smoke budgets).
    tiny_network = dense_network([6, 10, 8, 4], seed=1)
    tiny_reference = np.full(6, 0.5)
    tiny_label = int(tiny_network.predict(tiny_reference.reshape(1, -1))[0])
    tiny_spec = local_robustness_spec(tiny_reference, 0.1, tiny_label, 4)
    problems.append((tiny_network, tiny_spec, 0.1, "TINY"))
    jobs = []
    for repeat in range(repeats):
        for network, spec, epsilon, name in problems:
            jobs.append({"network": network, "spec": spec,
                         "family": name, "epsilon": epsilon,
                         "repeat": repeat})
    return jobs


def _percentile(values: List[float], fraction: float) -> float:
    """Nearest-rank percentile of a non-empty sample."""
    ordered = sorted(values)
    rank = min(len(ordered) - 1, max(0, int(round(fraction * (len(ordered) - 1)))))
    return ordered[rank]


def _result_key(result) -> tuple:
    cex = result.counterexample
    return (result.status.value, result.nodes_explored, result.tree_size,
            None if cex is None else tuple(np.asarray(cex).round(12).tolist()))


def bench_sequential(jobs, max_nodes: int) -> Dict:
    """Every job cold, one at a time — the baseline the service must beat."""
    latencies = []
    keys = []
    start = time.perf_counter()
    for job in jobs:
        job_start = time.perf_counter()
        result = AbonnVerifier().verify(job["network"], job["spec"],
                                        Budget(max_nodes=max_nodes))
        latencies.append(time.perf_counter() - job_start)
        keys.append(_result_key(result))
    total = time.perf_counter() - start
    return {
        "total_seconds": total,
        "throughput_jobs_per_sec": len(jobs) / total if total else 0.0,
        "latency_p50": _percentile(latencies, 0.50),
        "latency_p95": _percentile(latencies, 0.95),
        "latency_p99": _percentile(latencies, 0.99),
        "result_keys": keys,
    }


def bench_service(jobs, max_nodes: int, pool_size: int,
                  sequential: Dict) -> Dict:
    """The same jobs through one service; equality-gated against cold runs."""
    service = VerificationService(ServiceConfig(pool_size=pool_size,
                                                rounds_per_slice=4))
    start = time.perf_counter()
    job_ids = [service.submit(job["network"], job["spec"],
                              budget=Budget(max_nodes=max_nodes))
               for job in jobs]
    results = {done.job_id: done for done in service.as_completed()}
    total = time.perf_counter() - start

    latencies = []
    lp_hits = lp_misses = bound_hits = bound_misses = 0
    verdicts_identical = True
    for index, job_id in enumerate(job_ids):
        done = results[job_id]
        assert done.ok, f"service job failed: {done.error}"
        latencies.append(done.latency_seconds)
        lp_hits += done.cache_stats.get("lp_hits", 0)
        lp_misses += done.cache_stats.get("lp_misses", 0)
        bound_hits += (done.cache_stats.get("bound_layer_hits", 0)
                       + done.cache_stats.get("bound_report_hits", 0))
        bound_misses += (done.cache_stats.get("bound_layer_misses", 0)
                         + done.cache_stats.get("bound_report_misses", 0))
        if _result_key(done.result) != sequential["result_keys"][index]:
            verdicts_identical = False
    stats = service.stats()
    throughput = len(jobs) / total if total else 0.0
    return {
        "pool_size": pool_size,
        "total_seconds": total,
        "throughput_jobs_per_sec": throughput,
        "throughput_speedup": (throughput
                               / sequential["throughput_jobs_per_sec"]
                               if sequential["throughput_jobs_per_sec"]
                               else 0.0),
        "latency_p50": _percentile(latencies, 0.50),
        "latency_p95": _percentile(latencies, 0.95),
        "latency_p99": _percentile(latencies, 0.99),
        "p95_latency_ratio": (_percentile(latencies, 0.95)
                              / sequential["latency_p95"]
                              if sequential["latency_p95"] else 0.0),
        "verdicts_identical": verdicts_identical,
        "lp_hits": lp_hits,
        "lp_hit_rate": lp_hits / (lp_hits + lp_misses)
        if lp_hits + lp_misses else 0.0,
        "bound_hits": bound_hits,
        "bound_hit_rate": bound_hits / (bound_hits + bound_misses)
        if bound_hits + bound_misses else 0.0,
        "slices": stats["slices"],
        "fingerprints": stats["pool"]["fingerprints"],
        "model_cache_hits": stats["pool"]["model_cache_hits"],
    }


def _wide_problem(index: int, smoke: bool):
    """One distinct wide dense problem (its own fingerprint and shard).

    Wide layers keep each driver round inside numpy's BLAS kernels — which
    release the GIL — so distinct fingerprints genuinely overlap on the
    threaded transport.  The reference comes from the problem's own
    :func:`_job_rng` stream, not global numpy state.
    """
    shape = [48, 96, 96, 6] if smoke else [96, 192, 192, 8]
    network = dense_network(shape, seed=100 + index)
    rng = _job_rng(index)
    reference = rng.uniform(0.35, 0.65, size=shape[0])
    label = int(network.predict(reference.reshape(1, -1))[0])
    spec = local_robustness_spec(reference, 0.04, label, shape[-1])
    return network, spec


def _transport_workload(smoke: bool):
    """Multi-fingerprint jobs with RNG-derived (replayable) priorities."""
    num_problems = 6 if smoke else 8
    repeats = 2 if smoke else 3
    problems = [_wide_problem(index, smoke) for index in range(num_problems)]
    jobs = []
    for repeat in range(repeats):
        for problem_index, (network, spec) in enumerate(problems):
            job_index = len(jobs)
            priority = int(_job_rng(job_index).integers(0, 5))
            jobs.append({"network": network, "spec": spec,
                         "family": f"WIDE_{problem_index}",
                         "priority": priority, "repeat": repeat})
    return jobs


def _transport_requests(jobs, max_nodes: int) -> List[JobRequest]:
    return [JobRequest(network=job["network"], spec=job["spec"],
                       budget=Budget(max_nodes=max_nodes),
                       priority=job["priority"])
            for job in jobs]


async def _run_async(requests) -> List:
    service = AsyncVerificationService(
        ServiceConfig(pool_size=TRANSPORT_POOL_SIZE, rounds_per_slice=4),
        max_pending=64)
    async with service:
        return await service.run(requests)


def bench_transport(jobs, max_nodes: int, transport: str,
                    sequential: Dict) -> Dict:
    """The multi-fingerprint workload on one transport, equality-gated."""
    requests = _transport_requests(jobs, max_nodes)
    start = time.perf_counter()
    if transport == "async":
        results = asyncio.run(_run_async(requests))
    else:
        service = VerificationService(
            ServiceConfig(pool_size=TRANSPORT_POOL_SIZE, rounds_per_slice=4,
                          transport=transport))
        with service:
            service.submit_many(requests)
            results = service.run_until_complete()
    total = time.perf_counter() - start

    verdicts_identical = True
    latencies = []
    job_retries = 0
    for index, done in enumerate(results):
        assert done.ok, f"{transport} job failed: {done.error}"
        latencies.append(done.latency_seconds)
        job_retries += max(0, done.attempts - 1)
        if _result_key(done.result) != sequential["result_keys"][index]:
            verdicts_identical = False
    throughput = len(jobs) / total if total else 0.0
    row = {
        "transport": transport,
        "pool_size": TRANSPORT_POOL_SIZE,
        "total_seconds": total,
        "throughput_jobs_per_sec": throughput,
        "latency_p50": _percentile(latencies, 0.50),
        "latency_p95": _percentile(latencies, 0.95),
        "verdicts_identical": verdicts_identical,
        "job_retries": job_retries,
    }
    if transport == "process":
        stats = service.stats()
        row["worker_crashes"] = stats["worker_crashes"]
        row["worker_restarts"] = stats["worker_restarts"]
        row["transport_downgrades"] = len(stats["transport_downgrades"])
    return row


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true",
                        help="tiny workload for CI")
    args = parser.parse_args(argv)
    smoke = _smoke_mode(args)

    families = SMOKE_FAMILIES if smoke else FULL_FAMILIES
    repeats = 4 if smoke else 6
    max_nodes = 64 if smoke else 256

    jobs = _make_workload(families, repeats)
    sequential = bench_sequential(jobs, max_nodes)
    service_rows = [bench_service(jobs, max_nodes, pool_size, sequential)
                    for pool_size in POOL_SIZES]

    transport_jobs = _transport_workload(smoke)
    transport_max_nodes = 24 if smoke else 64
    transport_sequential = bench_sequential(transport_jobs,
                                            transport_max_nodes)
    transport_rows = [bench_transport(transport_jobs, transport_max_nodes,
                                      transport, transport_sequential)
                      for transport in TRANSPORTS]
    by_transport = {row["transport"]: row for row in transport_rows}
    cooperative_tput = by_transport["cooperative"]["throughput_jobs_per_sec"]

    summary = {
        "smoke": smoke,
        "jobs": len(jobs),
        # Acceptance: every multiplexed job's verdict/charges/counterexample
        # identical to its sequential cold run at every pool size; >1.5x
        # throughput over sequential on this shared-fingerprint workload
        # (the repeats run against warm caches) with nonzero cross-request
        # cache hits; p95 latency bounded relative to a cold run.
        "service_verdicts_identical": all(row["verdicts_identical"]
                                          for row in service_rows),
        "service_min_throughput_speedup": min(row["throughput_speedup"]
                                              for row in service_rows),
        "service_min_lp_hit_rate": min(row["lp_hit_rate"]
                                       for row in service_rows),
        "service_min_bound_hit_rate": min(row["bound_hit_rate"]
                                          for row in service_rows),
        "service_total_lp_hits": sum(row["lp_hits"] for row in service_rows),
        "service_total_bound_hits": sum(row["bound_hits"]
                                        for row in service_rows),
        "service_max_p95_latency_ratio": max(row["p95_latency_ratio"]
                                             for row in service_rows),
        # Transport acceptance: identical verdicts on every backend; the
        # threaded speedup over cooperative is parallelism and therefore
        # machine-dependent — gate it only where cpu_count allows it.
        "transport_verdicts_identical": all(row["verdicts_identical"]
                                            for row in transport_rows),
        "threaded_speedup_over_cooperative": (
            by_transport["threaded"]["throughput_jobs_per_sec"]
            / cooperative_tput if cooperative_tput else 0.0),
        "process_speedup_over_cooperative": (
            by_transport["process"]["throughput_jobs_per_sec"]
            / cooperative_tput if cooperative_tput else 0.0),
        "async_speedup_over_cooperative": (
            by_transport["async"]["throughput_jobs_per_sec"]
            / cooperative_tput if cooperative_tput else 0.0),
        # Robustness: a healthy bench run needs no retries and loses no
        # workers — nonzero values mean the run only passed by retrying.
        "total_job_retries": sum(row["job_retries"]
                                 for row in transport_rows),
        "process_worker_crashes": by_transport["process"]["worker_crashes"],
        "process_transport_downgrades": (
            by_transport["process"]["transport_downgrades"]),
        "cpu_count": os.cpu_count() or 1,
    }
    payload = {
        "benchmark": "verification_service",
        "max_nodes": max_nodes,
        "summary": summary,
        "sequential": {key: value for key, value in sequential.items()
                       if key != "result_keys"},
        "service": service_rows,
        "transports": transport_rows,
    }

    text = json.dumps(payload, indent=2)
    print(text)
    OUTPUT_PATH.parent.mkdir(parents=True, exist_ok=True)
    OUTPUT_PATH.write_text(text + "\n")
    return 0


if __name__ == "__main__":
    sys.exit(main())
