"""Benchmark: verification-service throughput, latency and cache reuse.

Models the service's target workload — repeated queries against a small set
of verification problems (radius bisections, dashboards, repeated API
calls) — and compares:

* ``sequential`` — every job run cold, one at a time, on a fresh
  ``AbonnVerifier`` with fresh caches (the pre-service behaviour);
* ``service`` — the same jobs multiplexed through one
  :class:`repro.service.VerificationService` at pool sizes {1, 2, 4},
  where jobs sharing a problem fingerprint share that fingerprint's
  LP/bound cache bundle and the pool-wide warm-model digest.

The service is cooperative and deterministic, so its speedup is *reuse*,
not parallelism: repeat jobs serve their bound passes and leaf LPs from the
warm fingerprint bundle.  Every job's verdict, node charges and
counterexample are gated for equality with its sequential-cold run, and the
report includes throughput (jobs/s and speedup over sequential), latency
percentiles (p50/p95/p99 of per-job submit-to-finish wall time) and cache
reuse rates (per-job LP/bound hit deltas).

Results are printed as JSON and written to
``benchmarks/output/BENCH_service.json``; the stable top-level ``summary``
block feeds ``tools/check_bench_regression.py`` against the committed
baseline.  Smoke mode (``REPRO_BENCH_SMOKE=1`` or ``--smoke``) shrinks the
workload for CI.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from pathlib import Path
from typing import Dict, List

import numpy as np

from repro.core.abonn import AbonnVerifier
from repro.nn import dense_network
from repro.nn.zoo import MODEL_FAMILIES
from repro.service import ServiceConfig, VerificationService
from repro.specs.robustness import local_robustness_spec
from repro.utils.timing import Budget
from repro.verifiers.appver import ApproximateVerifier

OUTPUT_PATH = Path(__file__).resolve().parent / "output" / "BENCH_service.json"

FULL_FAMILIES = ("MNIST_L2", "MNIST_L4")
SMOKE_FAMILIES = ("MNIST_L2",)
POOL_SIZES = (1, 2, 4)


def _smoke_mode(args: argparse.Namespace) -> bool:
    return args.smoke or os.environ.get("REPRO_BENCH_SMOKE", "") not in ("", "0")


def _branching_problem(family_name: str):
    """A robustness problem whose root needs splits (the BaB regime)."""
    family = MODEL_FAMILIES[family_name]
    dataset = family.build_dataset(0)
    network = family.build_network(dataset, 0)
    for reference_index in range(8):
        reference = dataset.inputs[reference_index].reshape(-1)
        label = int(network.predict(reference.reshape(1, -1))[0])
        for epsilon in (0.005, 0.01, 0.02, 0.05, 0.1, 0.2, 0.4):
            spec = local_robustness_spec(reference, epsilon,
                                         label, dataset.num_classes)
            outcome = ApproximateVerifier(network, spec,
                                          use_cache=False).evaluate()
            if outcome.needs_split:
                return network, spec, epsilon
    raise RuntimeError(f"no branching problem found for {family_name}")


def _make_workload(families, repeats: int):
    """``(network, spec)`` jobs: each family's problem, ``repeats`` times.

    Jobs are interleaved across families (A B A B …) the way concurrent
    clients would submit them, so cross-request reuse happens under
    realistic mixing rather than back-to-back repeats.
    """
    problems = [_branching_problem(name) + (name,) for name in families]
    # A tiny dense problem that resolves leaf LPs within a few nodes, so the
    # workload also exercises cross-request LP-cache reuse (the family
    # problems rarely reach fully decided leaves at smoke budgets).
    tiny_network = dense_network([6, 10, 8, 4], seed=1)
    tiny_reference = np.full(6, 0.5)
    tiny_label = int(tiny_network.predict(tiny_reference.reshape(1, -1))[0])
    tiny_spec = local_robustness_spec(tiny_reference, 0.1, tiny_label, 4)
    problems.append((tiny_network, tiny_spec, 0.1, "TINY"))
    jobs = []
    for repeat in range(repeats):
        for network, spec, epsilon, name in problems:
            jobs.append({"network": network, "spec": spec,
                         "family": name, "epsilon": epsilon,
                         "repeat": repeat})
    return jobs


def _percentile(values: List[float], fraction: float) -> float:
    """Nearest-rank percentile of a non-empty sample."""
    ordered = sorted(values)
    rank = min(len(ordered) - 1, max(0, int(round(fraction * (len(ordered) - 1)))))
    return ordered[rank]


def _result_key(result) -> tuple:
    cex = result.counterexample
    return (result.status.value, result.nodes_explored, result.tree_size,
            None if cex is None else tuple(np.asarray(cex).round(12).tolist()))


def bench_sequential(jobs, max_nodes: int) -> Dict:
    """Every job cold, one at a time — the baseline the service must beat."""
    latencies = []
    keys = []
    start = time.perf_counter()
    for job in jobs:
        job_start = time.perf_counter()
        result = AbonnVerifier().verify(job["network"], job["spec"],
                                        Budget(max_nodes=max_nodes))
        latencies.append(time.perf_counter() - job_start)
        keys.append(_result_key(result))
    total = time.perf_counter() - start
    return {
        "total_seconds": total,
        "throughput_jobs_per_sec": len(jobs) / total if total else 0.0,
        "latency_p50": _percentile(latencies, 0.50),
        "latency_p95": _percentile(latencies, 0.95),
        "latency_p99": _percentile(latencies, 0.99),
        "result_keys": keys,
    }


def bench_service(jobs, max_nodes: int, pool_size: int,
                  sequential: Dict) -> Dict:
    """The same jobs through one service; equality-gated against cold runs."""
    service = VerificationService(ServiceConfig(pool_size=pool_size,
                                                rounds_per_slice=4))
    start = time.perf_counter()
    job_ids = [service.submit(job["network"], job["spec"],
                              budget=Budget(max_nodes=max_nodes))
               for job in jobs]
    results = {done.job_id: done for done in service.as_completed()}
    total = time.perf_counter() - start

    latencies = []
    lp_hits = lp_misses = bound_hits = bound_misses = 0
    verdicts_identical = True
    for index, job_id in enumerate(job_ids):
        done = results[job_id]
        assert done.ok, f"service job failed: {done.error}"
        latencies.append(done.latency_seconds)
        lp_hits += done.cache_stats.get("lp_hits", 0)
        lp_misses += done.cache_stats.get("lp_misses", 0)
        bound_hits += (done.cache_stats.get("bound_layer_hits", 0)
                       + done.cache_stats.get("bound_report_hits", 0))
        bound_misses += (done.cache_stats.get("bound_layer_misses", 0)
                         + done.cache_stats.get("bound_report_misses", 0))
        if _result_key(done.result) != sequential["result_keys"][index]:
            verdicts_identical = False
    stats = service.stats()
    throughput = len(jobs) / total if total else 0.0
    return {
        "pool_size": pool_size,
        "total_seconds": total,
        "throughput_jobs_per_sec": throughput,
        "throughput_speedup": (throughput
                               / sequential["throughput_jobs_per_sec"]
                               if sequential["throughput_jobs_per_sec"]
                               else 0.0),
        "latency_p50": _percentile(latencies, 0.50),
        "latency_p95": _percentile(latencies, 0.95),
        "latency_p99": _percentile(latencies, 0.99),
        "p95_latency_ratio": (_percentile(latencies, 0.95)
                              / sequential["latency_p95"]
                              if sequential["latency_p95"] else 0.0),
        "verdicts_identical": verdicts_identical,
        "lp_hits": lp_hits,
        "lp_hit_rate": lp_hits / (lp_hits + lp_misses)
        if lp_hits + lp_misses else 0.0,
        "bound_hits": bound_hits,
        "bound_hit_rate": bound_hits / (bound_hits + bound_misses)
        if bound_hits + bound_misses else 0.0,
        "slices": stats["slices"],
        "fingerprints": stats["pool"]["fingerprints"],
        "model_cache_hits": stats["pool"]["model_cache_hits"],
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true",
                        help="tiny workload for CI")
    args = parser.parse_args(argv)
    smoke = _smoke_mode(args)

    families = SMOKE_FAMILIES if smoke else FULL_FAMILIES
    repeats = 4 if smoke else 6
    max_nodes = 64 if smoke else 256

    jobs = _make_workload(families, repeats)
    sequential = bench_sequential(jobs, max_nodes)
    service_rows = [bench_service(jobs, max_nodes, pool_size, sequential)
                    for pool_size in POOL_SIZES]

    summary = {
        "smoke": smoke,
        "jobs": len(jobs),
        # Acceptance: every multiplexed job's verdict/charges/counterexample
        # identical to its sequential cold run at every pool size; >1.5x
        # throughput over sequential on this shared-fingerprint workload
        # (the repeats run against warm caches) with nonzero cross-request
        # cache hits; p95 latency bounded relative to a cold run.
        "service_verdicts_identical": all(row["verdicts_identical"]
                                          for row in service_rows),
        "service_min_throughput_speedup": min(row["throughput_speedup"]
                                              for row in service_rows),
        "service_min_lp_hit_rate": min(row["lp_hit_rate"]
                                       for row in service_rows),
        "service_min_bound_hit_rate": min(row["bound_hit_rate"]
                                          for row in service_rows),
        "service_total_lp_hits": sum(row["lp_hits"] for row in service_rows),
        "service_total_bound_hits": sum(row["bound_hits"]
                                        for row in service_rows),
        "service_max_p95_latency_ratio": max(row["p95_latency_ratio"]
                                             for row in service_rows),
    }
    payload = {
        "benchmark": "verification_service",
        "max_nodes": max_nodes,
        "summary": summary,
        "sequential": {key: value for key, value in sequential.items()
                       if key != "result_keys"},
        "service": service_rows,
    }

    text = json.dumps(payload, indent=2)
    print(text)
    OUTPUT_PATH.parent.mkdir(parents=True, exist_ok=True)
    OUTPUT_PATH.write_text(text + "\n")
    return 0


if __name__ == "__main__":
    sys.exit(main())
