"""Fig. 4 (RQ1) — per-instance speedup of ABONN over BaB-baseline.

For every suite instance the scatter point is (ABONN time, speedup =
T_BaB-baseline / T_ABONN).  The bench prints a per-family summary of the
scatter (mean/median/max speedup, share of instances above 1x) and persists
the raw points as CSV for external plotting.
"""

from bench_harness import get_run, get_suite, save_output
from repro.experiments import fig4_speedup_scatter, render_fig4, rows_to_csv
from repro.experiments.figures import scatter_points_csv_rows


def test_fig4_speedup_over_baseline(benchmark):
    get_suite()

    def run_both():
        return get_run("ABONN"), get_run("BaB-baseline")

    abonn, baseline = benchmark.pedantic(run_both, rounds=1, iterations=1)
    scatter = fig4_speedup_scatter(abonn, baseline)
    save_output("fig4_speedup_summary.txt", render_fig4(scatter))
    csv_text = rows_to_csv(["family", "instance", "abonn_time_s", "speedup",
                            "node_speedup"], scatter_points_csv_rows(scatter))
    save_output("fig4_speedup_points.csv", csv_text.strip())

    assert sum(len(points) for points in scatter.values()) == len(get_suite())
    for points in scatter.values():
        for point in points:
            assert point.speedup > 0
