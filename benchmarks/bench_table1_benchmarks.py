"""Table I — details of the benchmarks (models, #neurons, #instances).

Regenerates the paper's Table I for the synthetic-substrate suite: the five
model families, their architectures and ReLU counts, and the number of
verification instances generated per family.
"""

from bench_harness import get_suite, save_output
from repro.experiments import render_table1


def test_table1_benchmark_details(benchmark):
    suite = benchmark.pedantic(get_suite, rounds=1, iterations=1)
    text = render_table1(suite)
    save_output("table1_benchmarks.txt", text)
    assert len(suite) > 0
    assert all(count > 0 for count in suite.counts().values())
