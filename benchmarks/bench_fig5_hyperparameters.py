"""Fig. 5 (RQ2) — impact of the hyperparameters λ and c.

Sweeps ABONN over the paper's grid (λ ∈ {0, 0.5, 1}, c ∈ {0, 0.2, ..., 1.0})
on the MNIST_L4 family (the family whose solved counts in the paper's
Fig. 5c match Table II's MNIST_L4 row) and reports the three panels:
average speedup w.r.t. BaB-baseline, average time, and solved problems.
"""

from bench_harness import (
    get_run,
    get_suite,
    per_instance_budget,
    save_output,
    timeout_charge_seconds,
)
from repro.core import AbonnConfig, AbonnVerifier
from repro.experiments import fig5_hyperparameter_grid, render_fig5

LAMBDAS = (0.0, 0.5, 1.0)
EXPLORATIONS = (0.0, 0.2, 0.4, 0.6, 0.8, 1.0)


def _grid_instances():
    suite = get_suite()
    family = "MNIST_L4" if "MNIST_L4" in suite.families else suite.families[0]
    return suite, suite.by_family(family)


def test_fig5_hyperparameter_grid(benchmark):
    suite, instances = _grid_instances()
    baseline = get_run("BaB-baseline")

    def sweep():
        return fig5_hyperparameter_grid(
            suite, baseline,
            make_abonn=lambda lam, c: AbonnVerifier(AbonnConfig(lam=lam, exploration=c)),
            budget=per_instance_budget(),
            lambdas=LAMBDAS,
            explorations=EXPLORATIONS,
            instances=instances,
            timeout_seconds=timeout_charge_seconds())

    grid = benchmark.pedantic(sweep, rounds=1, iterations=1)
    save_output("fig5_hyperparameters.txt", render_fig5(grid))

    assert len(grid.cells) == len(LAMBDAS) * len(EXPLORATIONS)
    # Every cell solved a consistent subset of the evaluation instances.
    assert all(0 <= cell.solved <= len(instances) for cell in grid.cells)
