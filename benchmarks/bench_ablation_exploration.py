"""Ablation — pure exploitation vs balanced UCB1 exploration (§V-B discussion).

The paper observes that pure exploitation (c = 0) can win on individual
problems but a balanced c = 0.2 is better on average, and that large c
degrades performance.  This ablation runs ABONN with c ∈ {0, 0.2, 1.0} over
the suite and reports solved counts and average times.
"""

from bench_harness import (
    get_suite,
    per_instance_budget,
    save_output,
    timeout_charge_seconds,
)
from repro.core import AbonnConfig, AbonnVerifier
from repro.experiments import average_time, render_table, run_suite, solved_count

EXPLORATIONS = (0.0, 0.2, 1.0)


def test_ablation_exploration_constant(benchmark):
    suite = get_suite()

    def sweep():
        outcome = {}
        for c in EXPLORATIONS:
            outcome[c] = run_suite(
                lambda c=c: AbonnVerifier(AbonnConfig(exploration=c)),
                suite, per_instance_budget())
        return outcome

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    rows = []
    for c, result in results.items():
        rows.append([f"c={c:g}", solved_count(result.runs),
                     round(average_time(result.runs, timeout_charge_seconds()), 3),
                     round(sum(run.nodes for run in result.runs) / len(result.runs), 1)])
    text = render_table(["configuration", "solved", "avg time (s)", "avg nodes"], rows,
                        title="Ablation: UCB1 exploration constant (exploitation vs "
                              "exploration)")
    save_output("ablation_exploration.txt", text)
    assert all(len(result) == len(suite) for result in results.values())
