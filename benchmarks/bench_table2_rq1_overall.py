"""Table II (RQ1) — overall comparison of the three verifiers.

Runs BaB-baseline, the αβ-CROWN-like baseline and ABONN over the whole
benchmark suite with the same per-instance budget, and reports the number of
solved instances and the average time per model family, exactly as the
paper's Table II does.
"""

from bench_harness import (
    get_matrix,
    get_suite,
    save_output,
    timeout_charge_seconds,
)
from repro.experiments import render_table2, solved_count


def test_table2_rq1_overall_comparison(benchmark):
    suite = get_suite()
    results = benchmark.pedantic(get_matrix, rounds=1, iterations=1)
    text = render_table2(suite, results, timeout_seconds=timeout_charge_seconds())
    save_output("table2_rq1_overall.txt", text)

    # Sanity: every verifier ran every instance, and solved counts are sane.
    for name, result in results.items():
        assert len(result) == len(suite), name
        assert 0 <= solved_count(result.runs) <= len(suite)
