"""Ablation — interaction of ABONN with different ReLU branching heuristics.

The paper notes (§V-B, RQ3) that ABONN's adaptive exploration interacts with
the ReLU selection heuristic, and names improving that interaction as future
work.  This ablation runs ABONN with each available branching heuristic over
a subset of the suite and reports solved counts, average times and average
tree sizes.
"""

from bench_harness import (
    get_suite,
    per_instance_budget,
    save_output,
    timeout_charge_seconds,
)
from repro.core import AbonnConfig, AbonnVerifier
from repro.experiments import average_nodes, average_time, render_table, run_suite, solved_count

HEURISTICS = ("deepsplit", "babsr", "widest", "random")


def test_ablation_branching_heuristics(benchmark):
    suite = get_suite()
    # A subset keeps the sweep affordable: the first two instances per family.
    instances = []
    for family in suite.families:
        instances.extend(suite.by_family(family)[:2])

    def sweep():
        outcome = {}
        for heuristic in HEURISTICS:
            outcome[heuristic] = run_suite(
                lambda heuristic=heuristic: AbonnVerifier(
                    AbonnConfig(heuristic=heuristic)),
                suite, per_instance_budget(), instances=instances)
        return outcome

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    rows = []
    for heuristic, result in results.items():
        rows.append([heuristic, solved_count(result.runs),
                     round(average_time(result.runs, timeout_charge_seconds()), 3),
                     round(average_nodes(result.runs), 1)])
    text = render_table(["heuristic", "solved", "avg time (s)", "avg nodes"], rows,
                        title="Ablation: ABONN with different branching heuristics")
    save_output("ablation_heuristics.txt", text)
    assert all(len(result) == len(instances) for result in results.values())
