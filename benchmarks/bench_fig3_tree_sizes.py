"""Fig. 3 — distribution of the sizes of the BaB-baseline trees.

Runs BaB-baseline over every suite instance and bins the resulting tree
sizes into the paper's histogram buckets (0-10, 11-50, ..., 1000-).
"""

from bench_harness import get_run, get_suite, save_output
from repro.experiments import fig3_tree_size_histogram, render_fig3


def test_fig3_tree_size_distribution(benchmark):
    get_suite()  # build the suite outside the timed section
    baseline = benchmark.pedantic(lambda: get_run("BaB-baseline"), rounds=1, iterations=1)
    histogram = fig3_tree_size_histogram(baseline)
    save_output("fig3_tree_sizes.txt", render_fig3(histogram))
    total = sum(sum(counts.values()) for counts in histogram.values())
    assert total == len(get_suite())
