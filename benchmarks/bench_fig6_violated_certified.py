"""Fig. 6 (RQ3) — BaB-baseline vs ABONN on violated and certified problems.

Splits the suite instances into violated / certified groups (using the union
of conclusive verdicts as ground truth) and reports the five-number summary
of verification time for BaB-baseline and ABONN on each group, for the two
model families the paper shows (one dense, one convolutional).
"""

from bench_harness import get_matrix, get_suite, save_output, timeout_charge_seconds
from repro.experiments import fig6_violated_certified, render_fig6


def _families_of_interest(suite):
    chosen = [name for name in ("MNIST_L2", "CIFAR_DEEP") if name in suite.families]
    return chosen or list(suite.families[:2])


def test_fig6_violated_vs_certified(benchmark):
    suite = get_suite()
    results = benchmark.pedantic(get_matrix, rounds=1, iterations=1)
    comparison = {name: results[name] for name in ("BaB-baseline", "ABONN")}
    boxes = fig6_violated_certified(suite, comparison,
                                    families=_families_of_interest(suite),
                                    timeout_seconds=timeout_charge_seconds())
    save_output("fig6_violated_certified.txt", render_fig6(boxes))

    assert boxes, "the RQ3 breakdown must produce at least one group"
    families = {box.family for box in boxes}
    assert families <= set(suite.families)
