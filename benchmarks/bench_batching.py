"""Micro-benchmark: batched vs sequential AppVer throughput.

Models the hot path of every BaB-style verifier in the library — expanding
the phase-split children of already-bounded parent sub-problems — and
measures AppVer calls/second on the seed synthetic model families in three
modes:

* ``sequential``      — one ``evaluate`` call per child, cache off (the
  pre-batching seed behaviour);
* ``batched``         — one ``evaluate_batch`` call for all children,
  cache off (pure batching);
* ``engine``          — ``evaluate_batch`` with the split-aware bound
  cache, parents already bounded (the shipped default: children reuse
  every cached layer below their newly decided neuron).

With ``--frontier`` the benchmark additionally runs the ABONN verifier
end-to-end at several ``frontier_size`` values on the dense seed families
and reports, per run, the verdict, throughput, and the *realised*
``evaluate_batch`` size histogram from the verifier's own stats — so the
batch sizes the frontier actually achieves are observable in the JSON
instead of inferred from the micro-benchmark.

With ``--lp`` the benchmark exercises the batched + cached leaf-LP path:

* a micro-benchmark solves a workload of fully phase-decided leaves
  (sibling-heavy, as frontier rounds produce them) one-by-one via
  ``solve_leaf_lp``, batched via ``solve_leaf_lp_batch``, and batched again
  against a warm ``LpCache`` — asserting identical optima and reporting
  the cache hit/solve counters; the stacked multi-objective row solve
  (``stack_rows=True``) is additionally gated for optima equal to the
  per-row path;
* end-to-end ABONN runs at ``frontier_size ∈ {1, 2, 8}`` *share* one
  ``LpCache`` per problem (sound: the cache key is the canonical split
  assignment scoped by the problem fingerprint), so re-visited leaves
  across the sweep never re-solve — verdicts must not depend on the
  frontier size or on cache hits.

With ``--incremental`` the benchmark measures the incremental (rank-1
parent-pass reuse) bound path: ABONN runs at ``K ∈ {1, 2, 8}`` with the
incremental path on and off must produce identical verdicts, node charges
and counterexamples, and a replay of the recorded ``K=8`` frontier rounds
(mode-interleaved repetitions, min per round) must show the per-child
bound-time speedup the acceptance gate requires (≥1.5x median on the dense
families in full mode).

With ``--cascade`` the benchmark measures the precision-cascade dispatcher
(IBP → relaxed-incremental DeepPoly → exact): ABONN runs at
``K ∈ {1, 2, 8}`` with the cascade on and off must produce identical
verdicts, node charges and counterexamples (prefilter stages only ever
*verify*, and the IBP stage is restricted to finite bounds precisely so
the trajectory cannot change), and a replay of the recorded ``K=8``
frontier rounds reports per-stage decide rates, the fraction of children
decided before the exact stage, and the net per-child bound time cascade
on vs. off.

Results are printed as JSON and written to
``benchmarks/output/BENCH_batching.json`` so future runs can track the
speedup; a stable top-level ``summary`` block (median per-child bound
times, LP solves, cache hit rates) feeds
``tools/check_bench_regression.py``, which CI runs against the committed
baseline.  Smoke mode (``REPRO_BENCH_SMOKE=1`` or ``--smoke``) shrinks the
workload so the benchmark runs in CI in a few seconds.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from statistics import median
from pathlib import Path
from typing import Dict, List, Tuple

import numpy as np

from repro.bounds.cache import LpCache
from repro.bounds.splits import ACTIVE, INACTIVE, ReluSplit, SplitAssignment
from repro.core.abonn import AbonnVerifier
from repro.core.config import AbonnConfig
from repro.nn.zoo import MODEL_FAMILIES
from repro.specs.robustness import local_robustness_spec
from repro.utils.timing import Budget
from repro.verifiers.appver import ApproximateVerifier, CascadeConfig
from repro.verifiers.milp import solve_leaf_lp, solve_leaf_lp_batch

OUTPUT_PATH = Path(__file__).resolve().parent / "output" / "BENCH_batching.json"

FULL_FAMILIES = ("MNIST_L2", "MNIST_L4", "CIFAR_BASE", "CIFAR_DEEP")
SMOKE_FAMILIES = ("MNIST_L2",)
#: End-to-end frontier runs use the AppVer-dispatch-bound dense families.
FRONTIER_FAMILIES = ("MNIST_L2", "MNIST_L4")
SMOKE_FRONTIER_FAMILIES = ("MNIST_L2",)


def _smoke_mode(args: argparse.Namespace) -> bool:
    return args.smoke or os.environ.get("REPRO_BENCH_SMOKE", "") not in ("", "0")


def _make_problem(family_name: str, epsilon: float = 0.05):
    """An untrained seed-family network with a robustness spec (throughput
    does not depend on training, only on the architecture)."""
    family = MODEL_FAMILIES[family_name]
    dataset = family.build_dataset(0)
    network = family.build_network(dataset, 0)
    reference = dataset.inputs[0].reshape(-1)
    label = int(network.predict(reference.reshape(1, -1))[0])
    spec = local_robustness_spec(reference, epsilon, label, dataset.num_classes)
    return network, spec


def _make_frontier(network, spec, batch_size: int, seed: int
                   ) -> Tuple[List[SplitAssignment], List[SplitAssignment]]:
    """A BaB-expansion workload: parents plus their phase-split children.

    Parents carry 0-2 random splits (as mid-search sub-problems do); each
    contributes its two children on a fresh unstable neuron until
    ``batch_size`` children exist.
    """
    probe = ApproximateVerifier(network, spec, use_cache=False)
    unstable = probe.evaluate().report.unstable_neurons()
    assert unstable, "benchmark problem must have unstable neurons"
    rng = np.random.default_rng(seed)

    parents: List[SplitAssignment] = []
    children: List[SplitAssignment] = []
    while len(children) < batch_size:
        depth = int(rng.integers(0, 3))
        chosen = rng.choice(len(unstable), size=min(depth + 1, len(unstable)),
                            replace=False)
        parent = SplitAssignment.empty()
        for index in chosen[:-1]:
            layer, unit = unstable[int(index)]
            phase = ACTIVE if rng.random() < 0.5 else INACTIVE
            parent = parent.with_split(ReluSplit(layer, unit, phase))
        parents.append(parent)
        branch_layer, branch_unit = unstable[int(chosen[-1])]
        for phase in (ACTIVE, INACTIVE):
            if len(children) < batch_size:
                children.append(parent.with_split(
                    ReluSplit(branch_layer, branch_unit, phase)))
    return parents, children


def _branching_problem(family_name: str):
    """A robustness problem whose root raises a false alarm (needs splits).

    Searches a geometric epsilon ladder for the first radius at which the
    root DeepPoly bound neither verifies nor falsifies the untrained seed
    network — the regime where the BaB search (and hence the frontier) runs.
    """
    family = MODEL_FAMILIES[family_name]
    dataset = family.build_dataset(0)
    network = family.build_network(dataset, 0)
    for reference_index in range(8):
        reference = dataset.inputs[reference_index].reshape(-1)
        label = int(network.predict(reference.reshape(1, -1))[0])
        for epsilon in (0.005, 0.01, 0.02, 0.05, 0.1, 0.2, 0.4):
            spec = local_robustness_spec(reference, epsilon,
                                         label, dataset.num_classes)
            outcome = ApproximateVerifier(network, spec,
                                          use_cache=False).evaluate()
            if outcome.needs_split:
                return network, spec, epsilon
    raise RuntimeError(f"no branching problem found for {family_name}")


def bench_frontier(family_name: str, frontier_sizes, max_nodes: int) -> List[Dict]:
    """End-to-end ABONN runs: verdict + realised batch sizes per frontier."""
    network, spec, epsilon = _branching_problem(family_name)
    rows = []
    for frontier_size in frontier_sizes:
        config = AbonnConfig(frontier_size=frontier_size)
        start = time.perf_counter()
        result = AbonnVerifier(config).verify(network, spec,
                                              Budget(max_nodes=max_nodes))
        elapsed = time.perf_counter() - start
        stats = result.extras["bound_cache"]
        rows.append({
            "network": family_name,
            "epsilon": epsilon,
            "frontier_size": frontier_size,
            "status": result.status.value,
            "nodes_explored": result.nodes_explored,
            "elapsed_seconds": elapsed,
            "nodes_per_sec": result.nodes_explored / elapsed if elapsed else 0.0,
            "mean_realised_batch": stats["mean_realised_batch"],
            "batch_histogram": stats["batch_histogram"],
        })
    return rows


def _decided_leaf_workload(network, spec, clusters: int, seed: int):
    """Fully phase-decided leaves, sibling-heavy as frontier rounds yield them.

    Each cluster fully decides the unstable neurons of one random base
    assignment and contributes the base leaf plus one sibling (a single
    flipped phase), so a batch shares most per-layer row blocks.  Returns
    ``[(splits, report), ...]`` with each report from the leaf's own bound
    analysis, exactly as the drivers hand them to the LP.
    """
    appver = ApproximateVerifier(network, spec, use_cache=False)
    rng = np.random.default_rng(seed)
    leaves = []
    for _ in range(clusters):
        splits = SplitAssignment.empty()
        outcome = appver.evaluate(splits)
        # Decide every unstable neuron (splitting can re-destabilise a
        # neuron in corner cases, so iterate until the leaf is decided).
        for _ in range(4):
            unstable = outcome.report.unstable_neurons(splits)
            if not unstable:
                break
            for layer, unit in unstable:
                phase = ACTIVE if rng.random() < 0.5 else INACTIVE
                splits = splits.with_split(ReluSplit(layer, unit, phase))
            outcome = appver.evaluate(splits)
        if outcome.report.unstable_neurons(splits):
            continue  # pragma: no cover - pathological family
        leaves.append((splits, outcome.report))
        # The sibling flips the last decided neuron's phase.
        decided = splits.decided_neurons()
        flip_layer, flip_unit = decided[-1]
        sibling = SplitAssignment(
            {neuron: (-splits.phase_of(*neuron) if neuron == (flip_layer, flip_unit)
                      else splits.phase_of(*neuron)) for neuron in decided})
        sibling_outcome = appver.evaluate(sibling)
        if not sibling_outcome.report.unstable_neurons(sibling):
            leaves.append((sibling, sibling_outcome.report))
    return appver.lowered, leaves


def bench_lp(family_name: str, clusters: int, frontier_sizes,
             max_nodes: int) -> Dict:
    """Micro + end-to-end benchmark of batched, cached leaf-LP resolution."""
    network, spec, epsilon = _branching_problem(family_name)
    lowered, leaves = _decided_leaf_workload(network, spec, clusters, seed=17)

    start = time.perf_counter()
    sequential = [solve_leaf_lp(lowered, spec.input_box, spec.output_spec,
                                splits, report) for splits, report in leaves]
    sequential_seconds = time.perf_counter() - start

    cache = LpCache()
    start = time.perf_counter()
    batched = solve_leaf_lp_batch(lowered, spec.input_box, spec.output_spec,
                                  leaves, cache=cache)
    batched_seconds = time.perf_counter() - start

    start = time.perf_counter()
    warm = solve_leaf_lp_batch(lowered, spec.input_box, spec.output_spec,
                               leaves, cache=cache)
    warm_seconds = time.perf_counter() - start

    # The stacked multi-objective row solve must agree with the per-row
    # loop: one selector MILP per leaf versus one LP per (leaf, spec row).
    start = time.perf_counter()
    stacked = solve_leaf_lp_batch(lowered, spec.input_box, spec.output_spec,
                                  leaves, stack_rows=True)
    stacked_seconds = time.perf_counter() - start
    per_row = solve_leaf_lp_batch(lowered, spec.input_box, spec.output_spec,
                                  leaves, stack_rows=False)

    def equal(a, b):
        if a.feasible != b.feasible:
            return False
        if a.feasible and abs(a.value - b.value) > 1e-6:
            return False
        return True

    optima_equal = (all(equal(a, b) for a, b in zip(sequential, batched))
                    and all(a is b for a, b in zip(batched, warm)))
    stacked_optima_equal = all(equal(a, b) for a, b in zip(stacked, per_row))

    # End-to-end: one shared cache across the frontier sweep of the same
    # problem, so leaves re-visited at another K are hits, never re-solves.
    shared = LpCache()
    runs = []
    statuses = set()
    for frontier_size in frontier_sizes:
        config = AbonnConfig(frontier_size=frontier_size)
        result = AbonnVerifier(config, lp_cache=shared).verify(
            network, spec, Budget(max_nodes=max_nodes))
        statuses.add(result.status.value)
        runs.append({
            "frontier_size": frontier_size,
            "status": result.status.value,
            "lp_leaves_resolved": result.extras["lp_leaves_resolved"],
            "lp_cache": result.extras["lp_cache"],
        })
    return {
        "network": family_name,
        "epsilon": epsilon,
        "leaves": len(leaves),
        "sequential_seconds": sequential_seconds,
        "batched_seconds": batched_seconds,
        "warm_seconds": warm_seconds,
        "speedup_batched": (sequential_seconds / batched_seconds
                            if batched_seconds else 0.0),
        "speedup_warm": (sequential_seconds / warm_seconds
                         if warm_seconds else 0.0),
        "stacked_seconds": stacked_seconds,
        "optima_equal": optima_equal,
        "stacked_optima_equal": stacked_optima_equal,
        "micro_cache": cache.stats.as_dict(),
        "verdicts_match": len(statuses) == 1,
        "shared_cache": shared.stats.as_dict(),
        "runs": runs,
    }


def _record_frontier_rounds(network, spec, max_nodes: int) -> List[Tuple]:
    """The (children, parents) of every K=8 frontier round of one ABONN run."""
    rounds: List[Tuple] = []
    original = ApproximateVerifier.evaluate_batch

    def recording(self, splits_list, method=None, parents=None):
        if len(splits_list) > 1:
            rounds.append((list(splits_list),
                           list(parents) if parents is not None else None))
        return original(self, splits_list, method=method, parents=parents)

    ApproximateVerifier.evaluate_batch = recording
    try:
        AbonnVerifier(AbonnConfig(frontier_size=8)).verify(
            network, spec, Budget(max_nodes=max_nodes))
    finally:
        ApproximateVerifier.evaluate_batch = original
    return rounds


def _replay_per_child_times(network, spec, rounds, incremental: bool,
                            cascade: CascadeConfig = None) -> List[float]:
    """Per-child bound time of each round against a fresh verifier."""
    verifier = ApproximateVerifier(network, spec, incremental=incremental,
                                   cascade=cascade)
    verifier.evaluate()  # bound the root, as the real run does
    times = []
    for splits_list, parents in rounds:
        start = time.perf_counter()
        verifier.evaluate_batch(splits_list,
                                parents=parents if incremental else None)
        times.append((time.perf_counter() - start) / len(splits_list))
    return times


def bench_incremental(family_name: str, frontier_sizes, max_nodes: int,
                      repetitions: int) -> Dict:
    """Equality + per-child speedup of the incremental bound path.

    Verdicts, node charges and counterexamples must be identical with the
    incremental path on and off at every frontier size; the speedup is the
    ratio of median per-child bound times over the replayed ``K=8`` rounds
    (mode-interleaved repetitions, min per round, so scheduler noise hits
    both modes alike).
    """
    network, spec, epsilon = _branching_problem(family_name)

    equality_rows = []
    all_equal = True
    for frontier_size in frontier_sizes:
        results = {}
        for incremental in (False, True):
            config = AbonnConfig(frontier_size=frontier_size,
                                 incremental=incremental)
            results[incremental] = AbonnVerifier(config).verify(
                network, spec, Budget(max_nodes=max_nodes))
        baseline, observed = results[False], results[True]
        cex_equal = ((baseline.counterexample is None)
                     == (observed.counterexample is None)
                     and (baseline.counterexample is None
                          or np.array_equal(baseline.counterexample,
                                            observed.counterexample)))
        row_equal = (baseline.status == observed.status
                     and baseline.nodes_explored == observed.nodes_explored
                     and cex_equal)
        all_equal = all_equal and row_equal
        equality_rows.append({
            "frontier_size": frontier_size,
            "status": baseline.status.value,
            "nodes_explored": baseline.nodes_explored,
            "identical": row_equal,
        })

    rounds = _record_frontier_rounds(network, spec, max_nodes)
    best: Dict[bool, List[float]] = {False: None, True: None}
    for repetition in range(repetitions + 1):
        for incremental in (False, True):
            times = _replay_per_child_times(network, spec, rounds, incremental)
            if repetition == 0:
                continue  # warm-up pass: NumPy buffers, branch caches
            if best[incremental] is None:
                best[incremental] = times
            else:
                best[incremental] = [min(a, b) for a, b
                                     in zip(best[incremental], times)]
    median_baseline = median(best[False]) if rounds else 0.0
    median_incremental = median(best[True]) if rounds else 0.0

    # One instrumented replay for the reuse counters and phase breakdown.
    verifier = ApproximateVerifier(network, spec, incremental=True)
    verifier.evaluate()
    for splits_list, parents in rounds:
        verifier.evaluate_batch(splits_list, parents=parents)
    stats = verifier.cache_stats()
    return {
        "network": family_name,
        "epsilon": epsilon,
        "rounds": len(rounds),
        "children": sum(len(r[0]) for r in rounds),
        "identical_runs": all_equal,
        "equality_rows": equality_rows,
        "median_per_child_us_baseline": median_baseline * 1e6,
        "median_per_child_us_incremental": median_incremental * 1e6,
        "speedup_incremental": (median_baseline / median_incremental
                                if median_incremental else 0.0),
        "delta_corrections": stats["delta_corrections"],
        "candidate_hits": stats["candidate_hits"],
        "candidate_misses": stats["candidate_misses"],
        "timings": verifier.timings.as_dict(),
    }


def bench_cascade(family_name: str, frontier_sizes, max_nodes: int,
                  repetitions: int, warmup_children: int = 128) -> Dict:
    """Equality + per-stage decide rates of the precision cascade.

    Verdicts, node charges and counterexamples must be identical with the
    cascade on and off at every frontier size; the replayed ``K=8`` rounds
    (mode-interleaved repetitions, min per round) give the net per-child
    bound time in both modes and — via an instrumented cascade-on replay —
    the per-stage decide counts and the fraction of children decided before
    the exact stage.  Besides the all-round medians, the *steady* medians
    restrict to the rounds after the adaptive-gating warm-up window
    (``CascadeConfig.warmup_children``): the warm-up probe cost is bounded
    and amortises away on longer runs, so steady state is where the
    "per-child time no worse than the exact path" acceptance is judged.
    ``warmup_children`` overrides the gating window so that even short
    smoke replays reach steady state.
    """
    network, spec, epsilon = _branching_problem(family_name)
    cascade_on = CascadeConfig(enabled=True, warmup_children=warmup_children)

    equality_rows = []
    all_equal = True
    for frontier_size in frontier_sizes:
        results = {}
        for enabled in (False, True):
            config = AbonnConfig(frontier_size=frontier_size,
                                 cascade=cascade_on if enabled else None)
            results[enabled] = AbonnVerifier(config).verify(
                network, spec, Budget(max_nodes=max_nodes))
        baseline, observed = results[False], results[True]
        cex_equal = ((baseline.counterexample is None)
                     == (observed.counterexample is None)
                     and (baseline.counterexample is None
                          or np.array_equal(baseline.counterexample,
                                            observed.counterexample)))
        row_equal = (baseline.status == observed.status
                     and baseline.nodes_explored == observed.nodes_explored
                     and cex_equal)
        all_equal = all_equal and row_equal
        equality_rows.append({
            "frontier_size": frontier_size,
            "status": baseline.status.value,
            "nodes_explored": baseline.nodes_explored,
            "identical": row_equal,
        })

    rounds = _record_frontier_rounds(network, spec, max_nodes)
    best: Dict[bool, List[float]] = {False: None, True: None}
    for repetition in range(repetitions + 1):
        for enabled in (False, True):
            times = _replay_per_child_times(
                network, spec, rounds, incremental=True,
                cascade=cascade_on if enabled else None)
            if repetition == 0:
                continue  # warm-up pass: NumPy buffers, branch caches
            if best[enabled] is None:
                best[enabled] = times
            else:
                best[enabled] = [min(a, b) for a, b
                                 in zip(best[enabled], times)]
    median_off = median(best[False]) if rounds else 0.0
    median_on = median(best[True]) if rounds else 0.0

    # Steady state starts with the first round past the adaptive-gating
    # warm-up window (falls back to the full replay on short smoke runs).
    steady_start = len(rounds)
    warm_children = 0
    for index, (splits_list, _) in enumerate(rounds):
        if warm_children >= cascade_on.warmup_children:
            steady_start = index
            break
        warm_children += len(splits_list)
    if steady_start >= len(rounds):
        steady_start = 0
    steady_off = median(best[False][steady_start:]) if rounds else 0.0
    steady_on = median(best[True][steady_start:]) if rounds else 0.0

    # One instrumented cascade-on replay for the per-stage counters.
    verifier = ApproximateVerifier(network, spec, incremental=True,
                                   cascade=cascade_on)
    verifier.evaluate()
    for splits_list, parents in rounds:
        verifier.evaluate_batch(splits_list, parents=parents)
    stats = verifier.cascade_stats()
    return {
        "network": family_name,
        "epsilon": epsilon,
        "rounds": len(rounds),
        "steady_rounds": len(rounds) - steady_start,
        "children": stats["children"],
        "identical_runs": all_equal,
        "equality_rows": equality_rows,
        "median_per_child_us_off": median_off * 1e6,
        "median_per_child_us_on": median_on * 1e6,
        "speedup_cascade": median_off / median_on if median_on else 0.0,
        "median_per_child_us_off_steady": steady_off * 1e6,
        "median_per_child_us_on_steady": steady_on * 1e6,
        "speedup_cascade_steady": (steady_off / steady_on
                                   if steady_on else 0.0),
        "decided": stats["decided"],
        "seen": stats["seen"],
        "pre_exact_fraction": stats["pre_exact_fraction"],
        "stage_seconds": stats["seconds"],
    }


def _best_time(run, repetitions: int) -> float:
    best = float("inf")
    for _ in range(repetitions):
        best = min(best, run())
    return best


def bench_family(family_name: str, batch_sizes, repetitions: int) -> List[Dict]:
    network, spec = _make_problem(family_name)
    rows = []
    for batch_size in batch_sizes:
        parents, children = _make_frontier(network, spec, batch_size,
                                           seed=batch_size)

        def time_sequential() -> float:
            verifier = ApproximateVerifier(network, spec, use_cache=False)
            verifier.evaluate()  # warm NumPy buffers
            start = time.perf_counter()
            for splits in children:
                verifier.evaluate(splits)
            return time.perf_counter() - start

        def time_batched() -> float:
            verifier = ApproximateVerifier(network, spec, use_cache=False)
            verifier.evaluate()
            start = time.perf_counter()
            verifier.evaluate_batch(children)
            return time.perf_counter() - start

        def time_engine() -> float:
            verifier = ApproximateVerifier(network, spec, use_cache=True)
            verifier.evaluate()
            verifier.evaluate_batch(parents)  # BaB bounded the parents already
            start = time.perf_counter()
            verifier.evaluate_batch(children)
            return time.perf_counter() - start

        sequential = _best_time(time_sequential, repetitions)
        batched = _best_time(time_batched, repetitions)
        engine = _best_time(time_engine, repetitions)
        rows.append({
            "network": family_name,
            "batch_size": batch_size,
            "sequential_calls_per_sec": batch_size / sequential,
            "batched_calls_per_sec": batch_size / batched,
            "engine_calls_per_sec": batch_size / engine,
            "speedup_batched": sequential / batched,
            "speedup_engine": sequential / engine,
        })
    return rows


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true",
                        help="tiny repetitions/batch sizes for CI")
    parser.add_argument("--frontier", action="store_true",
                        help="also run end-to-end ABONN frontier expansion and "
                             "report realised batch-size histograms")
    parser.add_argument("--lp", action="store_true",
                        help="also benchmark batched + cached leaf-LP "
                             "resolution (micro workload and an end-to-end "
                             "frontier sweep sharing one LpCache)")
    parser.add_argument("--incremental", action="store_true",
                        help="also measure the incremental (rank-1 "
                             "parent-pass reuse) bound path: per-child "
                             "speedup at K=8 plus verdict/charge equality "
                             "at K in {1, 2, 8}")
    parser.add_argument("--cascade", action="store_true",
                        help="also measure the precision-cascade dispatcher "
                             "(IBP -> relaxed-incremental -> exact): "
                             "per-stage decide rates and net per-child time "
                             "at K=8 plus verdict/charge equality at K in "
                             "{1, 2, 8}")
    args = parser.parse_args(argv)
    smoke = _smoke_mode(args)

    batch_sizes = (1, 8) if smoke else (1, 2, 4, 8, 16, 32)
    repetitions = 3 if smoke else 9
    families = SMOKE_FAMILIES if smoke else FULL_FAMILIES

    rows: List[Dict] = []
    for family_name in families:
        rows.extend(bench_family(family_name, batch_sizes, repetitions))

    large_batches = [row for row in rows if row["batch_size"] >= 8]
    dense_rows = [row for row in large_batches
                  if row["network"].startswith("MNIST")]
    summary = {
        "smoke": smoke,
        # The dense seed families are AppVer-dispatch-bound; batching them is
        # the headline ≥2x win.  The conv-lowered families are single-core
        # GEMM-bound, where batching mainly helps via the split-aware cache —
        # their rows are reported for transparency.
        "min_speedup_batched_dense_at_batch_ge_8": min(
            row["speedup_batched"] for row in dense_rows),
        "min_speedup_engine_at_batch_ge_8": min(row["speedup_engine"]
                                                for row in large_batches),
        "max_speedup_engine_at_batch_ge_8": max(row["speedup_engine"]
                                                for row in large_batches),
        "min_speedup_batched_at_batch_ge_8": min(row["speedup_batched"]
                                                 for row in large_batches),
    }
    payload = {"benchmark": "appver_batching", "summary": summary, "rows": rows}

    if args.frontier:
        frontier_families = (SMOKE_FRONTIER_FAMILIES if smoke
                             else FRONTIER_FAMILIES)
        frontier_sizes = (1, 8) if smoke else (1, 2, 8)
        max_nodes = 64 if smoke else 512
        frontier_rows: List[Dict] = []
        for family_name in frontier_families:
            frontier_rows.extend(bench_frontier(family_name, frontier_sizes,
                                                max_nodes))
        by_family: Dict[str, Dict[int, Dict]] = {}
        for row in frontier_rows:
            by_family.setdefault(row["network"], {})[row["frontier_size"]] = row
        payload["frontier"] = {
            "max_nodes": max_nodes,
            "summary": {
                # Verdicts must not depend on the frontier size.
                "verdicts_match": all(
                    len({row["status"] for row in runs.values()}) == 1
                    for runs in by_family.values()),
                # Acceptance: mean realised evaluate_batch size at K=8 on the
                # dense families must reach the batched throughput regime.
                "min_mean_realised_batch_at_frontier_8": min(
                    runs[8]["mean_realised_batch"] for runs in by_family.values()
                    if 8 in runs),
            },
            "rows": frontier_rows,
        }
        summary["min_mean_realised_batch_at_frontier_8"] = \
            payload["frontier"]["summary"]["min_mean_realised_batch_at_frontier_8"]

    if args.lp:
        lp_families = SMOKE_FRONTIER_FAMILIES if smoke else FRONTIER_FAMILIES
        clusters = 3 if smoke else 10
        lp_frontier_sizes = (1, 2, 8)
        lp_max_nodes = 96 if smoke else 512
        lp_rows = [bench_lp(family_name, clusters, lp_frontier_sizes,
                            lp_max_nodes)
                   for family_name in lp_families]
        payload["lp"] = {
            "max_nodes": lp_max_nodes,
            "summary": {
                # Acceptance: re-visited leaves are served from the cache
                # (hit rate > 0), optima are bit-identical to the
                # one-at-a-time path (and the stacked multi-objective row
                # solve agrees with the per-row loop), and verdicts are
                # independent of the frontier size and of cache hits.
                "min_micro_hit_rate": min(row["micro_cache"]["hit_rate"]
                                          for row in lp_rows),
                "optima_equal": all(row["optima_equal"] for row in lp_rows),
                "stacked_optima_equal": all(row["stacked_optima_equal"]
                                            for row in lp_rows),
                "verdicts_match": all(row["verdicts_match"] for row in lp_rows),
                "total_shared_hits": sum(row["shared_cache"]["hits"]
                                         for row in lp_rows),
                "total_lp_solves": sum(row["shared_cache"]["solves"]
                                       for row in lp_rows),
            },
            "rows": lp_rows,
        }
        summary["lp_min_micro_hit_rate"] = payload["lp"]["summary"]["min_micro_hit_rate"]
        summary["lp_total_solves"] = payload["lp"]["summary"]["total_lp_solves"]

    if args.incremental:
        inc_families = SMOKE_FRONTIER_FAMILIES if smoke else FRONTIER_FAMILIES
        inc_sizes = (1, 2, 8)
        inc_max_nodes = 96 if smoke else 512
        inc_reps = 3 if smoke else 9
        inc_rows = [bench_incremental(family_name, inc_sizes, inc_max_nodes,
                                      inc_reps)
                    for family_name in inc_families]
        payload["incremental"] = {
            "max_nodes": inc_max_nodes,
            "summary": {
                # Acceptance: verdicts, node charges and counterexamples
                # identical with the incremental path on and off at K in
                # {1, 2, 8}; >= 1.5x median per-child bound-time speedup at
                # K=8 on the dense families (gated in full mode — smoke
                # rounds are too short for stable medians).
                "identical_runs": all(row["identical_runs"]
                                      for row in inc_rows),
                "min_speedup_incremental": min(row["speedup_incremental"]
                                               for row in inc_rows),
                "total_delta_corrections": sum(row["delta_corrections"]
                                               for row in inc_rows),
            },
            "rows": inc_rows,
        }
        summary["incremental_identical_runs"] = \
            payload["incremental"]["summary"]["identical_runs"]
        summary["min_speedup_incremental"] = \
            payload["incremental"]["summary"]["min_speedup_incremental"]
        summary["median_per_child_us"] = {
            row["network"]: {
                "baseline": row["median_per_child_us_baseline"],
                "incremental": row["median_per_child_us_incremental"],
            } for row in inc_rows}

    if args.cascade:
        cas_families = SMOKE_FRONTIER_FAMILIES if smoke else FRONTIER_FAMILIES
        cas_sizes = (1, 2, 8)
        cas_max_nodes = 96 if smoke else 512
        cas_reps = 3 if smoke else 9
        cas_warmup = 32 if smoke else 128
        cas_rows = [bench_cascade(family_name, cas_sizes, cas_max_nodes,
                                  cas_reps, warmup_children=cas_warmup)
                    for family_name in cas_families]
        payload["cascade"] = {
            "max_nodes": cas_max_nodes,
            "summary": {
                # Acceptance: verdicts, node charges and counterexamples
                # identical with the cascade on and off at K in {1, 2, 8};
                # a nonzero fraction of children decided before the exact
                # stage on at least one family (max: a family whose children
                # never verify structurally offers a prefilter nothing);
                # steady-state per-child bound time no worse than the exact
                # path (gated in full mode — smoke rounds are too short for
                # stable medians).
                "identical_runs": all(row["identical_runs"]
                                      for row in cas_rows),
                "max_pre_exact_fraction": max(row["pre_exact_fraction"]
                                              for row in cas_rows),
                "min_speedup_cascade_steady": min(
                    row["speedup_cascade_steady"] for row in cas_rows),
            },
            "rows": cas_rows,
        }
        summary["cascade_identical_runs"] = \
            payload["cascade"]["summary"]["identical_runs"]
        summary["cascade_max_pre_exact_fraction"] = \
            payload["cascade"]["summary"]["max_pre_exact_fraction"]
        summary["min_speedup_cascade_steady"] = \
            payload["cascade"]["summary"]["min_speedup_cascade_steady"]

    text = json.dumps(payload, indent=2)
    print(text)
    OUTPUT_PATH.parent.mkdir(parents=True, exist_ok=True)
    OUTPUT_PATH.write_text(text + "\n")
    return 0


if __name__ == "__main__":
    sys.exit(main())
