"""Shared infrastructure for the benchmark harness.

Every ``bench_*.py`` file regenerates one table or figure of the paper.  The
expensive artefacts (the trained model zoo, the benchmark suite, and the
three-verifier run matrix) are computed once per pytest session and shared
through the cached helpers below.

The scale of the regeneration is controlled by environment variables so the
same harness can run as a quick smoke check or as a full evaluation:

=========================  =======================================  =========
variable                   meaning                                  default
=========================  =======================================  =========
``REPRO_BENCH_FAMILIES``   comma-separated model families           all five
``REPRO_BENCH_INSTANCES``  instances per family                     8
``REPRO_BENCH_NODES``      node budget per instance                 250
``REPRO_BENCH_SECONDS``    wall-clock budget per instance (seconds) 60
``REPRO_BENCH_SEED``       suite generation seed                    0
=========================  =======================================  =========

Rendered tables/figures are printed and also written to
``benchmarks/output/`` so they can be inspected after the run and compared
against EXPERIMENTS.md.
"""

from __future__ import annotations

import os
from functools import lru_cache
from pathlib import Path
from typing import Dict

from repro.bab import BaBBaselineVerifier
from repro.baselines import AlphaBetaCrownVerifier
from repro.core import AbonnConfig, AbonnVerifier
from repro.experiments import (
    BenchmarkSuite,
    SuiteConfig,
    SuiteRunResult,
    generate_suite,
    run_suite,
)
from repro.nn.zoo import FAMILY_ORDER
from repro.utils import Budget

OUTPUT_DIR = Path(__file__).resolve().parent / "output"

#: Paper column order of Table II.
VERIFIER_ORDER = ("BaB-baseline", "alpha-beta-CROWN", "ABONN")


def _families() -> tuple:
    raw = os.environ.get("REPRO_BENCH_FAMILIES", "")
    if not raw.strip():
        return FAMILY_ORDER
    return tuple(name.strip() for name in raw.split(",") if name.strip())


def instances_per_family() -> int:
    return int(os.environ.get("REPRO_BENCH_INSTANCES", "8"))


def node_budget() -> int:
    return int(os.environ.get("REPRO_BENCH_NODES", "250"))


def seconds_budget() -> float:
    return float(os.environ.get("REPRO_BENCH_SECONDS", "60"))


def suite_seed() -> int:
    return int(os.environ.get("REPRO_BENCH_SEED", "0"))


def per_instance_budget() -> Budget:
    """The per-problem budget, analogous to the paper's 1000 s timeout."""
    return Budget(max_nodes=node_budget(), max_seconds=seconds_budget())


def timeout_charge_seconds() -> float:
    """Seconds charged to unsolved instances in 'average time' columns."""
    return seconds_budget()


def verifier_factories() -> Dict[str, object]:
    """The three verifiers of Table II, in the paper's column order."""
    return {
        "BaB-baseline": lambda: BaBBaselineVerifier(),
        "alpha-beta-CROWN": lambda: AlphaBetaCrownVerifier(),
        "ABONN": lambda: AbonnVerifier(AbonnConfig()),
    }


@lru_cache(maxsize=None)
def get_suite() -> BenchmarkSuite:
    """Generate (once) the benchmark suite used by every bench target."""
    config = SuiteConfig(families=_families(),
                         instances_per_family=instances_per_family(),
                         seed=suite_seed())
    return generate_suite(config)


@lru_cache(maxsize=None)
def get_run(verifier_name: str) -> SuiteRunResult:
    """Run (once) one verifier over the whole suite."""
    factory = verifier_factories()[verifier_name]
    return run_suite(factory, get_suite(), per_instance_budget())


def get_matrix() -> Dict[str, SuiteRunResult]:
    """All three verifiers over the whole suite (cached per verifier)."""
    return {name: get_run(name) for name in VERIFIER_ORDER}


def save_output(name: str, text: str) -> Path:
    """Print a rendered table/figure and persist it under benchmarks/output/."""
    OUTPUT_DIR.mkdir(parents=True, exist_ok=True)
    path = OUTPUT_DIR / name
    path.write_text(text + "\n")
    print()
    print(text)
    return path
