"""A verification service multiplexing jobs over a pool of workers.

The service turns the library's verifiers into a batch/streaming facility:
many ``(network, property, budget)`` jobs run interleaved, preempted only at
:class:`~repro.engine.driver.FrontierDriver` round boundaries (where the
verifiers' ``affordable_phases`` budget accounting already makes stopping
sound).  Three execution transports share one API and one scheduling policy
(see ``docs/SERVICE.md#transports``):

* ``"cooperative"`` — single-threaded and fully deterministic: one job
  advances at a time, driven by the caller iterating :meth:`VerificationService.step`
  / :meth:`VerificationService.as_completed`, so the same submissions always
  produce the same interleaving.
* ``"threaded"`` — one real worker thread per shard: each worker drains its
  own queue under the identical per-worker policy, so jobs on *different*
  workers execute in parallel while jobs on one worker keep the cooperative
  ordering guarantees.  Results stream in completion order (nondeterministic
  across workers); :meth:`VerificationService.run_until_complete` restores
  deterministic submission order at the collection point.
* ``"process"`` — one supervised worker *process* per shard: the shard
  thread keeps running the per-worker policy in the parent, but each slice
  executes in the shard's process via a pipe round-trip (see
  ``repro.service.process_transport``).  The shard's cache bundle is handed
  over in the ``CacheBundle.save()`` payload format and shipped back at
  shutdown, so warmth survives the process boundary.  What the extra hop
  buys is *crash isolation*: a worker death — segfault, OOM kill, SIGKILL —
  detected by the supervisor, the worker restarts, and interrupted jobs are
  retried under the :class:`~repro.service.jobs.RetryPolicy`.

Either way a job's verdict, budget charges and counterexample are
byte-identical to an uninterrupted solo run — the caches shared between
jobs return exactly what recomputation would, so multiplexing buys *reuse*
(and, threaded/process, parallelism), never races.

Scheduling policy
-----------------
* **Sharding**: ``worker = int(fingerprint[:8], 16) % pool_size`` — jobs on
  one problem land on one worker, keeping their cache traffic local and the
  per-worker interleaving deterministic.
* **Priority with bounded wait**: within a worker the highest-priority
  pending job runs next (ties: submission order), but any job that has
  waited ``max_wait_slices`` slices is served first (oldest submission
  first) — between two slices of a job at most ``max_wait_slices`` slices
  plus one per *older* pending job can go elsewhere, so an endless stream
  of high-priority submissions can never starve it.
* **Deadlines**: wall-clock from submission, checked at slice boundaries
  (including before a job's first round); an expired job is interrupted via
  its run's ``interrupt()`` (TIMEOUT with the best bound so far) and marked
  ``deadline_exceeded``.
* **Fault isolation**: an exception escaping a job's setup or a round is
  captured as a structured :class:`~repro.service.jobs.JobError` on *that
  job's* result; the fingerprint's cache bundle is quarantined (discarded)
  in case a poisoned entry caused the failure, and every other job — on the
  same worker or not — continues untouched.  Under the threaded transport a
  failing job never takes its worker thread down.
* **Retry & supervision** (``docs/SERVICE.md#fault-model--supervision``):
  failures whose ``JobError.kind`` is in ``RetryPolicy.retryable_kinds``
  re-enqueue the job with deterministic exponential backoff instead of
  finalising it.  Under the process transport a dead worker surfaces as a
  synthetic ``"WorkerCrash"`` (retryable by default); a job that kills its
  worker ``max_attempts`` times is *poison* and fails without taking the
  service down.  A shard whose worker keeps dying beyond
  ``worker_crash_budget`` — or a host that cannot spawn processes at all —
  *degrades* to in-process execution on the shard thread, recorded in
  :meth:`VerificationService.stats` under ``transport_downgrades``.
"""

from __future__ import annotations

import queue
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, Iterable, Iterator, List, Optional, Union

from repro.bounds.cache import DEFAULT_CACHE_SIZE, DEFAULT_LP_CACHE_SIZE
from repro.nn.network import Network
from repro.service.jobs import JobError, JobRequest, JobResult, RetryPolicy
from repro.service.pool import CacheBundle, FingerprintCachePool
from repro.service.process_transport import (
    ShardExecutor,
    UnpicklableJob,
    reply_error,
)
from repro.service.supervisor import ProcessTransportUnavailable, WorkerCrashed
from repro.specs.properties import Specification
from repro.utils.timing import Budget
from repro.utils.validation import require
from repro.verifiers.result import (
    VerificationResult,
    VerificationStatus,
    VerifierRun,
)

#: Execution transports accepted by :attr:`ServiceConfig.transport`.  The
#: asyncio front-end (:class:`~repro.service.async_service.AsyncVerificationService`)
#: is a wrapper over the self-driving transports, not a fourth scheduler.
TRANSPORTS = ("cooperative", "threaded", "process")

#: Seconds a worker sleeps between queue probes while every pending job on
#: it is inside a retry-backoff window.
_BACKOFF_POLL_SECONDS = 0.005


def _default_verifier_factory(bundle: CacheBundle):
    """Build the paper's verifier on the bundle's shared caches."""
    # Imported lazily: ``repro.service`` initialises before ``repro.core``
    # when the package is imported from scratch.
    from repro.core.abonn import AbonnVerifier
    return AbonnVerifier(lp_cache=bundle.lp_cache,
                         bound_cache=bundle.bound_cache)


@dataclass
class ServiceConfig:
    """Knobs of the verification service (see the module docstring)."""

    #: Number of workers jobs are sharded across (threads when
    #: ``transport="threaded"``, supervised processes when ``"process"``,
    #: cooperative queues otherwise).
    pool_size: int = 2
    #: Driver rounds one job advances per scheduling slice.
    rounds_per_slice: int = 4
    #: Slices a pending job may wait before it pre-empts higher priorities.
    max_wait_slices: int = 8
    #: Discard a fingerprint's cache bundle when a job on it fails.
    quarantine_on_error: bool = True
    #: Capacity of each fingerprint bundle's leaf-LP cache.
    lp_cache_size: int = DEFAULT_LP_CACHE_SIZE
    #: Capacity of each fingerprint bundle's bound cache.
    bound_cache_size: int = DEFAULT_CACHE_SIZE
    #: Execution transport: ``"cooperative"`` (caller-driven, deterministic
    #: interleaving), ``"threaded"`` (one worker thread per shard) or
    #: ``"process"`` (one supervised worker process per shard).
    transport: str = "cooperative"
    #: When and how failed jobs are re-run (worker crashes by default).
    retry: RetryPolicy = field(default_factory=RetryPolicy)
    #: Worker-process deaths one shard tolerates before it degrades to
    #: in-process execution (process transport only).
    worker_crash_budget: int = 3
    #: Pin the multiprocessing start method (``"fork"``/``"spawn"``); ``None``
    #: prefers fork and falls back to spawn.
    process_start_method: Optional[str] = None
    #: Kill a worker process whose reply to one slice takes longer than this
    #: (hung-worker containment); ``None`` waits forever.
    slice_timeout_seconds: Optional[float] = None

    def __post_init__(self) -> None:
        require(self.pool_size >= 1, "pool_size must be positive")
        require(self.rounds_per_slice >= 1, "rounds_per_slice must be positive")
        require(self.max_wait_slices >= 1, "max_wait_slices must be positive")
        require(self.transport in TRANSPORTS,
                f"transport must be one of {TRANSPORTS}, got {self.transport!r}")
        require(self.worker_crash_budget >= 1,
                "worker_crash_budget must be positive")
        require(self.slice_timeout_seconds is None
                or self.slice_timeout_seconds > 0,
                "slice_timeout_seconds must be positive when given")


@dataclass
class _Job:
    """Scheduler-internal job state."""

    job_id: str
    seq: int
    request: JobRequest
    fingerprint: str
    worker: int
    submitted_at: float
    deadline_at: Optional[float]
    run: Optional[VerifierRun] = None
    wait: int = 0
    total_wait: int = 0
    slices: int = 0
    # Executions begun (inline run creations + remote run starts).
    attempts: int = 0
    # Worker-process deaths attributed to this job (the poison gauge).
    crashes: int = 0
    # Earliest monotonic time the next attempt may start (retry backoff).
    not_before: float = 0.0
    # Whether the job's run is currently open in the shard's worker process.
    remote_started: bool = False
    # Pinned to in-process execution (payload does not pickle).
    inline_only: bool = False
    cache_stats: Dict[str, int] = field(default_factory=dict)
    done: Optional[JobResult] = None


class _Worker:
    """One worker shard: a queue of jobs plus its synchronisation state.

    ``lock`` guards the job list; ``wake`` (a condition on the same lock)
    lets a threaded worker sleep while its queue is empty and be woken by
    submissions or shutdown.  The cooperative transport takes the same lock
    — uncontended, so effectively free — which keeps one code path.  Under
    the process transport the shard thread additionally owns ``executor``
    (the supervised worker process) and the crash bookkeeping that decides
    when the shard ``degraded`` back to in-process execution.
    """

    def __init__(self, index: int) -> None:
        self.index = index
        self.jobs: List[_Job] = []
        self.lock = threading.RLock()
        self.wake = threading.Condition(self.lock)
        self.thread: Optional[threading.Thread] = None
        self.executor: Optional[ShardExecutor] = None
        self.degraded: Optional[str] = None
        self.crashes: int = 0


class VerificationService:
    """Multiplex verification jobs over a pool of workers.

    Batch use::

        service = VerificationService(ServiceConfig(pool_size=4))
        ids = [service.submit(network, spec) for spec in specs]
        results = {r.job_id: r for r in service.as_completed()}

    ``run_until_complete()`` drains everything and returns results in
    submission order (on every transport); :meth:`stream_results` is the
    submit-and-stream convenience.  Under the default cooperative transport
    the caller drives the service by iterating :meth:`as_completed` (or
    calling :meth:`step` directly) and determinism follows; under
    ``transport="threaded"`` / ``"process"`` workers drive themselves,
    results stream in completion order, and the service should be
    :meth:`shutdown` (or used as a context manager) when done.
    :meth:`as_completed` supports one consumer at a time.
    """

    def __init__(self, config: Optional[ServiceConfig] = None,
                 verifier_factory: Optional[
                     Callable[[CacheBundle], object]] = None) -> None:
        self.config = config or ServiceConfig()
        self.verifier_factory = verifier_factory or _default_verifier_factory
        self.pool = FingerprintCachePool(self.config.lp_cache_size,
                                         self.config.bound_cache_size)
        self._workers = [_Worker(i) for i in range(self.config.pool_size)]
        self._jobs: Dict[str, _Job] = {}
        self._lock = threading.RLock()
        self._next_seq = 0
        self._next_worker = 0
        self._slices = 0
        self._failed = 0
        self._rejected = 0
        self._retries = 0
        self._worker_crashes = 0
        self._worker_restarts = 0
        self._jobs_inline = 0
        self._downgrades: List[dict] = []
        self._results: "queue.SimpleQueue[JobResult]" = queue.SimpleQueue()
        self._pending_rejects: List[JobResult] = []
        self._listeners: List[Callable[[JobResult], None]] = []
        self._shutdown = False
        self._threads_started = False

    @property
    def threaded(self) -> bool:
        """Whether this service runs the threaded transport."""
        return self.config.transport == "threaded"

    @property
    def self_driving(self) -> bool:
        """Whether workers drive themselves (any non-cooperative transport)."""
        return self.config.transport != "cooperative"

    # -- submission ------------------------------------------------------------
    def submit(self, network: Network, spec: Specification,
               budget: Optional[Budget] = None, priority: int = 0,
               deadline_seconds: Optional[float] = None,
               verifier_factory: Optional[
                   Callable[[CacheBundle], object]] = None,
               metadata: Optional[dict] = None) -> str:
        """Enqueue one job; returns its id (results carry it back)."""
        request = JobRequest(network=network, spec=spec, budget=budget,
                             priority=priority,
                             deadline_seconds=deadline_seconds,
                             verifier_factory=verifier_factory,
                             metadata=dict(metadata or {}))
        return self.submit_request(request)

    def submit_request(self, request: JobRequest) -> str:
        """Enqueue a prebuilt :class:`~repro.service.jobs.JobRequest`.

        Malformed requests (non-positive deadline or budget limits) are
        *rejected*, not raised: the job is accepted, immediately finalised
        with ``JobError(kind="InvalidRequest", stage="submit")`` and
        ``attempts == 0``, and flows through the normal completion stream —
        so a batch with one bad request still runs the other jobs and the
        caller sees the rejection where it sees every other failure.
        """
        error = self._validate_request(request)
        fingerprint = self.pool.fingerprint_for(request.network, request.spec)
        now = time.monotonic()
        with self._lock:
            require(not self._shutdown,
                    "service is shut down; no new submissions")
            seq = self._next_seq
            self._next_seq += 1
            job = _Job(
                job_id=f"job-{seq}",
                seq=seq,
                request=request,
                fingerprint=fingerprint,
                worker=int(fingerprint[:8], 16) % self.config.pool_size,
                submitted_at=now,
                deadline_at=(None if request.deadline_seconds is None
                             or error is not None
                             else now + request.deadline_seconds),
            )
            self._jobs[job.job_id] = job
        if error is not None:
            return self._reject(job, error)
        worker = self._workers[job.worker]
        with worker.wake:
            worker.jobs.append(job)
            worker.wake.notify()
        if self.self_driving:
            self._ensure_threads()
        return job.job_id

    def submit_many(self, requests: Iterable[JobRequest]) -> List[str]:
        """Enqueue a batch of requests; returns their ids in order."""
        return [self.submit_request(request) for request in requests]

    # -- scheduling ------------------------------------------------------------
    def has_pending(self) -> bool:
        """Whether any submitted job has not finished yet."""
        for worker in self._workers:
            with worker.lock:
                if worker.jobs:
                    return True
        return False

    def step(self) -> Optional[JobResult]:
        """Run one cooperative scheduling slice; the finished result, if any.

        Picks the next worker (round-robin over workers with pending jobs),
        selects that worker's next job under the priority/bounded-wait
        policy, and advances it up to ``rounds_per_slice`` driver rounds.
        Returns ``None`` while the job needs more slices (or no work is
        pending, or every pending job sits in a retry-backoff window).
        Only the cooperative transport is caller-stepped; under
        ``transport="threaded"`` / ``"process"`` the workers drive
        themselves and this method raises.
        """
        require(not self.self_driving,
                "step() drives the cooperative transport; threaded/process "
                "workers run autonomously — iterate as_completed() instead")
        worker = self._pick_worker()
        if worker is None:
            if self.has_pending():
                # Every pending job is backing off; don't spin hot.
                time.sleep(_BACKOFF_POLL_SECONDS)
            return None
        with worker.lock:
            job = self._pick_job(worker)
            if job is None:  # raced into a backoff window
                return None
            self._charge_waits(worker, job)
        return self._run_slice(worker, job)

    def as_completed(self) -> Iterator[JobResult]:
        """Drive/drain the service, yielding each result as it finishes.

        Cooperative: runs slices inline, deterministically.  Threaded /
        process: blocks on the workers' completion stream; the yield order
        is completion order, which is *not* deterministic across workers
        (use :meth:`run_until_complete` for submission-ordered collection).
        """
        if self.self_driving:
            return self._as_completed_threaded()
        return self._as_completed_cooperative()

    def run_until_complete(self) -> List[JobResult]:
        """Drain every pending job; results in submission order.

        The deterministic collection point shared by all transports:
        whatever order jobs *finish* in, the returned list is ordered by
        submission, so batch callers observe identical output across
        transports.
        """
        for _ in self.as_completed():
            pass
        with self._lock:
            done = [(job.seq, job.done) for job in self._jobs.values()
                    if job.done is not None]
        return [result for _, result in sorted(done, key=lambda pair: pair[0])]

    def stream_results(self,
                       requests: Iterable[JobRequest]) -> Iterator[JobResult]:
        """Submit ``requests`` and stream results in completion order.

        Any jobs already pending when the stream starts are driven (and
        yielded) too — the stream simply drains the whole service.
        """
        self.submit_many(requests)
        return self.as_completed()

    # -- lifecycle -------------------------------------------------------------
    def add_completion_listener(self,
                                listener: Callable[[JobResult], None]) -> None:
        """Register ``listener`` to be called once per finished job.

        Under the self-driving transports listeners run on the worker
        thread that finished the job (the asyncio front-end bridges back to
        its event loop with ``call_soon_threadsafe``); they must be quick
        and must not raise.
        """
        self._listeners.append(listener)

    def shutdown(self, wait: bool = True) -> None:
        """Stop accepting submissions and wind the workers down.

        Pending jobs are *drained*, not dropped: workers finish their queues
        before exiting, so a shutdown after ``run_until_complete`` is
        instant while a premature one still honours every accepted job.
        Worker processes ship their warm cache bundles back into the pool
        before stopping.  Idempotent; a no-op on the cooperative transport
        apart from rejecting further submissions.  With ``wait`` the
        calling thread joins the workers.
        """
        with self._lock:
            self._shutdown = True
        for worker in self._workers:
            with worker.wake:
                worker.wake.notify_all()
        if wait and self.self_driving:
            for worker in self._workers:
                if worker.thread is not None:
                    worker.thread.join()

    def __enter__(self) -> "VerificationService":
        """Context-manager entry: the service itself."""
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        """Context-manager exit: shut the transport down (draining)."""
        self.shutdown(wait=True)

    # -- results & stats -------------------------------------------------------
    def result(self, job_id: str) -> Optional[JobResult]:
        """The finished result of ``job_id`` (``None`` while running)."""
        with self._lock:
            return self._jobs[job_id].done

    def stats(self) -> dict:
        """Service-level counters: jobs, slices, robustness, pool stats."""
        with self._lock:
            done = sum(1 for job in self._jobs.values()
                       if job.done is not None)
            submitted = len(self._jobs)
            slices, failed = self._slices, self._failed
            rejected, retries = self._rejected, self._retries
            crashes, restarts = self._worker_crashes, self._worker_restarts
            inline = self._jobs_inline
            downgrades = [dict(entry) for entry in self._downgrades]
        return {
            "jobs_submitted": submitted,
            "jobs_completed": done,
            "jobs_failed": failed,
            "jobs_rejected": rejected,
            "jobs_inline": inline,
            "retries": retries,
            "worker_crashes": crashes,
            "worker_restarts": restarts,
            "transport_downgrades": downgrades,
            "slices": slices,
            "pool_size": self.config.pool_size,
            "transport": self.config.transport,
            "pool": self.pool.stats(),
        }

    # -- cache persistence -----------------------------------------------------
    def save_caches(self, directory: Union[str, Path]) -> List[Path]:
        """Persist every fingerprint bundle to ``directory`` (see pool docs)."""
        return self.pool.save_bundles(directory)

    def load_caches(self, directory: Union[str, Path]) -> int:
        """Warm-start the pool from a :meth:`save_caches` directory."""
        return self.pool.load_bundles(directory)

    # -- submit validation -----------------------------------------------------
    def _validate_request(self, request: JobRequest) -> Optional[JobError]:
        """Structured rejection for malformed requests (``None`` when fine)."""
        if (request.deadline_seconds is not None
                and request.deadline_seconds <= 0):
            return JobError(
                "InvalidRequest",
                f"deadline_seconds must be positive when given, got "
                f"{request.deadline_seconds!r}", "submit")
        budget = request.budget
        if budget is not None:
            if budget.max_nodes is not None and budget.max_nodes <= 0:
                return JobError(
                    "InvalidRequest",
                    f"budget.max_nodes must be positive when given, got "
                    f"{budget.max_nodes!r}", "submit")
            if budget.max_seconds is not None and budget.max_seconds <= 0:
                return JobError(
                    "InvalidRequest",
                    f"budget.max_seconds must be positive when given, got "
                    f"{budget.max_seconds!r}", "submit")
        return None

    def _reject(self, job: _Job, error: JobError) -> str:
        """Finalise a never-run job with a submit-stage error; its id."""
        done = JobResult(job_id=job.job_id, fingerprint=job.fingerprint,
                         error=error, attempts=0)
        with self._lock:
            job.done = done
            self._failed += 1
            self._rejected += 1
            if self.self_driving:
                self._results.put(done)
            else:
                self._pending_rejects.append(done)
        for listener in list(self._listeners):
            listener(done)
        return job.job_id

    # -- cooperative drive -----------------------------------------------------
    def _as_completed_cooperative(self) -> Iterator[JobResult]:
        while True:
            with self._lock:
                rejects, self._pending_rejects = self._pending_rejects, []
            for done in rejects:
                yield done
            if not self.has_pending():
                return
            finished = self.step()
            if finished is not None:
                yield finished

    def _pick_worker(self) -> Optional[_Worker]:
        for offset in range(len(self._workers)):
            worker = self._workers[(self._next_worker + offset)
                                   % len(self._workers)]
            with worker.lock:
                if worker.jobs and self._pick_job(worker) is not None:
                    self._next_worker = (worker.index + 1) % len(self._workers)  # lint: disable=lock-discipline - dispatcher-confined round-robin cursor; only the single driving thread calls _pick_worker
                    return worker
        return None

    # -- threaded drive --------------------------------------------------------
    def _ensure_threads(self) -> None:
        if self._threads_started:
            return
        with self._lock:
            if self._threads_started:
                return
            for worker in self._workers:
                thread = threading.Thread(
                    target=self._worker_loop, args=(worker,),
                    name=f"verification-worker-{worker.index}", daemon=True)
                worker.thread = thread
                thread.start()
            self._threads_started = True

    def _worker_loop(self, worker: _Worker) -> None:
        """Drain ``worker``'s queue: the per-worker policy, on a real thread."""
        try:
            while True:
                with worker.wake:
                    job: Optional[_Job] = None
                    while job is None:
                        if not worker.jobs:
                            if self._shutdown:
                                return
                            worker.wake.wait()
                            continue
                        job = self._pick_job(worker)
                        if job is None:
                            # Everything pending is in a retry-backoff
                            # window; poll until a job becomes runnable.
                            worker.wake.wait(_BACKOFF_POLL_SECONDS)
                    self._charge_waits(worker, job)
                # The slice itself runs without the worker lock so
                # submissions (and has_pending probes) never wait on a
                # verification round.
                self._run_slice(worker, job)
        finally:
            self._release_executor(worker)

    def _as_completed_threaded(self) -> Iterator[JobResult]:
        self._ensure_threads()
        while True:
            try:
                yield self._results.get_nowait()
                continue
            except queue.Empty:
                pass
            if not self.has_pending():
                # Finishing publishes to the queue *before* the job leaves
                # its worker queue (one critical section), so an empty pool
                # plus an empty results queue really means: all done.
                try:
                    yield self._results.get_nowait()
                    continue
                except queue.Empty:
                    return
            try:
                yield self._results.get(timeout=0.05)
            except queue.Empty:
                continue

    # -- shared internals ------------------------------------------------------
    def _charge_waits(self, worker: _Worker, job: _Job) -> None:
        """Account one waiting slice to every pending job except ``job``."""
        for other in worker.jobs:
            if other is not job:
                other.wait += 1
                other.total_wait += 1
        job.wait = 0

    def _pick_job(self, worker: _Worker) -> Optional[_Job]:
        # Starved jobs are served in submission order, *not* largest-wait
        # first: under a continuous stream of submissions every pending job
        # is eventually starved, and largest-wait-first then degenerates to
        # round-robin over an ever-growing queue — the oldest job's share of
        # service shrinks toward zero.  FIFO over the starved set bounds any
        # job's gap between slices by max_wait_slices plus one slice per
        # *older* pending job, a set that never grows after submission.
        #
        # Jobs inside a retry-backoff window (``not_before`` in the future)
        # are invisible to selection; without retries the filter is a no-op,
        # so the policy — and the conformance properties — are unchanged.
        now = time.monotonic()
        runnable = [job for job in worker.jobs if job.not_before <= now]
        if not runnable:
            return None
        starved = [job for job in runnable
                   if job.wait >= self.config.max_wait_slices]
        if starved:
            return min(starved, key=lambda job: job.seq)
        return max(runnable,
                   key=lambda job: (job.request.priority, -job.seq))

    def _deadline_passed(self, job: _Job) -> bool:
        return (job.deadline_at is not None
                and time.monotonic() >= job.deadline_at)

    def _run_slice(self, worker: _Worker, job: _Job) -> Optional[JobResult]:
        if (self.config.transport == "process" and not job.inline_only
                and worker.degraded is None):
            return self._run_slice_remote(worker, job)
        return self._run_slice_inline(worker, job)

    def _run_slice_inline(self, worker: _Worker,
                          job: _Job) -> Optional[JobResult]:
        with self._lock:
            self._slices += 1
        job.slices += 1
        bundle = self.pool.bundle(job.fingerprint)
        before = bundle.stats_snapshot()
        result: Optional[VerificationResult] = None
        error: Optional[JobError] = None
        deadline_exceeded = False
        try:
            if self._deadline_passed(job):
                result = self._expire(job)
                deadline_exceeded = True
            else:
                if job.run is None:
                    factory = (job.request.verifier_factory
                               or self.verifier_factory)
                    job.attempts += 1
                    budget = job.request.budget
                    if budget is not None and job.attempts > 1:
                        # A retry must not inherit the failed attempt's
                        # charges: fresh limits, fresh clock.
                        budget = budget.copy()
                    try:
                        verifier = factory(bundle)
                        job.run = verifier.start_run(job.request.network,
                                                     job.request.spec,
                                                     budget)
                    except Exception as exc:  # noqa: BLE001 - isolation boundary
                        error = JobError(type(exc).__name__, str(exc), "setup")
                if error is None:
                    for _ in range(self.config.rounds_per_slice):
                        try:
                            result = job.run.step()
                        except Exception as exc:  # noqa: BLE001 - isolation boundary
                            error = JobError(type(exc).__name__, str(exc),
                                             "round")
                            break
                        if result is not None:
                            break
                        if self._deadline_passed(job):
                            result = self._expire(job)
                            deadline_exceeded = True
                            break
        finally:
            delta = CacheBundle.stats_delta(before, bundle.stats_snapshot())
            for key, value in delta.items():
                job.cache_stats[key] = job.cache_stats.get(key, 0) + value
        if error is not None:
            return self._fail(worker, job, error)
        if result is not None:
            return self._complete(worker, job, result, deadline_exceeded)
        return None

    # -- process drive ---------------------------------------------------------
    def _run_slice_remote(self, worker: _Worker,
                          job: _Job) -> Optional[JobResult]:
        """One scheduling slice executed in the shard's worker process."""
        executor = self._ensure_executor(worker)
        if executor is None:  # the shard just degraded
            return self._run_slice_inline(worker, job)
        if self._deadline_passed(job) and not job.remote_started:
            # Mirror the inline pre-start expiry: no run exists anywhere,
            # so the TIMEOUT is synthesised parent-side within one slice.
            with self._lock:
                self._slices += 1
            job.slices += 1
            return self._complete(worker, job, self._expire(job), True)
        try:
            if not job.remote_started:
                job.attempts += 1
                try:
                    reply = executor.start_job(job.job_id, job.fingerprint,
                                               job.request,
                                               self._remote_factory(job),
                                               self.pool)
                except UnpicklableJob:
                    # Not a failure: this job's payload cannot cross the
                    # pipe, so it runs in-process while picklable jobs on
                    # the shard keep their isolation.
                    job.attempts -= 1
                    job.inline_only = True
                    with self._lock:
                        self._jobs_inline += 1
                    return self._run_slice_inline(worker, job)
                self._merge_delta(job, reply)
                if reply.get("op") == "error":
                    with self._lock:
                        self._slices += 1
                    job.slices += 1
                    return self._fail(worker, job, reply_error(reply))
                job.remote_started = True
            with self._lock:
                self._slices += 1
            job.slices += 1
            reply = executor.run_slice(job.job_id,
                                       self.config.rounds_per_slice,
                                       job.deadline_at)
        except WorkerCrashed as exc:
            return self._handle_crash(worker, job, exc)
        self._merge_delta(job, reply)
        op = reply.get("op")
        if op == "error":
            job.remote_started = False  # the worker dropped the run
            return self._fail(worker, job, reply_error(reply))
        if op == "done":
            job.remote_started = False
            return self._complete(worker, job, reply["result"],
                                  bool(reply.get("deadline_exceeded")))
        return None

    def _remote_factory(self, job: _Job) -> Optional[Callable]:
        """The factory to ship to the worker (``None`` = worker default)."""
        if job.request.verifier_factory is not None:
            return job.request.verifier_factory
        if self.verifier_factory is not _default_verifier_factory:
            return self.verifier_factory
        return None

    @staticmethod
    def _merge_delta(job: _Job, reply: dict) -> None:
        """Fold a worker reply's cache delta into the job's counters."""
        for key, value in reply.get("cache_delta", {}).items():
            job.cache_stats[key] = job.cache_stats.get(key, 0) + value

    def _ensure_executor(self, worker: _Worker) -> Optional[ShardExecutor]:
        """The shard's live executor — spawning, restarting or degrading.

        Returns ``None`` exactly when the shard (just) degraded to
        in-process execution.  A worker found dead *between* slices (no
        request observed the death) still counts against the shard's crash
        budget, but implicates no job: the remote runs are simply lost and
        restart from scratch on the fresh worker.
        """
        executor = worker.executor
        if executor is None:
            try:
                worker.executor = ShardExecutor(
                    worker.index, self.config.lp_cache_size,
                    self.config.bound_cache_size,
                    start_method=self.config.process_start_method,
                    slice_timeout=self.config.slice_timeout_seconds)
            except ProcessTransportUnavailable as exc:
                self._degrade(worker, f"process spawn unavailable: {exc}")
                return None
            return worker.executor
        if executor.alive():
            return executor
        worker.crashes += 1
        with self._lock:
            self._worker_crashes += 1
        self._reset_remote_jobs(worker)
        if worker.crashes > self.config.worker_crash_budget:
            self._degrade(worker, "worker crash budget exceeded")
            return None
        return self._restart_executor(worker)

    def _restart_executor(self, worker: _Worker) -> Optional[ShardExecutor]:
        """Restart the shard's worker process (degrading when it fails)."""
        try:
            worker.executor.restart()
        except ProcessTransportUnavailable as exc:
            self._degrade(worker, f"worker restart failed: {exc}")
            return None
        with self._lock:
            self._worker_restarts += 1
        return worker.executor

    def _reset_remote_jobs(self, worker: _Worker) -> None:
        """Forget remote runs after a worker death (restart from scratch).

        Restarting from the beginning — never resuming partial state —
        is what keeps a retried job's trajectory identical to an
        uninterrupted run.
        """
        with worker.lock:
            jobs = list(worker.jobs)
        for job in jobs:
            job.remote_started = False

    def _handle_crash(self, worker: _Worker, job: _Job,
                      exc: WorkerCrashed) -> Optional[JobResult]:
        """A worker died under ``job``: retry, poison-fail, restart/degrade."""
        worker.crashes += 1
        job.crashes += 1
        with self._lock:
            self._worker_crashes += 1
        self._reset_remote_jobs(worker)
        retry = self.config.retry
        outcome: Optional[JobResult] = None
        if job.crashes >= retry.max_attempts \
                or not retry.retryable("WorkerCrash"):
            # Poison job: it keeps killing its worker, so it fails — the
            # service, the shard and every other job keep going.
            error = JobError(
                "WorkerCrash",
                f"worker process died executing this job "
                f"{job.crashes} time(s) (last: {exc})", "round")
            outcome = self._fail(worker, job, error, allow_retry=False)
        else:
            with self._lock:
                self._retries += 1
            job.not_before = (time.monotonic()
                              + retry.delay_seconds(job.job_id, job.crashes))
        if worker.degraded is None:
            if worker.crashes > self.config.worker_crash_budget:
                self._degrade(worker, "worker crash budget exceeded")
            else:
                self._restart_executor(worker)
        return outcome

    def _degrade(self, worker: _Worker, reason: str) -> None:
        """Fall back to in-process execution for this shard, permanently.

        The degradation ladder's middle rung: the shard thread keeps
        draining its queue under the same policy, just without the process
        boundary.  Jobs implicated in worker crashes are failed instead of
        run inline — a job that kills its worker would kill the host — and
        the downgrade is recorded in :meth:`VerificationService.stats`.
        """
        worker.degraded = reason
        with self._lock:
            self._downgrades.append({"worker": worker.index,
                                     "reason": reason})
        executor = worker.executor
        worker.executor = None
        if executor is not None:
            executor.stop(self.pool)
        with worker.lock:
            implicated = [job for job in worker.jobs if job.crashes > 0]
        for job in implicated:
            self._fail(worker, job, JobError(
                "WorkerCrash",
                f"shard degraded to in-process execution ({reason}); job "
                f"implicated in {job.crashes} worker crash(es)", "round"),
                allow_retry=False)

    def _release_executor(self, worker: _Worker) -> None:
        """Stop the shard's worker process, reclaiming its warm bundles."""
        executor = worker.executor
        worker.executor = None
        if executor is not None:
            executor.stop(self.pool)

    # -- completion ------------------------------------------------------------
    def _expire(self, job: _Job) -> VerificationResult:
        """Force a deadline TIMEOUT (interrupt, or synthesise pre-start)."""
        result = job.run.interrupt() if job.run is not None else None
        if result is None:
            result = VerificationResult(
                status=VerificationStatus.TIMEOUT, verifier="service",
                elapsed_seconds=time.monotonic() - job.submitted_at)
        return result

    def _finish_job(self, worker: _Worker, job: _Job,
                    done: JobResult) -> JobResult:
        # Removal and publication form one critical section: once a worker
        # queue is observed empty, every finished result is already in the
        # completion stream (the threaded as_completed termination test).
        with worker.lock:
            worker.jobs.remove(job)
            job.done = done
            if self.self_driving:
                self._results.put(done)
        for listener in list(self._listeners):
            listener(done)
        return done

    def _complete(self, worker: _Worker, job: _Job,
                  result: VerificationResult,
                  deadline_exceeded: bool) -> JobResult:
        done = JobResult(
            job_id=job.job_id, fingerprint=job.fingerprint, result=result,
            slices=job.slices, wait_slices=job.total_wait,
            latency_seconds=time.monotonic() - job.submitted_at,
            deadline_exceeded=deadline_exceeded,
            attempts=max(job.attempts, 1), worker_crashes=job.crashes,
            cache_stats=dict(job.cache_stats))
        result.extras["service"] = {
            "job_id": done.job_id,
            "fingerprint": done.fingerprint,
            "slices": done.slices,
            "wait_slices": done.wait_slices,
            "deadline_exceeded": done.deadline_exceeded,
            "attempts": done.attempts,
            "worker_crashes": done.worker_crashes,
            "cache_stats": done.cache_stats,
        }
        return self._finish_job(worker, job, done)

    def _fail(self, worker: _Worker, job: _Job, error: JobError,
              allow_retry: bool = True) -> Optional[JobResult]:
        retry = self.config.retry
        if self.config.quarantine_on_error:
            self.pool.discard(job.fingerprint)
            if worker.executor is not None:
                worker.executor.discard(job.fingerprint)
        if (allow_retry and retry.retryable(error.kind)
                and job.attempts < retry.max_attempts):
            # Re-enqueue instead of finalising: the job stays in the
            # worker's queue and becomes runnable after its backoff.
            job.run = None
            job.remote_started = False
            with self._lock:
                self._retries += 1
            job.not_before = (time.monotonic()
                              + retry.delay_seconds(job.job_id, job.attempts))
            return None
        with self._lock:
            self._failed += 1
        done = JobResult(
            job_id=job.job_id, fingerprint=job.fingerprint, error=error,
            slices=job.slices, wait_slices=job.total_wait,
            latency_seconds=time.monotonic() - job.submitted_at,
            attempts=max(job.attempts, 1), worker_crashes=job.crashes,
            cache_stats=dict(job.cache_stats))
        return self._finish_job(worker, job, done)
