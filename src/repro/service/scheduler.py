"""A verification service multiplexing jobs over a pool of workers.

The service turns the library's verifiers into a batch/streaming facility:
many ``(network, property, budget)`` jobs run interleaved, preempted only at
:class:`~repro.engine.driver.FrontierDriver` round boundaries (where the
verifiers' ``affordable_phases`` budget accounting already makes stopping
sound).  Two execution transports share one API and one scheduling policy
(see ``docs/SERVICE.md#transports``):

* ``"cooperative"`` — single-threaded and fully deterministic: one job
  advances at a time, driven by the caller iterating :meth:`VerificationService.step`
  / :meth:`VerificationService.as_completed`, so the same submissions always
  produce the same interleaving.
* ``"threaded"`` — one real worker thread per shard: each worker drains its
  own queue under the identical per-worker policy, so jobs on *different*
  workers execute in parallel while jobs on one worker keep the cooperative
  ordering guarantees.  Results stream in completion order (nondeterministic
  across workers); :meth:`VerificationService.run_until_complete` restores
  deterministic submission order at the collection point.

Either way a job's verdict, budget charges and counterexample are
byte-identical to an uninterrupted solo run — the caches shared between
jobs return exactly what recomputation would, so multiplexing buys *reuse*
(and, threaded, parallelism), never races.

Scheduling policy
-----------------
* **Sharding**: ``worker = int(fingerprint[:8], 16) % pool_size`` — jobs on
  one problem land on one worker, keeping their cache traffic local and the
  per-worker interleaving deterministic.
* **Priority with bounded wait**: within a worker the highest-priority
  pending job runs next (ties: submission order), but any job that has
  waited ``max_wait_slices`` slices is served first (oldest submission
  first) — between two slices of a job at most ``max_wait_slices`` slices
  plus one per *older* pending job can go elsewhere, so an endless stream
  of high-priority submissions can never starve it.
* **Deadlines**: wall-clock from submission, checked at slice boundaries
  (including before a job's first round); an expired job is interrupted via
  its run's ``interrupt()`` (TIMEOUT with the best bound so far) and marked
  ``deadline_exceeded``.
* **Fault isolation**: an exception escaping a job's setup or a round is
  captured as a structured :class:`~repro.service.jobs.JobError` on *that
  job's* result; the fingerprint's cache bundle is quarantined (discarded)
  in case a poisoned entry caused the failure, and every other job — on the
  same worker or not — continues untouched.  Under the threaded transport a
  failing job never takes its worker thread down.
"""

from __future__ import annotations

import queue
import threading
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, Iterator, List, Optional

from repro.bounds.cache import DEFAULT_CACHE_SIZE, DEFAULT_LP_CACHE_SIZE
from repro.nn.network import Network
from repro.service.jobs import JobError, JobRequest, JobResult
from repro.service.pool import CacheBundle, FingerprintCachePool
from repro.specs.properties import Specification
from repro.utils.timing import Budget
from repro.utils.validation import require
from repro.verifiers.result import (
    VerificationResult,
    VerificationStatus,
    VerifierRun,
)

#: Execution transports accepted by :attr:`ServiceConfig.transport`.  The
#: asyncio front-end (:class:`~repro.service.async_service.AsyncVerificationService`)
#: is a wrapper over ``"threaded"``, not a third scheduler.
TRANSPORTS = ("cooperative", "threaded")


def _default_verifier_factory(bundle: CacheBundle):
    """Build the paper's verifier on the bundle's shared caches."""
    # Imported lazily: ``repro.service`` initialises before ``repro.core``
    # when the package is imported from scratch.
    from repro.core.abonn import AbonnVerifier
    return AbonnVerifier(lp_cache=bundle.lp_cache,
                         bound_cache=bundle.bound_cache)


@dataclass
class ServiceConfig:
    """Knobs of the verification service (see the module docstring)."""

    #: Number of workers jobs are sharded across (threads when
    #: ``transport="threaded"``, cooperative queues otherwise).
    pool_size: int = 2
    #: Driver rounds one job advances per scheduling slice.
    rounds_per_slice: int = 4
    #: Slices a pending job may wait before it pre-empts higher priorities.
    max_wait_slices: int = 8
    #: Discard a fingerprint's cache bundle when a job on it fails.
    quarantine_on_error: bool = True
    #: Capacity of each fingerprint bundle's leaf-LP cache.
    lp_cache_size: int = DEFAULT_LP_CACHE_SIZE
    #: Capacity of each fingerprint bundle's bound cache.
    bound_cache_size: int = DEFAULT_CACHE_SIZE
    #: Execution transport: ``"cooperative"`` (caller-driven, deterministic
    #: interleaving) or ``"threaded"`` (one worker thread per shard).
    transport: str = "cooperative"

    def __post_init__(self) -> None:
        require(self.pool_size >= 1, "pool_size must be positive")
        require(self.rounds_per_slice >= 1, "rounds_per_slice must be positive")
        require(self.max_wait_slices >= 1, "max_wait_slices must be positive")
        require(self.transport in TRANSPORTS,
                f"transport must be one of {TRANSPORTS}, got {self.transport!r}")


@dataclass
class _Job:
    """Scheduler-internal job state."""

    job_id: str
    seq: int
    request: JobRequest
    fingerprint: str
    worker: int
    submitted_at: float
    deadline_at: Optional[float]
    run: Optional[VerifierRun] = None
    wait: int = 0
    total_wait: int = 0
    slices: int = 0
    cache_stats: Dict[str, int] = field(default_factory=dict)
    done: Optional[JobResult] = None


class _Worker:
    """One worker shard: a queue of jobs plus its synchronisation state.

    ``lock`` guards the job list; ``wake`` (a condition on the same lock)
    lets a threaded worker sleep while its queue is empty and be woken by
    submissions or shutdown.  The cooperative transport takes the same lock
    — uncontended, so effectively free — which keeps one code path.
    """

    def __init__(self, index: int) -> None:
        self.index = index
        self.jobs: List[_Job] = []
        self.lock = threading.RLock()
        self.wake = threading.Condition(self.lock)
        self.thread: Optional[threading.Thread] = None


class VerificationService:
    """Multiplex verification jobs over a pool of workers.

    Batch use::

        service = VerificationService(ServiceConfig(pool_size=4))
        ids = [service.submit(network, spec) for spec in specs]
        results = {r.job_id: r for r in service.as_completed()}

    ``run_until_complete()`` drains everything and returns results in
    submission order (on every transport); :meth:`stream_results` is the
    submit-and-stream convenience.  Under the default cooperative transport
    the caller drives the service by iterating :meth:`as_completed` (or
    calling :meth:`step` directly) and determinism follows; under
    ``transport="threaded"`` worker threads drive themselves, results stream
    in completion order, and the service should be :meth:`shutdown` (or used
    as a context manager) when done.  :meth:`as_completed` supports one
    consumer at a time.
    """

    def __init__(self, config: Optional[ServiceConfig] = None,
                 verifier_factory: Optional[
                     Callable[[CacheBundle], object]] = None) -> None:
        self.config = config or ServiceConfig()
        self.verifier_factory = verifier_factory or _default_verifier_factory
        self.pool = FingerprintCachePool(self.config.lp_cache_size,
                                         self.config.bound_cache_size)
        self._workers = [_Worker(i) for i in range(self.config.pool_size)]
        self._jobs: Dict[str, _Job] = {}
        self._lock = threading.RLock()
        self._next_seq = 0
        self._next_worker = 0
        self._slices = 0
        self._failed = 0
        self._results: "queue.SimpleQueue[JobResult]" = queue.SimpleQueue()
        self._listeners: List[Callable[[JobResult], None]] = []
        self._shutdown = False
        self._threads_started = False

    @property
    def threaded(self) -> bool:
        """Whether this service runs the threaded transport."""
        return self.config.transport == "threaded"

    # -- submission ------------------------------------------------------------
    def submit(self, network: Network, spec: Specification,
               budget: Optional[Budget] = None, priority: int = 0,
               deadline_seconds: Optional[float] = None,
               verifier_factory: Optional[
                   Callable[[CacheBundle], object]] = None,
               metadata: Optional[dict] = None) -> str:
        """Enqueue one job; returns its id (results carry it back)."""
        request = JobRequest(network=network, spec=spec, budget=budget,
                             priority=priority,
                             deadline_seconds=deadline_seconds,
                             verifier_factory=verifier_factory,
                             metadata=dict(metadata or {}))
        return self.submit_request(request)

    def submit_request(self, request: JobRequest) -> str:
        """Enqueue a prebuilt :class:`~repro.service.jobs.JobRequest`."""
        require(request.deadline_seconds is None
                or request.deadline_seconds > 0,
                "deadline_seconds must be positive when given")
        fingerprint = self.pool.fingerprint_for(request.network, request.spec)
        now = time.monotonic()
        with self._lock:
            require(not self._shutdown,
                    "service is shut down; no new submissions")
            seq = self._next_seq
            self._next_seq += 1
            job = _Job(
                job_id=f"job-{seq}",
                seq=seq,
                request=request,
                fingerprint=fingerprint,
                worker=int(fingerprint[:8], 16) % self.config.pool_size,
                submitted_at=now,
                deadline_at=(None if request.deadline_seconds is None
                             else now + request.deadline_seconds),
            )
            self._jobs[job.job_id] = job
        worker = self._workers[job.worker]
        with worker.wake:
            worker.jobs.append(job)
            worker.wake.notify()
        if self.threaded:
            self._ensure_threads()
        return job.job_id

    def submit_many(self, requests: Iterable[JobRequest]) -> List[str]:
        """Enqueue a batch of requests; returns their ids in order."""
        return [self.submit_request(request) for request in requests]

    # -- scheduling ------------------------------------------------------------
    def has_pending(self) -> bool:
        """Whether any submitted job has not finished yet."""
        for worker in self._workers:
            with worker.lock:
                if worker.jobs:
                    return True
        return False

    def step(self) -> Optional[JobResult]:
        """Run one cooperative scheduling slice; the finished result, if any.

        Picks the next worker (round-robin over workers with pending jobs),
        selects that worker's next job under the priority/bounded-wait
        policy, and advances it up to ``rounds_per_slice`` driver rounds.
        Returns ``None`` while the job needs more slices (or no work is
        pending).  Only the cooperative transport is caller-stepped; under
        ``transport="threaded"`` the workers drive themselves and this
        method raises.
        """
        require(not self.threaded,
                "step() drives the cooperative transport; threaded workers "
                "run autonomously — iterate as_completed() instead")
        worker = self._pick_worker()
        if worker is None:
            return None
        with worker.lock:
            job = self._pick_job(worker)
            self._charge_waits(worker, job)
        return self._run_slice(worker, job)

    def as_completed(self) -> Iterator[JobResult]:
        """Drive/drain the service, yielding each result as it finishes.

        Cooperative: runs slices inline, deterministically.  Threaded:
        blocks on the worker threads' completion stream; the yield order is
        completion order, which is *not* deterministic across workers (use
        :meth:`run_until_complete` for submission-ordered collection).
        """
        if self.threaded:
            return self._as_completed_threaded()
        return self._as_completed_cooperative()

    def run_until_complete(self) -> List[JobResult]:
        """Drain every pending job; results in submission order.

        The deterministic collection point shared by both transports:
        whatever order jobs *finish* in, the returned list is ordered by
        submission, so batch callers observe identical output across
        transports.
        """
        for _ in self.as_completed():
            pass
        with self._lock:
            done = [(job.seq, job.done) for job in self._jobs.values()
                    if job.done is not None]
        return [result for _, result in sorted(done, key=lambda pair: pair[0])]

    def stream_results(self,
                       requests: Iterable[JobRequest]) -> Iterator[JobResult]:
        """Submit ``requests`` and stream results in completion order.

        Any jobs already pending when the stream starts are driven (and
        yielded) too — the stream simply drains the whole service.
        """
        self.submit_many(requests)
        return self.as_completed()

    # -- lifecycle -------------------------------------------------------------
    def add_completion_listener(self,
                                listener: Callable[[JobResult], None]) -> None:
        """Register ``listener`` to be called once per finished job.

        Under the threaded transport listeners run on the worker thread that
        finished the job (the asyncio front-end bridges back to its event
        loop with ``call_soon_threadsafe``); they must be quick and must not
        raise.
        """
        self._listeners.append(listener)

    def shutdown(self, wait: bool = True) -> None:
        """Stop accepting submissions and wind the worker threads down.

        Pending jobs are *drained*, not dropped: workers finish their queues
        before exiting, so a shutdown after ``run_until_complete`` is
        instant while a premature one still honours every accepted job.
        Idempotent; a no-op on the cooperative transport apart from
        rejecting further submissions.  With ``wait`` the calling thread
        joins the workers.
        """
        with self._lock:
            self._shutdown = True
        for worker in self._workers:
            with worker.wake:
                worker.wake.notify_all()
        if wait and self.threaded:
            for worker in self._workers:
                if worker.thread is not None:
                    worker.thread.join()

    def __enter__(self) -> "VerificationService":
        """Context-manager entry: the service itself."""
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        """Context-manager exit: shut the transport down (draining)."""
        self.shutdown(wait=True)

    # -- results & stats -------------------------------------------------------
    def result(self, job_id: str) -> Optional[JobResult]:
        """The finished result of ``job_id`` (``None`` while running)."""
        with self._lock:
            return self._jobs[job_id].done

    def stats(self) -> dict:
        """Service-level counters: jobs, slices, pool/cache stats."""
        with self._lock:
            done = sum(1 for job in self._jobs.values()
                       if job.done is not None)
            submitted = len(self._jobs)
            slices, failed = self._slices, self._failed
        return {
            "jobs_submitted": submitted,
            "jobs_completed": done,
            "jobs_failed": failed,
            "slices": slices,
            "pool_size": self.config.pool_size,
            "transport": self.config.transport,
            "pool": self.pool.stats(),
        }

    # -- cache persistence -----------------------------------------------------
    def save_caches(self, directory) -> List:
        """Persist every fingerprint bundle to ``directory`` (see pool docs)."""
        return self.pool.save_bundles(directory)

    def load_caches(self, directory) -> int:
        """Warm-start the pool from a :meth:`save_caches` directory."""
        return self.pool.load_bundles(directory)

    # -- cooperative drive -----------------------------------------------------
    def _as_completed_cooperative(self) -> Iterator[JobResult]:
        while self.has_pending():
            finished = self.step()
            if finished is not None:
                yield finished

    def _pick_worker(self) -> Optional[_Worker]:
        for offset in range(len(self._workers)):
            worker = self._workers[(self._next_worker + offset)
                                   % len(self._workers)]
            with worker.lock:
                if worker.jobs:
                    self._next_worker = (worker.index + 1) % len(self._workers)
                    return worker
        return None

    # -- threaded drive --------------------------------------------------------
    def _ensure_threads(self) -> None:
        if self._threads_started:
            return
        with self._lock:
            if self._threads_started:
                return
            for worker in self._workers:
                thread = threading.Thread(
                    target=self._worker_loop, args=(worker,),
                    name=f"verification-worker-{worker.index}", daemon=True)
                worker.thread = thread
                thread.start()
            self._threads_started = True

    def _worker_loop(self, worker: _Worker) -> None:
        """Drain ``worker``'s queue: the per-worker policy, on a real thread."""
        while True:
            with worker.wake:
                while not worker.jobs and not self._shutdown:
                    worker.wake.wait()
                if not worker.jobs:  # shut down and drained
                    return
                job = self._pick_job(worker)
                self._charge_waits(worker, job)
            # The slice itself runs without the worker lock so submissions
            # (and has_pending probes) never wait on a verification round.
            self._run_slice(worker, job)

    def _as_completed_threaded(self) -> Iterator[JobResult]:
        self._ensure_threads()
        while True:
            try:
                yield self._results.get_nowait()
                continue
            except queue.Empty:
                pass
            if not self.has_pending():
                # Finishing publishes to the queue *before* the job leaves
                # its worker queue (one critical section), so an empty pool
                # plus an empty results queue really means: all done.
                try:
                    yield self._results.get_nowait()
                    continue
                except queue.Empty:
                    return
            try:
                yield self._results.get(timeout=0.05)
            except queue.Empty:
                continue

    # -- shared internals ------------------------------------------------------
    def _charge_waits(self, worker: _Worker, job: _Job) -> None:
        """Account one waiting slice to every pending job except ``job``."""
        for other in worker.jobs:
            if other is not job:
                other.wait += 1
                other.total_wait += 1
        job.wait = 0

    def _pick_job(self, worker: _Worker) -> _Job:
        # Starved jobs are served in submission order, *not* largest-wait
        # first: under a continuous stream of submissions every pending job
        # is eventually starved, and largest-wait-first then degenerates to
        # round-robin over an ever-growing queue — the oldest job's share of
        # service shrinks toward zero.  FIFO over the starved set bounds any
        # job's gap between slices by max_wait_slices plus one slice per
        # *older* pending job, a set that never grows after submission.
        starved = [job for job in worker.jobs
                   if job.wait >= self.config.max_wait_slices]
        if starved:
            return min(starved, key=lambda job: job.seq)
        return max(worker.jobs,
                   key=lambda job: (job.request.priority, -job.seq))

    def _deadline_passed(self, job: _Job) -> bool:
        return (job.deadline_at is not None
                and time.monotonic() >= job.deadline_at)

    def _run_slice(self, worker: _Worker, job: _Job) -> Optional[JobResult]:
        with self._lock:
            self._slices += 1
        job.slices += 1
        bundle = self.pool.bundle(job.fingerprint)
        before = bundle.stats_snapshot()
        result: Optional[VerificationResult] = None
        error: Optional[JobError] = None
        deadline_exceeded = False
        try:
            if self._deadline_passed(job):
                result = self._expire(job)
                deadline_exceeded = True
            else:
                if job.run is None:
                    factory = (job.request.verifier_factory
                               or self.verifier_factory)
                    try:
                        verifier = factory(bundle)
                        job.run = verifier.start_run(job.request.network,
                                                     job.request.spec,
                                                     job.request.budget)
                    except Exception as exc:  # noqa: BLE001 - isolation boundary
                        error = JobError(type(exc).__name__, str(exc), "setup")
                if error is None:
                    for _ in range(self.config.rounds_per_slice):
                        try:
                            result = job.run.step()
                        except Exception as exc:  # noqa: BLE001 - isolation boundary
                            error = JobError(type(exc).__name__, str(exc),
                                             "round")
                            break
                        if result is not None:
                            break
                        if self._deadline_passed(job):
                            result = self._expire(job)
                            deadline_exceeded = True
                            break
        finally:
            delta = CacheBundle.stats_delta(before, bundle.stats_snapshot())
            for key, value in delta.items():
                job.cache_stats[key] = job.cache_stats.get(key, 0) + value
        if error is not None:
            return self._fail(worker, job, error)
        if result is not None:
            return self._complete(worker, job, result, deadline_exceeded)
        return None

    def _expire(self, job: _Job) -> VerificationResult:
        """Force a deadline TIMEOUT (interrupt, or synthesise pre-start)."""
        result = job.run.interrupt() if job.run is not None else None
        if result is None:
            result = VerificationResult(
                status=VerificationStatus.TIMEOUT, verifier="service",
                elapsed_seconds=time.monotonic() - job.submitted_at)
        return result

    def _finish_job(self, worker: _Worker, job: _Job,
                    done: JobResult) -> JobResult:
        # Removal and publication form one critical section: once a worker
        # queue is observed empty, every finished result is already in the
        # completion stream (the threaded as_completed termination test).
        with worker.lock:
            worker.jobs.remove(job)
            job.done = done
            if self.threaded:
                self._results.put(done)
        for listener in list(self._listeners):
            listener(done)
        return done

    def _complete(self, worker: _Worker, job: _Job,
                  result: VerificationResult,
                  deadline_exceeded: bool) -> JobResult:
        done = JobResult(
            job_id=job.job_id, fingerprint=job.fingerprint, result=result,
            slices=job.slices, wait_slices=job.total_wait,
            latency_seconds=time.monotonic() - job.submitted_at,
            deadline_exceeded=deadline_exceeded,
            cache_stats=dict(job.cache_stats))
        result.extras["service"] = {
            "job_id": done.job_id,
            "fingerprint": done.fingerprint,
            "slices": done.slices,
            "wait_slices": done.wait_slices,
            "deadline_exceeded": done.deadline_exceeded,
            "cache_stats": done.cache_stats,
        }
        return self._finish_job(worker, job, done)

    def _fail(self, worker: _Worker, job: _Job, error: JobError) -> JobResult:
        with self._lock:
            self._failed += 1
        if self.config.quarantine_on_error:
            self.pool.discard(job.fingerprint)
        done = JobResult(
            job_id=job.job_id, fingerprint=job.fingerprint, error=error,
            slices=job.slices, wait_slices=job.total_wait,
            latency_seconds=time.monotonic() - job.submitted_at,
            cache_stats=dict(job.cache_stats))
        return self._finish_job(worker, job, done)
