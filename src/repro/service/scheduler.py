"""A cooperative verification service multiplexing jobs over driver workers.

The service turns the library's verifiers into a batch/streaming facility:
many ``(network, property, budget)`` jobs run interleaved in one process,
preempted only at :class:`~repro.engine.driver.FrontierDriver` round
boundaries (where the verifiers' ``affordable_phases`` budget accounting
already makes stopping sound).  Scheduling is **cooperative and
deterministic**: one job advances at a time, for ``rounds_per_slice`` rounds
per slice, so every job's verdict, budget charges and counterexample are
byte-identical to an uninterrupted solo run — multiplexing buys *reuse*, not
races.

Where the throughput comes from
-------------------------------
Jobs are sharded to workers by problem fingerprint, and every job on one
fingerprint shares that fingerprint's :class:`~repro.service.pool.CacheBundle`
(leaf-LP cache, split-aware bound cache) plus the pool-wide warm-model
digest.  A workload that revisits problems — radius sweeps, repeated API
queries, certification dashboards — therefore pays the expensive bound/LP
work once and serves the repeats from cache; that, not parallelism, is the
service's speedup (see ``benchmarks/bench_service.py``).

Scheduling policy
-----------------
* **Sharding**: ``worker = int(fingerprint[:8], 16) % pool_size`` — jobs on
  one problem land on one worker, keeping their cache traffic local and the
  interleaving deterministic.
* **Priority with bounded wait**: within a worker the highest-priority
  pending job runs next (ties: submission order), but any job that has
  waited ``max_wait_slices`` slices is served first (oldest submission
  first) — between two slices of a job at most ``max_wait_slices`` slices
  plus one per *older* pending job can go elsewhere, so an endless stream
  of high-priority submissions can never starve it.
* **Deadlines**: wall-clock from submission, checked at slice boundaries
  (including before a job's first round); an expired job is interrupted via
  its run's ``interrupt()`` (TIMEOUT with the best bound so far) and marked
  ``deadline_exceeded``.
* **Fault isolation**: an exception escaping a job's setup or a round is
  captured as a structured :class:`~repro.service.jobs.JobError` on *that
  job's* result; the fingerprint's cache bundle is quarantined (discarded)
  in case a poisoned entry caused the failure, and every other job — on the
  same worker or not — continues untouched.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, Iterator, List, Optional, Sequence

from repro.bounds.cache import DEFAULT_CACHE_SIZE, DEFAULT_LP_CACHE_SIZE
from repro.nn.network import Network
from repro.service.jobs import JobError, JobRequest, JobResult
from repro.service.pool import CacheBundle, FingerprintCachePool
from repro.specs.properties import Specification
from repro.utils.timing import Budget
from repro.utils.validation import require
from repro.verifiers.result import (
    VerificationResult,
    VerificationStatus,
    VerifierRun,
)


def _default_verifier_factory(bundle: CacheBundle):
    """Build the paper's verifier on the bundle's shared caches."""
    # Imported lazily: ``repro.service`` initialises before ``repro.core``
    # when the package is imported from scratch.
    from repro.core.abonn import AbonnVerifier
    return AbonnVerifier(lp_cache=bundle.lp_cache,
                         bound_cache=bundle.bound_cache)


@dataclass
class ServiceConfig:
    """Knobs of the verification service (see the module docstring)."""

    #: Number of cooperative workers jobs are sharded across.
    pool_size: int = 2
    #: Driver rounds one job advances per scheduling slice.
    rounds_per_slice: int = 4
    #: Slices a pending job may wait before it pre-empts higher priorities.
    max_wait_slices: int = 8
    #: Discard a fingerprint's cache bundle when a job on it fails.
    quarantine_on_error: bool = True
    #: Capacity of each fingerprint bundle's leaf-LP cache.
    lp_cache_size: int = DEFAULT_LP_CACHE_SIZE
    #: Capacity of each fingerprint bundle's bound cache.
    bound_cache_size: int = DEFAULT_CACHE_SIZE

    def __post_init__(self) -> None:
        require(self.pool_size >= 1, "pool_size must be positive")
        require(self.rounds_per_slice >= 1, "rounds_per_slice must be positive")
        require(self.max_wait_slices >= 1, "max_wait_slices must be positive")


@dataclass
class _Job:
    """Scheduler-internal job state."""

    job_id: str
    seq: int
    request: JobRequest
    fingerprint: str
    worker: int
    submitted_at: float
    deadline_at: Optional[float]
    run: Optional[VerifierRun] = None
    wait: int = 0
    total_wait: int = 0
    slices: int = 0
    cache_stats: Dict[str, int] = field(default_factory=dict)
    done: Optional[JobResult] = None


class _Worker:
    """One cooperative worker: a queue of jobs sharded to it."""

    def __init__(self, index: int) -> None:
        self.index = index
        self.jobs: List[_Job] = []


class VerificationService:
    """Multiplex verification jobs over a pool of cooperative workers.

    Batch use::

        service = VerificationService(ServiceConfig(pool_size=4))
        ids = [service.submit(network, spec) for spec in specs]
        results = {r.job_id: r for r in service.as_completed()}

    ``run_until_complete()`` drains everything and returns results in
    submission order; :meth:`stream_results` is the submit-and-stream
    convenience.  The service is single-threaded — callers drive it by
    iterating :meth:`as_completed` (or calling :meth:`step` directly), and
    determinism follows: the same submissions always produce the same
    interleaving and the same results.
    """

    def __init__(self, config: Optional[ServiceConfig] = None,
                 verifier_factory: Optional[
                     Callable[[CacheBundle], object]] = None) -> None:
        self.config = config or ServiceConfig()
        self.verifier_factory = verifier_factory or _default_verifier_factory
        self.pool = FingerprintCachePool(self.config.lp_cache_size,
                                         self.config.bound_cache_size)
        self._workers = [_Worker(i) for i in range(self.config.pool_size)]
        self._jobs: Dict[str, _Job] = {}
        self._next_seq = 0
        self._next_worker = 0
        self._slices = 0
        self._failed = 0

    # -- submission ------------------------------------------------------------
    def submit(self, network: Network, spec: Specification,
               budget: Optional[Budget] = None, priority: int = 0,
               deadline_seconds: Optional[float] = None,
               verifier_factory: Optional[
                   Callable[[CacheBundle], object]] = None,
               metadata: Optional[dict] = None) -> str:
        """Enqueue one job; returns its id (results carry it back)."""
        request = JobRequest(network=network, spec=spec, budget=budget,
                             priority=priority,
                             deadline_seconds=deadline_seconds,
                             verifier_factory=verifier_factory,
                             metadata=dict(metadata or {}))
        return self.submit_request(request)

    def submit_request(self, request: JobRequest) -> str:
        """Enqueue a prebuilt :class:`~repro.service.jobs.JobRequest`."""
        require(request.deadline_seconds is None
                or request.deadline_seconds > 0,
                "deadline_seconds must be positive when given")
        seq = self._next_seq
        self._next_seq += 1
        fingerprint = self.pool.fingerprint_for(request.network, request.spec)
        now = time.monotonic()
        job = _Job(
            job_id=f"job-{seq}",
            seq=seq,
            request=request,
            fingerprint=fingerprint,
            worker=int(fingerprint[:8], 16) % self.config.pool_size,
            submitted_at=now,
            deadline_at=(None if request.deadline_seconds is None
                         else now + request.deadline_seconds),
        )
        self._jobs[job.job_id] = job
        self._workers[job.worker].jobs.append(job)
        return job.job_id

    def submit_many(self, requests: Iterable[JobRequest]) -> List[str]:
        """Enqueue a batch of requests; returns their ids in order."""
        return [self.submit_request(request) for request in requests]

    # -- scheduling ------------------------------------------------------------
    def has_pending(self) -> bool:
        """Whether any submitted job has not finished yet."""
        return any(worker.jobs for worker in self._workers)

    def step(self) -> Optional[JobResult]:
        """Run one scheduling slice; the finished job's result, if any.

        Picks the next worker (round-robin over workers with pending jobs),
        selects that worker's next job under the priority/bounded-wait
        policy, and advances it up to ``rounds_per_slice`` driver rounds.
        Returns ``None`` while the job needs more slices (or no work is
        pending).
        """
        worker = self._pick_worker()
        if worker is None:
            return None
        job = self._pick_job(worker)
        for other in worker.jobs:
            if other is not job:
                other.wait += 1
                other.total_wait += 1
        job.wait = 0
        return self._run_slice(worker, job)

    def as_completed(self) -> Iterator[JobResult]:
        """Drive the service, yielding each job's result as it finishes."""
        while self.has_pending():
            finished = self.step()
            if finished is not None:
                yield finished

    def run_until_complete(self) -> List[JobResult]:
        """Drain every pending job; results in submission order."""
        for _ in self.as_completed():
            pass
        return sorted((job.done for job in self._jobs.values()
                       if job.done is not None),
                      key=lambda r: self._jobs[r.job_id].seq)

    def stream_results(self,
                       requests: Iterable[JobRequest]) -> Iterator[JobResult]:
        """Submit ``requests`` and stream results in completion order.

        Any jobs already pending when the stream starts are driven (and
        yielded) too — the stream simply drains the whole service.
        """
        self.submit_many(requests)
        return self.as_completed()

    # -- results & stats -------------------------------------------------------
    def result(self, job_id: str) -> Optional[JobResult]:
        """The finished result of ``job_id`` (``None`` while running)."""
        return self._jobs[job_id].done

    def stats(self) -> dict:
        """Service-level counters: jobs, slices, pool/cache stats."""
        done = sum(1 for job in self._jobs.values() if job.done is not None)
        return {
            "jobs_submitted": len(self._jobs),
            "jobs_completed": done,
            "jobs_failed": self._failed,
            "slices": self._slices,
            "pool_size": self.config.pool_size,
            "pool": self.pool.stats(),
        }

    # -- internals -------------------------------------------------------------
    def _pick_worker(self) -> Optional[_Worker]:
        for offset in range(len(self._workers)):
            worker = self._workers[(self._next_worker + offset)
                                   % len(self._workers)]
            if worker.jobs:
                self._next_worker = (worker.index + 1) % len(self._workers)
                return worker
        return None

    def _pick_job(self, worker: _Worker) -> _Job:
        # Starved jobs are served in submission order, *not* largest-wait
        # first: under a continuous stream of submissions every pending job
        # is eventually starved, and largest-wait-first then degenerates to
        # round-robin over an ever-growing queue — the oldest job's share of
        # service shrinks toward zero.  FIFO over the starved set bounds any
        # job's gap between slices by max_wait_slices plus one slice per
        # *older* pending job, a set that never grows after submission.
        starved = [job for job in worker.jobs
                   if job.wait >= self.config.max_wait_slices]
        if starved:
            return min(starved, key=lambda job: job.seq)
        return max(worker.jobs,
                   key=lambda job: (job.request.priority, -job.seq))

    def _deadline_passed(self, job: _Job) -> bool:
        return (job.deadline_at is not None
                and time.monotonic() >= job.deadline_at)

    def _run_slice(self, worker: _Worker, job: _Job) -> Optional[JobResult]:
        self._slices += 1
        job.slices += 1
        bundle = self.pool.bundle(job.fingerprint)
        before = bundle.stats_snapshot()
        result: Optional[VerificationResult] = None
        error: Optional[JobError] = None
        deadline_exceeded = False
        try:
            if self._deadline_passed(job):
                result = self._expire(job)
                deadline_exceeded = True
            else:
                if job.run is None:
                    factory = (job.request.verifier_factory
                               or self.verifier_factory)
                    try:
                        verifier = factory(bundle)
                        job.run = verifier.start_run(job.request.network,
                                                     job.request.spec,
                                                     job.request.budget)
                    except Exception as exc:  # noqa: BLE001 - isolation boundary
                        error = JobError(type(exc).__name__, str(exc), "setup")
                if error is None:
                    for _ in range(self.config.rounds_per_slice):
                        try:
                            result = job.run.step()
                        except Exception as exc:  # noqa: BLE001 - isolation boundary
                            error = JobError(type(exc).__name__, str(exc),
                                             "round")
                            break
                        if result is not None:
                            break
                        if self._deadline_passed(job):
                            result = self._expire(job)
                            deadline_exceeded = True
                            break
        finally:
            delta = CacheBundle.stats_delta(before, bundle.stats_snapshot())
            for key, value in delta.items():
                job.cache_stats[key] = job.cache_stats.get(key, 0) + value
        if error is not None:
            return self._fail(worker, job, error)
        if result is not None:
            return self._complete(worker, job, result, deadline_exceeded)
        return None

    def _expire(self, job: _Job) -> VerificationResult:
        """Force a deadline TIMEOUT (interrupt, or synthesise pre-start)."""
        result = job.run.interrupt() if job.run is not None else None
        if result is None:
            result = VerificationResult(
                status=VerificationStatus.TIMEOUT, verifier="service",
                elapsed_seconds=time.monotonic() - job.submitted_at)
        return result

    def _finish_job(self, worker: _Worker, job: _Job,
                    done: JobResult) -> JobResult:
        worker.jobs.remove(job)
        job.done = done
        return done

    def _complete(self, worker: _Worker, job: _Job,
                  result: VerificationResult,
                  deadline_exceeded: bool) -> JobResult:
        done = JobResult(
            job_id=job.job_id, fingerprint=job.fingerprint, result=result,
            slices=job.slices, wait_slices=job.total_wait,
            latency_seconds=time.monotonic() - job.submitted_at,
            deadline_exceeded=deadline_exceeded,
            cache_stats=dict(job.cache_stats))
        result.extras["service"] = {
            "job_id": done.job_id,
            "fingerprint": done.fingerprint,
            "slices": done.slices,
            "wait_slices": done.wait_slices,
            "deadline_exceeded": done.deadline_exceeded,
            "cache_stats": done.cache_stats,
        }
        return self._finish_job(worker, job, done)

    def _fail(self, worker: _Worker, job: _Job, error: JobError) -> JobResult:
        self._failed += 1
        if self.config.quarantine_on_error:
            self.pool.discard(job.fingerprint)
        done = JobResult(
            job_id=job.job_id, fingerprint=job.fingerprint, error=error,
            slices=job.slices, wait_slices=job.total_wait,
            latency_seconds=time.monotonic() - job.submitted_at,
            cache_stats=dict(job.cache_stats))
        return self._finish_job(worker, job, done)
