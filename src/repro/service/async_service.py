"""Asyncio front-end over the threaded verification service.

:class:`AsyncVerificationService` lets an event-loop application (an API
server, a dashboard, a batch pipeline with concurrent producers) submit
verification jobs with ``await`` semantics while the actual verification
runs on the threaded transport's worker pool.  Three contracts:

* **Backpressure** — at most ``max_pending`` jobs are in flight at once;
  :meth:`AsyncVerificationService.submit` *awaits* a slot when the bound is
  reached instead of growing the queue without limit, so a fast producer is
  throttled to the pool's service rate and memory stays bounded.
* **Deadlines** — ``deadline_seconds`` rides through unchanged: worker
  threads enforce it at round boundaries via the run's ``interrupt()`` hook,
  exactly as the synchronous service does.
* **Determinism at the collection point** — completions arrive in
  completion order (:meth:`AsyncVerificationService.as_completed`), but
  :meth:`AsyncVerificationService.run` returns results in submission order,
  and every verdict/charge/counterexample is solo-identical (the transport
  conformance suite pins this).

Worker threads hand results back to the event loop with
``loop.call_soon_threadsafe``; nothing verification-sized ever runs on the
loop itself.  One instance binds to one event loop (the first that touches
it) and refuses use from another.
"""

from __future__ import annotations

import asyncio
import dataclasses
import threading
from typing import AsyncIterator, Callable, Dict, Iterable, List, Optional

from repro.nn.network import Network
from repro.service.jobs import JobRequest, JobResult
from repro.service.pool import FingerprintCachePool
from repro.service.scheduler import ServiceConfig, VerificationService
from repro.specs.properties import Specification
from repro.utils.timing import Budget
from repro.utils.validation import require


class AsyncVerificationService:
    """Await-friendly verification jobs over the threaded worker pool.

    Usage::

        async with AsyncVerificationService(ServiceConfig(pool_size=4)) as svc:
            job_id = await svc.submit(network, spec, deadline_seconds=5.0)
            done = await svc.result(job_id)

    The underlying transport must be self-driving: ``"threaded"`` (the
    default) and ``"process"`` pass through unchanged, while
    ``"cooperative"`` is coerced to ``"threaded"`` — an asyncio front-end
    over the cooperative transport would deadlock (nothing would drive the
    scheduler while the loop awaits).
    """

    def __init__(self, config: Optional[ServiceConfig] = None,
                 verifier_factory=None, max_pending: int = 32) -> None:
        require(max_pending >= 1, "max_pending must be positive")
        base = config or ServiceConfig()
        if base.transport == "cooperative":
            base = dataclasses.replace(base, transport="threaded")
        self._service = VerificationService(base, verifier_factory)
        self._service.add_completion_listener(self._dispatch_from_thread)
        self._max_pending = int(max_pending)
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._slots: Optional[asyncio.Semaphore] = None
        self._done_queue: Optional["asyncio.Queue[JobResult]"] = None
        self._waiters: Dict[str, "asyncio.Future[JobResult]"] = {}
        self._finished: Dict[str, JobResult] = {}
        self._submitted = 0
        self._resolved = 0
        # ``_dispatch_from_thread`` runs on worker threads while ``_loop``
        # is written on the loop thread; the lock makes the handoff safe.
        self._dispatch_lock = threading.Lock()

    # -- loop binding ----------------------------------------------------------
    def _bind_loop(self) -> asyncio.AbstractEventLoop:
        """Bind this front-end to the running loop (first caller wins)."""
        loop = asyncio.get_running_loop()
        with self._dispatch_lock:
            if self._loop is None:
                self._loop = loop
                self._slots = asyncio.Semaphore(self._max_pending)
                self._done_queue = asyncio.Queue()
            elif self._loop is not loop:
                raise RuntimeError(
                    "AsyncVerificationService is bound to a different "
                    "event loop")
        return loop

    # -- submission ------------------------------------------------------------
    async def submit(self, network: Network, spec: Specification,
                     budget: Optional[Budget] = None, priority: int = 0,
                     deadline_seconds: Optional[float] = None,
                     verifier_factory: Optional[
                         Callable[[object], object]] = None,
                     metadata: Optional[dict] = None) -> str:
        """Submit one job, awaiting a slot when ``max_pending`` are in flight."""
        request = JobRequest(network=network, spec=spec, budget=budget,
                             priority=priority,
                             deadline_seconds=deadline_seconds,
                             verifier_factory=verifier_factory,
                             metadata=dict(metadata or {}))
        return await self.submit_request(request)

    async def submit_request(self, request: JobRequest) -> str:
        """Submit a prebuilt request; awaits backpressure like :meth:`submit`."""
        self._bind_loop()
        await self._slots.acquire()
        try:
            job_id = self._service.submit_request(request)
        except BaseException:  # noqa: BLE001 - slot must be freed on any submit failure (incl. CancelledError), then re-raised
            self._slots.release()
            raise
        # No await between the service submit and the waiter registration,
        # so the completion callback (scheduled onto this same loop) cannot
        # observe a missing waiter.
        self._waiters[job_id] = self._loop.create_future()
        self._submitted += 1  # lint: disable=lock-discipline - loop-thread confined: only bound-loop coroutines write it
        return job_id

    # -- results ---------------------------------------------------------------
    async def result(self, job_id: str) -> JobResult:
        """Await the terminal :class:`~repro.service.jobs.JobResult` of one job."""
        done = self._finished.get(job_id)
        if done is not None:
            return done
        if job_id not in self._waiters:
            raise KeyError(job_id)
        return await asyncio.shield(self._waiters[job_id])

    async def as_completed(self) -> AsyncIterator[JobResult]:
        """Yield results in completion order until every submission resolved."""
        self._bind_loop()
        while (self._resolved < self._submitted
               or not self._done_queue.empty()):
            yield await self._done_queue.get()

    async def run(self, requests: Iterable[JobRequest]) -> List[JobResult]:
        """Submit ``requests`` (honouring backpressure) and collect in order.

        The deterministic collection point of the async front-end: results
        come back in submission order regardless of completion order.
        """
        job_ids = [await self.submit_request(request) for request in requests]
        return [await self.result(job_id) for job_id in job_ids]

    # -- lifecycle -------------------------------------------------------------
    async def close(self) -> None:
        """Drain the worker pool and stop its threads (idempotent).

        Runs the blocking thread-join in the default executor so the event
        loop stays responsive while workers finish their queues.
        """
        loop = asyncio.get_running_loop()
        await loop.run_in_executor(None, self._service.shutdown)

    async def __aenter__(self) -> "AsyncVerificationService":
        """Async-context entry: the front-end itself."""
        return self

    async def __aexit__(self, exc_type, exc, tb) -> None:
        """Async-context exit: :meth:`close` (drains pending jobs)."""
        await self.close()

    # -- observability ---------------------------------------------------------
    @property
    def service(self) -> VerificationService:
        """The underlying threaded :class:`VerificationService`."""
        return self._service

    @property
    def pool(self) -> FingerprintCachePool:
        """The fingerprint cache pool (shared with the threaded service)."""
        return self._service.pool

    @property
    def in_flight(self) -> int:
        """Jobs submitted but not yet resolved (the backpressure gauge)."""
        return self._submitted - self._resolved

    def stats(self) -> dict:
        """The underlying service's counters plus front-end gauges."""
        stats = self._service.stats()
        stats["async_in_flight"] = self.in_flight
        stats["async_max_pending"] = self._max_pending
        return stats

    # -- completion plumbing ---------------------------------------------------
    def _dispatch_from_thread(self, done: JobResult) -> None:
        """Worker-thread side of the handoff: schedule onto the loop."""
        with self._dispatch_lock:
            loop = self._loop
        if loop is None:  # submissions only happen after binding
            return
        loop.call_soon_threadsafe(self._resolve, done)

    def _resolve(self, done: JobResult) -> None:
        """Loop side of the handoff: settle the waiter, free a slot."""
        self._finished[done.job_id] = done
        self._resolved += 1  # lint: disable=lock-discipline - loop-thread confined: _resolve runs via call_soon_threadsafe
        self._slots.release()
        future = self._waiters.get(done.job_id)
        if future is not None and not future.done():
            future.set_result(done)
        self._done_queue.put_nowait(done)
