"""Job descriptions and terminal job states of the verification service.

A *job* is one ``(network, property, budget)`` verification request.  The
scheduler multiplexes many jobs over a pool of cooperative workers, so the
request carries the scheduling knobs (priority, deadline) alongside the
problem itself, and the terminal :class:`JobResult` carries the service-level
observability (latency, slice counts, per-job cache-reuse deltas) alongside
the verifier's own :class:`~repro.verifiers.result.VerificationResult`.

Failures are *data*, not exceptions: a worker raising mid-round, a poisoned
cache entry, or a broken verifier factory produces a :class:`JobError` on
that job's result while every other job in the pool keeps running.  Which
failures are worth *retrying* — and how the retries back off — is policy,
not scheduler code, so it lives here too as :class:`RetryPolicy`.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, field
from typing import Callable, Dict, Optional, Tuple

from repro.nn.network import Network
from repro.specs.properties import Specification
from repro.utils.timing import Budget
from repro.utils.validation import require
from repro.verifiers.result import VerificationResult


@dataclass
class JobRequest:
    """One verification request submitted to the service.

    ``priority`` orders jobs *within a worker's queue* — larger runs sooner,
    ties broken by submission order.  ``deadline_seconds`` is a wall-clock
    allowance measured from submission; it is enforced at round boundaries
    (the service never interrupts a round mid-flight), so a job can overrun
    its deadline by at most one scheduling slice.  ``verifier_factory``
    optionally overrides the service-wide factory for this job; it receives
    the job's fingerprint-scoped cache bundle and must return a
    :class:`~repro.verifiers.result.Verifier`.
    """

    network: Network
    spec: Specification
    budget: Optional[Budget] = None
    priority: int = 0
    deadline_seconds: Optional[float] = None
    verifier_factory: Optional[Callable[[object], object]] = None  # lint: disable=payload-pickle-safety - deliberately callable: the process transport pickles it separately and falls back to in-process execution (UnpicklableJob) when it cannot cross the pipe
    metadata: Dict[str, object] = field(default_factory=dict)


@dataclass(frozen=True)
class RetryPolicy:
    """When and how the service re-runs a failed job.

    A job whose :class:`JobError` kind appears in ``retryable_kinds`` is
    re-enqueued instead of finalised, up to ``max_attempts`` total
    executions, with exponential backoff between attempts:
    ``backoff_seconds * backoff_multiplier**(attempt-1)``, capped at
    ``max_backoff_seconds`` and spread by *deterministic* jitter — a pure
    function of ``(job_id, attempt)``, so retry schedules are replayable
    while distinct jobs retrying after one worker crash still fan out
    instead of thundering back in lockstep.

    The default only retries ``"WorkerCrash"`` — the error the process
    transport synthesises when a worker process dies under a job — because
    an in-process Python exception is deterministic (retrying it would
    yield the same exception) while losing a worker says nothing about the
    job itself.  Deployments whose verifier factories can fail transiently
    (a flaky model store, a remote LP solver) extend ``retryable_kinds``
    with those exception names.
    """

    #: Total executions a job may consume (first run + retries).
    max_attempts: int = 3
    #: Base delay before the first retry, in seconds.
    backoff_seconds: float = 0.05
    #: Multiplier applied per additional attempt (exponential backoff).
    backoff_multiplier: float = 2.0
    #: Ceiling on any single backoff delay.
    max_backoff_seconds: float = 2.0
    #: Fractional jitter width: delays vary by ±this fraction.
    jitter_fraction: float = 0.25
    #: ``JobError.kind`` values worth re-running.
    retryable_kinds: Tuple[str, ...] = ("WorkerCrash",)

    def __post_init__(self) -> None:
        require(self.max_attempts >= 1, "max_attempts must be positive")
        require(self.backoff_seconds >= 0.0,
                "backoff_seconds must be non-negative")
        require(self.backoff_multiplier >= 1.0,
                "backoff_multiplier must be at least 1.0")
        require(self.max_backoff_seconds >= 0.0,
                "max_backoff_seconds must be non-negative")
        require(0.0 <= self.jitter_fraction < 1.0,
                "jitter_fraction must be in [0, 1)")

    def retryable(self, kind: str) -> bool:
        """Whether a :class:`JobError` of ``kind`` should be retried."""
        return kind in self.retryable_kinds

    def delay_seconds(self, job_id: str, attempt: int) -> float:
        """Backoff before retry number ``attempt`` (1-based) of ``job_id``.

        Deterministic: the jitter comes from a CRC of ``job_id:attempt``,
        not from a global RNG, so the same job retries on the same schedule
        in every run while different jobs de-synchronise.
        """
        require(attempt >= 1, "attempt must be positive")
        base = min(self.backoff_seconds
                   * self.backoff_multiplier ** (attempt - 1),
                   self.max_backoff_seconds)
        seed = zlib.crc32(f"{job_id}:{attempt}".encode("utf-8"))
        unit = (seed % 10_000) / 10_000.0  # [0, 1), uniform enough for spread
        return base * (1.0 + self.jitter_fraction * (2.0 * unit - 1.0))


@dataclass(frozen=True)
class JobError:
    """Structured description of why one job failed.

    ``kind`` is the exception class name — or the synthetic
    ``"WorkerCrash"`` when a worker *process* died (or hung past its slice
    timeout) while executing the job — and ``stage`` the scheduler stage it
    escaped from: ``"submit"`` (request validation), ``"setup"`` (building
    the verifier or its run) or ``"round"`` (stepping the run).  The error
    is confined to its job: the pool, the other jobs, and (after
    quarantine) the caches stay healthy.
    """

    kind: str
    message: str
    stage: str

    def as_dict(self) -> dict:
        """JSON-serialisable form (API responses, benchmark payloads)."""
        return {"kind": self.kind, "message": self.message, "stage": self.stage}


@dataclass
class JobResult:
    """Terminal state of one job: a result or a structured error.

    Exactly one of ``result`` / ``error`` is set.  ``cache_stats`` holds the
    *per-job deltas* of the fingerprint bundle's cache counters (lp/bound
    hits, misses, solves …) accumulated over this job's slices — on a
    shared bundle the cumulative counters in ``result.extras`` mix several
    jobs' traffic, the deltas here do not.  ``deadline_exceeded`` marks a
    TIMEOUT forced by the job's deadline rather than its own budget.

    ``attempts`` counts executions: 1 for a job that ran once, more when
    the :class:`RetryPolicy` re-ran it after a retryable failure or a
    worker crash (0 only for requests rejected at submit time).
    ``worker_crashes`` counts worker-process deaths attributed to this job
    — the poison-job gauge: it reaches ``RetryPolicy.max_attempts`` exactly
    when the job is failed with ``JobError(kind="WorkerCrash")``.
    """

    job_id: str
    fingerprint: str
    result: Optional[VerificationResult] = None
    error: Optional[JobError] = None
    slices: int = 0
    wait_slices: int = 0
    latency_seconds: float = 0.0
    deadline_exceeded: bool = False
    attempts: int = 1
    worker_crashes: int = 0
    cache_stats: Dict[str, int] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        """True when the job produced a verification result (no error)."""
        return self.error is None and self.result is not None
