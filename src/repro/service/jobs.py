"""Job descriptions and terminal job states of the verification service.

A *job* is one ``(network, property, budget)`` verification request.  The
scheduler multiplexes many jobs over a pool of cooperative workers, so the
request carries the scheduling knobs (priority, deadline) alongside the
problem itself, and the terminal :class:`JobResult` carries the service-level
observability (latency, slice counts, per-job cache-reuse deltas) alongside
the verifier's own :class:`~repro.verifiers.result.VerificationResult`.

Failures are *data*, not exceptions: a worker raising mid-round, a poisoned
cache entry, or a broken verifier factory produces a :class:`JobError` on
that job's result while every other job in the pool keeps running.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Optional

from repro.nn.network import Network
from repro.specs.properties import Specification
from repro.utils.timing import Budget
from repro.verifiers.result import VerificationResult


@dataclass
class JobRequest:
    """One verification request submitted to the service.

    ``priority`` orders jobs *within a worker's queue* — larger runs sooner,
    ties broken by submission order.  ``deadline_seconds`` is a wall-clock
    allowance measured from submission; it is enforced at round boundaries
    (the service never interrupts a round mid-flight), so a job can overrun
    its deadline by at most one scheduling slice.  ``verifier_factory``
    optionally overrides the service-wide factory for this job; it receives
    the job's fingerprint-scoped cache bundle and must return a
    :class:`~repro.verifiers.result.Verifier`.
    """

    network: Network
    spec: Specification
    budget: Optional[Budget] = None
    priority: int = 0
    deadline_seconds: Optional[float] = None
    verifier_factory: Optional[Callable[[object], object]] = None
    metadata: Dict[str, object] = field(default_factory=dict)


@dataclass(frozen=True)
class JobError:
    """Structured description of why one job failed.

    ``kind`` is the exception class name, ``stage`` the scheduler stage it
    escaped from (``"setup"`` — building the verifier or its run — or
    ``"round"`` — stepping the run).  The error is confined to its job: the
    pool, the other jobs, and (after quarantine) the caches stay healthy.
    """

    kind: str
    message: str
    stage: str

    def as_dict(self) -> dict:
        """JSON-serialisable form (API responses, benchmark payloads)."""
        return {"kind": self.kind, "message": self.message, "stage": self.stage}


@dataclass
class JobResult:
    """Terminal state of one job: a result or a structured error.

    Exactly one of ``result`` / ``error`` is set.  ``cache_stats`` holds the
    *per-job deltas* of the fingerprint bundle's cache counters (lp/bound
    hits, misses, solves …) accumulated over this job's slices — on a
    shared bundle the cumulative counters in ``result.extras`` mix several
    jobs' traffic, the deltas here do not.  ``deadline_exceeded`` marks a
    TIMEOUT forced by the job's deadline rather than its own budget.
    """

    job_id: str
    fingerprint: str
    result: Optional[VerificationResult] = None
    error: Optional[JobError] = None
    slices: int = 0
    wait_slices: int = 0
    latency_seconds: float = 0.0
    deadline_exceeded: bool = False
    cache_stats: Dict[str, int] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        """True when the job produced a verification result (no error)."""
        return self.error is None and self.result is not None
