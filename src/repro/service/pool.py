"""Fingerprint-scoped cache bundles shared across service requests.

Cache soundness in this codebase rests on one invariant: a
:class:`~repro.bounds.cache.BoundCache` or the split-assignment keys of an
:class:`~repro.bounds.cache.LpCache` are only meaningful for a fixed
``(network, input box, output spec)`` triple.  The service therefore keys
*all* cross-request reuse by :func:`~repro.verifiers.milp.problem_fingerprint`:

* jobs with the **same** fingerprint share one :class:`CacheBundle` — their
  leaf-LP optima and split-aware bound entries are interchangeable facts, so
  a repeated request warm-starts from everything its predecessors computed;
* jobs with **different** fingerprints get disjoint bundles and can never
  observe one another's entries, by construction rather than by key
  discipline inside a shared store.

The pool also keeps a *warm-model* cache: the per-network weight digest that
prefixes every fingerprint.  ``Network.lowered()`` already memoises the
lowering per instance; the pool adds the digest memo (weakly keyed, so the
pool never keeps a network alive) and thereby makes fingerprinting a
many-property workload — a robustness sweep, a batch of labels on one model
— cost one weight hash total instead of one per property.
"""

from __future__ import annotations

import weakref
from dataclasses import dataclass, field
from typing import Dict

from repro.bounds.cache import (
    DEFAULT_CACHE_SIZE,
    DEFAULT_LP_CACHE_SIZE,
    BoundCache,
    LpCache,
)
from repro.nn.network import Network
from repro.specs.properties import Specification
from repro.verifiers.milp import network_weights_digest, problem_fingerprint


@dataclass
class CacheBundle:
    """The shared, fingerprint-scoped caches of one verification problem."""

    fingerprint: str
    lp_cache: LpCache = field(default_factory=LpCache)
    bound_cache: BoundCache = field(default_factory=BoundCache)

    def stats_snapshot(self) -> Dict[str, int]:
        """Flat counter snapshot (``lp_*`` / ``bound_*``) for delta accounting.

        Only integer counters are included — derived ratios like
        ``hit_rate`` do not difference meaningfully.
        """
        snapshot: Dict[str, int] = {}
        for prefix, stats in (("lp", self.lp_cache.stats.as_dict()),
                              ("bound", self.bound_cache.stats.as_dict())):
            for key, value in stats.items():
                if isinstance(value, int):
                    snapshot[f"{prefix}_{key}"] = value
        return snapshot

    @staticmethod
    def stats_delta(before: Dict[str, int],
                    after: Dict[str, int]) -> Dict[str, int]:
        """Per-job counter increments between two snapshots."""
        return {key: after[key] - before.get(key, 0) for key in after}


class FingerprintCachePool:
    """Bundles per problem fingerprint, plus the warm-model digest memo."""

    def __init__(self, lp_cache_size: int = DEFAULT_LP_CACHE_SIZE,
                 bound_cache_size: int = DEFAULT_CACHE_SIZE) -> None:
        self.lp_cache_size = int(lp_cache_size)
        self.bound_cache_size = int(bound_cache_size)
        self._bundles: Dict[str, CacheBundle] = {}
        self._digests: "weakref.WeakKeyDictionary[Network, str]" = (
            weakref.WeakKeyDictionary())
        self.model_cache_hits = 0
        self.model_cache_misses = 0

    # -- fingerprinting --------------------------------------------------------
    def fingerprint_for(self, network: Network, spec: Specification) -> str:
        """The problem fingerprint of ``(network, spec)``, digest-memoised."""
        lowered = network.lowered()  # memoised on the network instance
        digest = self._digests.get(network)
        if digest is None:
            self.model_cache_misses += 1
            digest = network_weights_digest(lowered)
            self._digests[network] = digest
        else:
            self.model_cache_hits += 1
        return problem_fingerprint(lowered, spec.input_box, spec.output_spec,
                                   weights_digest=digest)

    # -- bundle management -----------------------------------------------------
    def bundle(self, fingerprint: str) -> CacheBundle:
        """The (created-on-demand) cache bundle of one fingerprint."""
        found = self._bundles.get(fingerprint)
        if found is None:
            found = CacheBundle(fingerprint,
                                lp_cache=LpCache(self.lp_cache_size),
                                bound_cache=BoundCache(self.bound_cache_size))
            self._bundles[fingerprint] = found
        return found

    def discard(self, fingerprint: str) -> bool:
        """Quarantine a fingerprint: drop its bundle (recreated cold on demand).

        Called when a job using the bundle failed — a mid-round exception
        may have been *caused* by a poisoned entry, and entries are cheap to
        recompute, so the service trades warm caches for certain isolation.
        Returns whether a bundle existed.
        """
        return self._bundles.pop(fingerprint, None) is not None

    def __len__(self) -> int:
        return len(self._bundles)

    def stats(self) -> dict:
        """Pool-level counters plus per-fingerprint cache stats."""
        return {
            "fingerprints": len(self._bundles),
            "model_cache_hits": self.model_cache_hits,
            "model_cache_misses": self.model_cache_misses,
            "bundles": {fp: bundle.stats_snapshot()
                        for fp, bundle in self._bundles.items()},
        }
