"""Fingerprint-scoped cache bundles shared across service requests.

Cache soundness in this codebase rests on one invariant: a
:class:`~repro.bounds.cache.BoundCache` or the split-assignment keys of an
:class:`~repro.bounds.cache.LpCache` are only meaningful for a fixed
``(network, input box, output spec)`` triple.  The service therefore keys
*all* cross-request reuse by :func:`~repro.verifiers.milp.problem_fingerprint`:

* jobs with the **same** fingerprint share one :class:`CacheBundle` — their
  leaf-LP optima and split-aware bound entries are interchangeable facts, so
  a repeated request warm-starts from everything its predecessors computed;
* jobs with **different** fingerprints get disjoint bundles and can never
  observe one another's entries, by construction rather than by key
  discipline inside a shared store.

The pool also keeps a *warm-model* cache: the per-network weight digest that
prefixes every fingerprint.  ``Network.lowered()`` already memoises the
lowering per instance; the pool adds the digest memo (weakly keyed, so the
pool never keeps a network alive) and thereby makes fingerprinting a
many-property workload — a robustness sweep, a batch of labels on one model
— cost one weight hash total instead of one per property.

Thread safety
-------------
The threaded service transport calls into the pool from every worker thread
(bundle lookup per slice, quarantine on failure) and from submitting threads
(fingerprinting), so all pool state — the bundle table, the digest memo and
the hit/miss counters — is guarded by one re-entrant lock.  The bundles'
own caches carry their own locks (see ``bounds/cache.py``); the pool lock
only protects the *pool's* bookkeeping.

Persistence
-----------
:meth:`CacheBundle.save` / :meth:`CacheBundle.load` serialise a bundle's
LP and bound entries to disk (a versioned pickle payload stamped with the
fingerprint), so warm caches survive process restarts;
:meth:`FingerprintCachePool.save_bundles` / :meth:`~FingerprintCachePool.load_bundles`
persist and restore a whole pool directory.  Loaded caches keep their
entries but start with fresh counters — hits observed after a restore are
genuine warm-path reuse.  The payload is a pickle: only load bundle files
you (or a process you trust) wrote.
"""

from __future__ import annotations

import os
import pickle
import threading
import weakref
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Union

from repro.bounds.cache import (
    DEFAULT_CACHE_SIZE,
    DEFAULT_LP_CACHE_SIZE,
    BoundCache,
    LpCache,
)
from repro.nn.network import Network
from repro.specs.properties import Specification
from repro.utils.validation import require
from repro.verifiers.milp import network_weights_digest, problem_fingerprint

#: Version stamp of the on-disk cache-bundle payload.  Bump it whenever the
#: entry layout (cache keys, ``SubstitutionEntry``/``RowOptimum`` fields)
#: changes incompatibly; :meth:`CacheBundle.load` refuses other versions.
BUNDLE_FORMAT = 1

#: Marker distinguishing bundle files from arbitrary pickles.
_BUNDLE_KIND = "repro-cache-bundle"

#: File suffix used by the pool-level persistence helpers.
BUNDLE_SUFFIX = ".cachebundle"


@dataclass
class CacheBundle:
    """The shared, fingerprint-scoped caches of one verification problem."""

    fingerprint: str
    lp_cache: LpCache = field(default_factory=LpCache)
    bound_cache: BoundCache = field(default_factory=BoundCache)

    def stats_snapshot(self) -> Dict[str, int]:
        """Flat counter snapshot (``lp_*`` / ``bound_*``) for delta accounting.

        Only integer counters are included — derived ratios like
        ``hit_rate`` do not difference meaningfully.
        """
        snapshot: Dict[str, int] = {}
        # stats_snapshot() reads under each cache's lock, so the per-cache
        # counters cannot tear while a worker thread is mid-update.
        for prefix, stats in (("lp", self.lp_cache.stats_snapshot()),
                              ("bound", self.bound_cache.stats_snapshot())):
            for key, value in stats.items():
                if isinstance(value, int):
                    snapshot[f"{prefix}_{key}"] = value
        return snapshot

    @staticmethod
    def stats_delta(before: Dict[str, int],
                    after: Dict[str, int]) -> Dict[str, int]:
        """Per-job counter increments between two snapshots."""
        return {key: after[key] - before.get(key, 0) for key in after}

    # -- persistence -----------------------------------------------------------
    def to_payload(self) -> dict:
        """The versioned handover payload of this bundle.

        The exact structure :meth:`save` pickles to disk — the process
        transport sends the same payload over a worker pipe, so on-disk
        bundles and live worker handovers share one format (and one
        validator, :meth:`from_payload`).
        """
        return {
            "kind": _BUNDLE_KIND,
            "format": BUNDLE_FORMAT,
            "fingerprint": self.fingerprint,
            "lp_max_entries": self.lp_cache.max_entries,
            "bound_max_entries": self.bound_cache.max_entries,
            "lp_entries": self.lp_cache.export_entries(),
            "bound_entries": self.bound_cache.export_entries(),
        }

    @classmethod
    def from_payload(cls, payload: object,
                     expected_fingerprint: Optional[str] = None,
                     lp_cache_size: Optional[int] = None,
                     bound_cache_size: Optional[int] = None,
                     source: str = "payload") -> "CacheBundle":
        """Rebuild a bundle from a :meth:`to_payload` dict, validating it.

        Checks the payload kind, format version and (when
        ``expected_fingerprint`` is given) the fingerprint — a bundle must
        never warm-start a *different* verification problem.  Cache
        capacities default to the saved ones; passing smaller sizes simply
        evicts the oldest entries on import.  Restored caches start with
        fresh (zero) counters.  Raises :class:`ValueError` for anything
        that is not a healthy bundle payload; ``source`` names the payload's
        origin (a path, a worker) in those errors.
        """
        if not isinstance(payload, dict) or payload.get("kind") != _BUNDLE_KIND:
            raise ValueError(f"not a cache-bundle payload: {source}")
        if payload.get("format") != BUNDLE_FORMAT:
            raise ValueError(
                f"unsupported cache-bundle format {payload.get('format')!r} "
                f"(expected {BUNDLE_FORMAT}): {source}")
        fingerprint = payload["fingerprint"]
        if (expected_fingerprint is not None
                and fingerprint != expected_fingerprint):
            raise ValueError(
                f"cache bundle {source} belongs to fingerprint "
                f"{fingerprint[:12]}…, not {expected_fingerprint[:12]}…")
        lp_cache = LpCache(lp_cache_size if lp_cache_size is not None
                           else payload["lp_max_entries"])
        bound_cache = BoundCache(bound_cache_size
                                 if bound_cache_size is not None
                                 else payload["bound_max_entries"])
        lp_cache.import_entries(payload["lp_entries"])
        bound_cache.import_entries(payload["bound_entries"])
        return cls(fingerprint, lp_cache=lp_cache, bound_cache=bound_cache)

    def save(self, path: Union[str, Path]) -> Path:
        """Serialise this bundle's cache entries to ``path`` (atomically).

        The payload is a versioned pickle carrying the fingerprint, both
        caches' capacities and their entries in LRU order; the write goes
        through a temp file + ``os.replace`` so a crash never leaves a
        truncated bundle behind.  Returns the written path.
        """
        path = Path(path)
        payload = self.to_payload()
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp = path.with_name(path.name + ".tmp")
        with open(tmp, "wb") as handle:
            pickle.dump(payload, handle, protocol=4)
        os.replace(tmp, path)
        return path

    @classmethod
    def load(cls, path: Union[str, Path],
             expected_fingerprint: Optional[str] = None,
             lp_cache_size: Optional[int] = None,
             bound_cache_size: Optional[int] = None) -> "CacheBundle":
        """Rebuild a bundle from a :meth:`save` file.

        Reads the pickled payload and delegates every structural check to
        :meth:`from_payload` — see there for the validation contract.
        Raises :class:`ValueError` for anything that is not a healthy
        bundle file.
        """
        try:
            with open(path, "rb") as handle:
                payload = pickle.load(handle)
        except OSError:
            raise
        except Exception as exc:  # noqa: BLE001 - any unpickling failure
            raise ValueError(f"not a cache-bundle file: {path}") from exc
        return cls.from_payload(payload, expected_fingerprint,
                                lp_cache_size, bound_cache_size,
                                source=str(path))


class FingerprintCachePool:
    """Bundles per problem fingerprint, plus the warm-model digest memo.

    All bookkeeping is serialised behind one re-entrant lock, so worker
    threads may fingerprint, fetch and quarantine bundles concurrently
    without losing counter increments or racing bundle creation (concurrent
    :meth:`bundle` calls on one fingerprint observe the same instance).
    """

    def __init__(self, lp_cache_size: int = DEFAULT_LP_CACHE_SIZE,
                 bound_cache_size: int = DEFAULT_CACHE_SIZE) -> None:
        self.lp_cache_size = int(lp_cache_size)
        self.bound_cache_size = int(bound_cache_size)
        self._bundles: Dict[str, CacheBundle] = {}
        self._digests: "weakref.WeakKeyDictionary[Network, str]" = (
            weakref.WeakKeyDictionary())
        self._lock = threading.RLock()
        self.model_cache_hits = 0
        self.model_cache_misses = 0

    # -- fingerprinting --------------------------------------------------------
    def fingerprint_for(self, network: Network, spec: Specification) -> str:
        """The problem fingerprint of ``(network, spec)``, digest-memoised."""
        lowered = network.lowered()  # memoised on the network instance
        with self._lock:
            digest = self._digests.get(network)
            if digest is None:
                self.model_cache_misses += 1
            else:
                self.model_cache_hits += 1
        if digest is None:
            # Hash outside the lock: digesting large weights is the slow
            # part, and a duplicate digest computed by a racing thread is
            # identical anyway.
            digest = network_weights_digest(lowered)
            with self._lock:
                self._digests[network] = digest
        return problem_fingerprint(lowered, spec.input_box, spec.output_spec,
                                   weights_digest=digest)

    # -- bundle management -----------------------------------------------------
    def bundle(self, fingerprint: str) -> CacheBundle:
        """The (created-on-demand) cache bundle of one fingerprint."""
        with self._lock:
            found = self._bundles.get(fingerprint)
            if found is None:
                found = CacheBundle(
                    fingerprint,
                    lp_cache=LpCache(self.lp_cache_size),
                    bound_cache=BoundCache(self.bound_cache_size))
                self._bundles[fingerprint] = found
            return found

    def adopt_payload(self, payload: object, source: str = "worker") -> str:
        """Import a :meth:`CacheBundle.to_payload` dict into the pool.

        The worker-handover counterpart of :meth:`load_bundles`: a process
        transport shutting down collects each worker's warm bundles over the
        pipe and adopts them here, replacing any same-fingerprint bundle
        (the worker's copy is strictly warmer — the pool stopped seeing its
        traffic at handover).  Capacities follow the pool's configuration.
        Returns the adopted fingerprint; raises :class:`ValueError` on a
        malformed payload.
        """
        bundle = CacheBundle.from_payload(payload,
                                          lp_cache_size=self.lp_cache_size,
                                          bound_cache_size=self.bound_cache_size,
                                          source=source)
        with self._lock:
            self._bundles[bundle.fingerprint] = bundle
        return bundle.fingerprint

    def discard(self, fingerprint: str) -> bool:
        """Quarantine a fingerprint: drop its bundle (recreated cold on demand).

        Called when a job using the bundle failed — a mid-round exception
        may have been *caused* by a poisoned entry, and entries are cheap to
        recompute, so the service trades warm caches for certain isolation.
        Returns whether a bundle existed.
        """
        with self._lock:
            return self._bundles.pop(fingerprint, None) is not None

    def __len__(self) -> int:
        with self._lock:
            return len(self._bundles)

    def stats(self) -> dict:
        """Pool-level counters plus per-fingerprint cache stats."""
        with self._lock:
            bundles = dict(self._bundles)
            hits, misses = self.model_cache_hits, self.model_cache_misses
        return {
            "fingerprints": len(bundles),
            "model_cache_hits": hits,
            "model_cache_misses": misses,
            "bundles": {fp: bundle.stats_snapshot()
                        for fp, bundle in bundles.items()},
        }

    # -- persistence -----------------------------------------------------------
    def save_bundles(self, directory: Union[str, Path]) -> List[Path]:
        """Save every bundle to ``directory/<fingerprint>.cachebundle``.

        Returns the written paths (sorted by fingerprint, so directory
        listings are stable).  Bundles keep serving while being saved —
        ``export_entries`` snapshots under the cache locks.
        """
        with self._lock:
            bundles = sorted(self._bundles.values(),
                             key=lambda bundle: bundle.fingerprint)
        directory = Path(directory)
        return [bundle.save(directory / f"{bundle.fingerprint}{BUNDLE_SUFFIX}")
                for bundle in bundles]

    def load_bundles(self, directory: Union[str, Path]) -> int:
        """Restore every ``*.cachebundle`` file under ``directory``.

        Loaded bundles replace same-fingerprint bundles already in the pool
        (the restart scenario: the pool is cold) and adopt the pool's
        configured cache capacities.  Returns the number of bundles
        restored; raises :class:`ValueError` on a corrupt or alien file.

        Stale ``*.tmp`` files — the residue of a :meth:`CacheBundle.save`
        interrupted between opening its temp file and the atomic
        ``os.replace`` — are ignored and deleted: they are never valid
        bundles (truncated at best) and a crash-restart loop must not
        accumulate them.
        """
        loaded = 0
        directory = Path(directory)
        for stale in sorted(directory.glob(f"*{BUNDLE_SUFFIX}.tmp")):
            try:
                stale.unlink()
            except OSError:
                pass  # a racing writer re-created it; their os.replace wins
        for path in sorted(directory.glob(f"*{BUNDLE_SUFFIX}")):
            bundle = CacheBundle.load(path,
                                      lp_cache_size=self.lp_cache_size,
                                      bound_cache_size=self.bound_cache_size)
            require(path.name == f"{bundle.fingerprint}{BUNDLE_SUFFIX}",
                    f"bundle file {path.name} does not match its fingerprint")
            with self._lock:
                self._bundles[bundle.fingerprint] = bundle
            loaded += 1
        return loaded
