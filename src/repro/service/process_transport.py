"""The ``"process"`` transport: fingerprint shards in worker processes.

One supervised worker *process* per shard executes that shard's jobs while
the scheduler's shard thread keeps running the usual per-worker policy
(priority, bounded wait, deadlines) in the parent — each scheduling slice
becomes a pipe round-trip (:class:`ShardExecutor`) instead of an in-process
``run.step()`` loop, so the interleaving semantics and therefore the
transport-conformance properties are untouched.  What the process boundary
buys is *crash isolation*: a segfaulting LP solve, an OOM-killed worker or
a plain SIGKILL takes down one shard's process, which the supervisor
detects and restarts, and the scheduler retries the interrupted jobs under
its :class:`~repro.service.jobs.RetryPolicy` — the host service never dies.

Protocol
--------
Messages are dicts over a duplex pipe, one reply per request:

* ``ping`` → ``pong`` (liveness probe);
* ``bundle`` — hand over a fingerprint's cache bundle as a
  :meth:`~repro.service.pool.CacheBundle.to_payload` dict (the on-disk
  save/load format, shipped over the pipe instead of through a file);
* ``start`` — build the job's verifier on the worker-local bundle and open
  its run; ``slice`` — advance a run up to N rounds, honouring the job's
  deadline via ``interrupt()`` exactly like the in-process transports;
* ``discard`` — quarantine a fingerprint's worker-local bundle;
* ``collect`` — ship every worker-local bundle back as payloads (used at
  shutdown so the parent pool keeps the warmth accumulated in the worker);
* ``stop`` — exit the worker loop.

In-worker Python exceptions are *data* (``error`` replies that become
structured ``JobError``\\ s); only process death is a crash.  The
worker-local caches are rebuilt from the parent pool's bundles on every
restart, so a crash costs warmth, never correctness.
"""

from __future__ import annotations

import pickle
import time
from multiprocessing.connection import Connection
from typing import Callable, Optional, Set

from repro.service.jobs import JobError, JobRequest
from repro.service.pool import CacheBundle, FingerprintCachePool
from repro.service.supervisor import WorkerSupervisor

#: Exception types ``pickle`` raises for payloads that cannot cross the
#: pipe (lambdas, closures over live objects); they trigger the per-job
#: inline fallback rather than a job failure.
_PICKLE_ERRORS = (pickle.PicklingError, TypeError, AttributeError)


class UnpicklableJob(RuntimeError):
    """A job's payload (factory, network, spec) cannot cross the pipe.

    Not a failure: the scheduler catches this and runs the job *inline* on
    the shard thread instead — graceful degradation for jobs carrying
    closures while picklable jobs on the same shard keep their process
    isolation.
    """


def _default_factory(bundle: CacheBundle):
    """The worker-side default verifier factory (parent sent none)."""
    from repro.service.scheduler import _default_verifier_factory
    return _default_verifier_factory(bundle)


def _synthetic_timeout():
    """A TIMEOUT result for a run interrupted before it produced one."""
    from repro.verifiers.result import VerificationResult, VerificationStatus
    return VerificationResult(status=VerificationStatus.TIMEOUT,
                              verifier="service", elapsed_seconds=0.0)


def worker_main(conn: Connection, lp_cache_size: int,
                bound_cache_size: int) -> None:
    """Entry point of one shard's worker process.

    Serves protocol requests until ``stop`` or pipe EOF.  Holds the
    worker-local state: fingerprint-keyed :class:`CacheBundle`\\ s (seeded
    by ``bundle`` handovers, replaced wholesale on ``discard``) and the
    open verifier runs keyed by job id.  Every per-op exception is caught
    and answered as an ``error`` reply — the loop itself only dies with the
    process, which is exactly the event the parent supervisor watches for.
    """
    bundles = {}
    runs = {}

    def bundle_for(fingerprint: str) -> CacheBundle:
        found = bundles.get(fingerprint)
        if found is None:
            from repro.bounds.cache import BoundCache, LpCache
            found = CacheBundle(fingerprint,
                                lp_cache=LpCache(lp_cache_size),
                                bound_cache=BoundCache(bound_cache_size))
            bundles[fingerprint] = found
        return found

    while True:
        try:
            message = conn.recv()
        except (EOFError, OSError):
            return
        op = message.get("op")
        if op == "stop":
            try:
                conn.send({"op": "bye"})
            except (BrokenPipeError, OSError):
                pass
            return
        try:
            conn.send(_serve(message, op, bundles, bundle_for, runs))
        except (BrokenPipeError, OSError):
            return


def _serve(message: dict, op: str, bundles: dict, bundle_for, runs: dict) -> dict:
    """Dispatch one protocol request to a reply dict (never raises)."""
    if op == "ping":
        return {"op": "pong"}
    if op == "bundle":
        try:
            bundles[message["fingerprint"]] = CacheBundle.from_payload(
                message["payload"],
                expected_fingerprint=message["fingerprint"],
                source="handover")
            return {"op": "ok"}
        except Exception as exc:  # noqa: BLE001 - isolation boundary
            return {"op": "error", "kind": type(exc).__name__,
                    "message": str(exc), "stage": "setup", "cache_delta": {}}
    if op == "discard":
        bundles.pop(message["fingerprint"], None)
        return {"op": "ok"}
    if op == "collect":
        return {"op": "bundles",
                "payloads": [bundle.to_payload()
                             for bundle in bundles.values()]}
    if op == "start":
        return _serve_start(message, bundle_for, runs)
    if op == "slice":
        return _serve_slice(message, bundles, runs)
    return {"op": "error", "kind": "ProtocolError",
            "message": f"unknown op {op!r}", "stage": "round",
            "cache_delta": {}}


def _serve_start(message: dict, bundle_for, runs: dict) -> dict:
    """Build the job's verifier and open its run on the local bundle."""
    bundle = bundle_for(message["fingerprint"])
    before = bundle.stats_snapshot()
    try:
        factory_bytes = message.get("factory")
        factory = (_default_factory if factory_bytes is None
                   else pickle.loads(factory_bytes))
        verifier = factory(bundle)
        run = verifier.start_run(message["network"], message["spec"],
                                 message["budget"])
        runs[message["job_id"]] = (run, message["fingerprint"])
        reply = {"op": "ok"}
    except Exception as exc:  # noqa: BLE001 - isolation boundary
        reply = {"op": "error", "kind": type(exc).__name__,
                 "message": str(exc), "stage": "setup"}
    reply["cache_delta"] = CacheBundle.stats_delta(before,
                                                   bundle.stats_snapshot())
    return reply


def _serve_slice(message: dict, bundles: dict, runs: dict) -> dict:
    """Advance one run up to ``rounds`` rounds, honouring the deadline."""
    job_id = message["job_id"]
    entry = runs.get(job_id)
    if entry is None:
        return {"op": "error", "kind": "ProtocolError",
                "message": f"no open run for {job_id}", "stage": "round",
                "cache_delta": {}}
    run, fingerprint = entry
    bundle = bundles.get(fingerprint)
    before = {} if bundle is None else bundle.stats_snapshot()
    deadline_at = message.get("deadline_at")
    result = None
    error = None
    deadline_exceeded = False
    try:
        for _ in range(message["rounds"]):
            if deadline_at is not None and time.monotonic() >= deadline_at:
                result = run.interrupt() or _synthetic_timeout()
                deadline_exceeded = True
                break
            result = run.step()
            if result is not None:
                break
    except Exception as exc:  # noqa: BLE001 - isolation boundary
        error = {"kind": type(exc).__name__, "message": str(exc),
                 "stage": "round"}
    delta = ({} if bundle is None
             else CacheBundle.stats_delta(before, bundle.stats_snapshot()))
    if error is not None:
        runs.pop(job_id, None)
        return {"op": "error", "cache_delta": delta, **error}
    if result is not None:
        runs.pop(job_id, None)
        return {"op": "done", "result": result,
                "deadline_exceeded": deadline_exceeded, "cache_delta": delta}
    return {"op": "more", "cache_delta": delta}


class ShardExecutor:
    """Parent-side handle of one shard's worker process.

    Owns the shard's :class:`~repro.service.supervisor.WorkerSupervisor`
    and the handover bookkeeping: which fingerprints' bundles the current
    worker generation has received, and which jobs hold open runs in it.
    Used only from the shard's scheduler thread, so it needs no locking.
    Crash handling is split: the executor *detects* (its supervisor raises
    :class:`~repro.service.supervisor.WorkerCrashed`) while the scheduler
    decides (retry, poison, degrade) and then calls :meth:`restart`.
    """

    def __init__(self, index: int, lp_cache_size: int, bound_cache_size: int,
                 start_method: Optional[str] = None,
                 slice_timeout: Optional[float] = None) -> None:
        self.index = index
        self.slice_timeout = slice_timeout
        self.handed_over: Set[str] = set()
        self.active_jobs: Set[str] = set()
        self.supervisor = WorkerSupervisor(
            target=worker_main, args=(lp_cache_size, bound_cache_size),
            start_method=start_method, name=f"verification-shard-{index}")
        self.supervisor.start()

    # -- lifecycle -------------------------------------------------------------
    def alive(self) -> bool:
        """Whether the shard's worker process is running."""
        return self.supervisor.alive()

    def restart(self) -> None:
        """Replace a dead worker with a fresh one (handover state reset).

        The new generation holds no bundles and no runs — fingerprints are
        re-handed from the parent pool on next use and interrupted jobs
        restart from scratch, which keeps their trajectories identical to
        an uninterrupted run (the run never resumes mid-state).
        """
        self.handed_over.clear()
        self.active_jobs.clear()
        self.supervisor.restart()

    def stop(self, pool: Optional[FingerprintCachePool] = None) -> None:
        """Stop the worker, optionally collecting its warm bundles first.

        With ``pool`` given, the worker's bundles are shipped back over the
        pipe and adopted into the parent pool (same payload format as
        :meth:`CacheBundle.save`), so ``save_caches()`` after a process-run
        persists the warmth the workers accumulated.  Best-effort: a dead
        or unresponsive worker just gets killed.
        """
        if pool is not None and self.alive():
            try:
                reply = self.supervisor.request({"op": "collect"},
                                                timeout=10.0)
                for payload in reply.get("payloads", ()):
                    pool.adopt_payload(payload,
                                       source=f"worker-{self.index}")
            except Exception:  # noqa: BLE001 - shutdown is best-effort
                pass
        self.supervisor.stop()

    # -- job execution ---------------------------------------------------------
    def start_job(self, job_id: str, fingerprint: str, request: JobRequest,
                  factory: Optional[Callable],
                  pool: FingerprintCachePool) -> dict:
        """Open ``job_id``'s run in the worker; the worker's reply dict.

        The reply is ``{"op": "ok"/"error", "cache_delta": ...}`` — the
        scheduler folds the delta into the job's counters and turns
        ``error`` replies into a setup-stage :class:`JobError` via
        :func:`reply_error`.  Hands the fingerprint's bundle over first
        when this worker generation has not seen it.  Raises
        :class:`UnpicklableJob` when the request cannot cross the pipe (the
        scheduler then runs the job inline) and
        :class:`~repro.service.supervisor.WorkerCrashed` when the worker
        died underneath the request.
        """
        if fingerprint not in self.handed_over:
            payload = pool.bundle(fingerprint).to_payload()
            reply = self.supervisor.request(
                {"op": "bundle", "fingerprint": fingerprint,
                 "payload": payload}, timeout=self.slice_timeout)
            if reply.get("op") == "error":
                return reply
            self.handed_over.add(fingerprint)
        factory_bytes = None
        if factory is not None:
            try:
                factory_bytes = pickle.dumps(factory)
            except _PICKLE_ERRORS as exc:
                raise UnpicklableJob(
                    f"verifier factory does not pickle: {exc}") from exc
        message = {"op": "start", "job_id": job_id,
                   "fingerprint": fingerprint, "network": request.network,
                   "spec": request.spec, "budget": request.budget,
                   "factory": factory_bytes}
        try:
            reply = self.supervisor.request(message,
                                            timeout=self.slice_timeout)
        except _PICKLE_ERRORS as exc:
            raise UnpicklableJob(
                f"job payload does not pickle: {exc}") from exc
        if reply.get("op") != "error":
            self.active_jobs.add(job_id)
        return reply

    def run_slice(self, job_id: str, rounds: int,
                  deadline_at: Optional[float]) -> dict:
        """Advance ``job_id`` by up to ``rounds`` rounds; the reply dict.

        ``deadline_at`` is the job's absolute ``time.monotonic()`` deadline
        — comparable across processes on one host (CLOCK_MONOTONIC is
        system-wide on Linux), so the worker enforces it exactly like the
        in-process transports do.  Terminal replies (``done`` / ``error``)
        release the job's slot.
        """
        reply = self.supervisor.request(
            {"op": "slice", "job_id": job_id, "rounds": rounds,
             "deadline_at": deadline_at}, timeout=self.slice_timeout)
        if reply.get("op") in ("done", "error"):
            self.active_jobs.discard(job_id)
        return reply

    def discard(self, fingerprint: str) -> None:
        """Quarantine a fingerprint's worker-local bundle (best-effort).

        Mirrors the parent pool's quarantine: the next job on the
        fingerprint re-hands a fresh (post-quarantine) bundle, so poisoned
        entries never survive in the worker either.
        """
        self.handed_over.discard(fingerprint)
        if not self.alive():
            return
        try:
            self.supervisor.request({"op": "discard",
                                     "fingerprint": fingerprint},
                                    timeout=self.slice_timeout)
        except Exception:  # noqa: BLE001 - next dispatch handles a dead worker
            pass


def reply_error(reply: dict) -> JobError:
    """Translate a worker ``error`` reply into a structured JobError."""
    return JobError(reply.get("kind", "WorkerError"),
                    reply.get("message", ""), reply.get("stage", "round"))
