"""Process supervision for the service's ``"process"`` transport.

A :class:`WorkerSupervisor` owns exactly one worker *process*: it spawns
the process with a duplex pipe, performs request/response round-trips, and
— the part that makes the transport crash-resilient — watches liveness the
whole time a reply is pending.  A worker that segfaults, is OOM-killed or
SIGKILLed mid-round never leaves the parent blocked: the receive loop polls
the pipe in short intervals and checks the process between polls, so a dead
worker surfaces as a :class:`WorkerCrashed` within one poll interval.  The
scheduler translates that exception into its retry/poison/degradation
policy (see ``docs/SERVICE.md#fault-model--supervision``); the supervisor
itself is policy-free — it only detects, restarts and stops.

Start-method resolution prefers ``fork`` (cheap on Linux — the parent's
loaded numpy/model state is shared copy-on-write) and falls back to
``spawn``; hosts where neither is available raise
:class:`ProcessTransportUnavailable`, which the scheduler catches to
degrade gracefully onto the threaded transport.
"""

from __future__ import annotations

import multiprocessing
import time
from typing import Callable, Optional, Tuple

from repro.utils.validation import require

#: Start methods tried, in order, when the user does not pin one.
PREFERRED_START_METHODS = ("fork", "spawn")

#: Seconds between pipe polls while a reply is pending — the heartbeat
#: granularity of crash detection.
DEFAULT_POLL_INTERVAL = 0.02

#: Seconds a worker is given to exit voluntarily on ``stop()`` before it is
#: killed.
STOP_GRACE_SECONDS = 2.0


class ProcessTransportUnavailable(RuntimeError):
    """Worker processes cannot be provided on this host/configuration.

    Raised when no multiprocessing start method works (or spawning itself
    fails).  The scheduler treats it as a degradation trigger — the shard
    falls back to in-process execution — never as a job failure.
    """


class WorkerCrashed(RuntimeError):
    """The supervised worker process died (or hung past its timeout).

    Carries the worker's ``exitcode`` when the process terminated (negative
    values are signal numbers: ``-9`` for SIGKILL) and ``None`` when the
    worker was killed by the supervisor for exceeding a reply timeout.
    """

    def __init__(self, message: str, exitcode: Optional[int] = None) -> None:
        super().__init__(message)
        self.exitcode = exitcode


def resolve_start_method(
        preferred: Optional[str] = None) -> multiprocessing.context.BaseContext:
    """The multiprocessing context to use, or raise if none is available.

    ``preferred`` pins a method (``"fork"`` / ``"spawn"`` / ``"forkserver"``);
    ``None`` tries :data:`PREFERRED_START_METHODS` in order.  Raises
    :class:`ProcessTransportUnavailable` when no candidate is supported,
    so callers can degrade instead of crash.
    """
    candidates = ((preferred,) if preferred is not None
                  else PREFERRED_START_METHODS)
    available = multiprocessing.get_all_start_methods()
    for method in candidates:
        if method in available:
            try:
                return multiprocessing.get_context(method)
            except ValueError:  # pragma: no cover - platform-dependent
                continue
    raise ProcessTransportUnavailable(
        f"no usable multiprocessing start method among {candidates} "
        f"(host supports {available})")


class WorkerSupervisor:
    """Spawn, watch, restart and stop one worker process.

    ``target`` is the worker main — a module-level function (spawn-safe)
    called as ``target(child_connection, *args)``.  The supervisor is used
    from a single scheduler shard thread, so it carries no locking of its
    own; crash *detection* is synchronous with the request that observed
    it, which is exactly the attribution the retry policy needs.
    """

    def __init__(self, target: Callable, args: Tuple = (),
                 start_method: Optional[str] = None,
                 poll_interval: float = DEFAULT_POLL_INTERVAL,
                 name: str = "verification-shard") -> None:
        require(poll_interval > 0.0, "poll_interval must be positive")
        self._target = target
        self._args = tuple(args)
        self._start_method = start_method
        self._poll_interval = float(poll_interval)
        self._name = name
        self._context = None
        self._process = None
        self._conn = None
        #: Successful (re)starts performed — restarts = starts - 1.
        self.starts = 0

    # -- lifecycle -------------------------------------------------------------
    def start(self) -> None:
        """Spawn the worker process (idempotent while one is alive).

        Raises :class:`ProcessTransportUnavailable` when the host cannot
        provide worker processes at all, letting the caller degrade.
        """
        if self.alive():
            return
        if self._context is None:
            self._context = resolve_start_method(self._start_method)
        self._drop_process()
        try:
            parent_conn, child_conn = self._context.Pipe(duplex=True)
            process = self._context.Process(
                target=self._target, args=(child_conn,) + self._args,
                name=f"{self._name}-gen{self.starts}", daemon=True)
            process.start()
        except Exception as exc:  # noqa: BLE001 - spawn failure of any shape
            raise ProcessTransportUnavailable(
                f"could not spawn worker process: {exc}") from exc
        child_conn.close()  # the child holds its own copy
        self._process = process
        self._conn = parent_conn
        self.starts += 1

    def restart(self) -> None:
        """Kill whatever is left of the worker and spawn a fresh one."""
        self._kill()
        self.start()

    def stop(self, timeout: float = STOP_GRACE_SECONDS) -> None:
        """Ask the worker to exit (``stop`` op), then kill it if it lingers."""
        process = self._process
        if process is None:
            return
        if process.is_alive() and self._conn is not None:
            try:
                self._conn.send({"op": "stop"})
            except (OSError, ValueError):
                pass  # already broken; the kill below cleans up
        process.join(timeout)
        self._kill()

    def alive(self) -> bool:
        """Whether a worker process is currently running."""
        return self._process is not None and self._process.is_alive()

    @property
    def exitcode(self) -> Optional[int]:
        """The last worker's exit code (``None`` while running/never started)."""
        return None if self._process is None else self._process.exitcode

    # -- requests --------------------------------------------------------------
    def request(self, message: dict, timeout: Optional[float] = None) -> dict:
        """One round-trip: send ``message``, await the reply, watch liveness.

        While the reply is pending the pipe is polled every
        ``poll_interval`` seconds and the process checked in between — a
        worker that died mid-request raises :class:`WorkerCrashed` almost
        immediately instead of blocking forever.  With ``timeout`` set, a
        worker that is still silent after that many seconds is *killed* and
        reported as crashed (the hung-worker containment path).  Pickling
        errors from unpicklable payloads propagate to the caller before any
        bytes hit the pipe.
        """
        if not self.alive() or self._conn is None:
            raise WorkerCrashed("worker process is not running",
                                exitcode=self.exitcode)
        try:
            self._conn.send(message)
        except (BrokenPipeError, OSError) as exc:
            raise WorkerCrashed(f"worker pipe broken on send: {exc}",
                                exitcode=self._harvest_exitcode()) from exc
        deadline = None if timeout is None else time.monotonic() + timeout
        while True:
            try:
                if self._conn.poll(self._poll_interval):
                    return self._conn.recv()
            except (EOFError, BrokenPipeError, OSError) as exc:
                raise WorkerCrashed(
                    f"worker pipe closed mid-request: {exc}",
                    exitcode=self._harvest_exitcode()) from exc
            if not self._process.is_alive():
                # One final drain: the reply may have been written just
                # before death.
                try:
                    if self._conn.poll(0):
                        return self._conn.recv()
                except (EOFError, BrokenPipeError, OSError):
                    pass
                raise WorkerCrashed(
                    f"worker process died mid-request "
                    f"(exitcode {self._process.exitcode})",
                    exitcode=self._process.exitcode)
            if deadline is not None and time.monotonic() >= deadline:
                self._kill()
                raise WorkerCrashed(
                    f"worker unresponsive for {timeout:.3g}s; killed")

    def ping(self, timeout: float = 1.0) -> bool:
        """Liveness probe: a ``ping`` round-trip (False on any failure)."""
        try:
            return self.request({"op": "ping"}, timeout=timeout)\
                .get("op") == "pong"
        except WorkerCrashed:
            return False

    # -- internals -------------------------------------------------------------
    def _harvest_exitcode(self) -> Optional[int]:
        """The dying worker's exit code, waiting briefly for the reap.

        A broken pipe can surface before the kernel finishes tearing the
        process down, when ``exitcode`` still reads ``None``; a short join
        recovers the real code (negative = killing signal) for diagnostics.
        """
        process = self._process
        if process is None:
            return None
        process.join(STOP_GRACE_SECONDS)
        return process.exitcode

    def _kill(self) -> None:
        process = self._process
        if process is not None and process.is_alive():
            process.kill()
            process.join(STOP_GRACE_SECONDS)
        self._drop_process()

    def _drop_process(self) -> None:
        if self._conn is not None:
            try:
                self._conn.close()
            except OSError:  # pragma: no cover - double close
                pass
        self._conn = None
        self._process = None
