"""Verification-as-a-service: a job scheduler over the frontier engine.

See :mod:`repro.service.scheduler` for the scheduling policy and
:mod:`repro.service.pool` for the fingerprint-scoped cache sharing model;
``docs/SERVICE.md`` documents the subsystem end to end.
"""

from repro.service.jobs import JobError, JobRequest, JobResult
from repro.service.pool import CacheBundle, FingerprintCachePool
from repro.service.scheduler import ServiceConfig, VerificationService

__all__ = [
    "CacheBundle",
    "FingerprintCachePool",
    "JobError",
    "JobRequest",
    "JobResult",
    "ServiceConfig",
    "VerificationService",
]
