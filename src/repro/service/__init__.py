"""Verification-as-a-service: a job scheduler over the frontier engine.

See :mod:`repro.service.scheduler` for the scheduling policy and execution
transports (cooperative / threaded / process),
:mod:`repro.service.supervisor` and :mod:`repro.service.process_transport`
for worker-process supervision and crash isolation,
:mod:`repro.service.async_service` for the asyncio front-end, and
:mod:`repro.service.pool` for the fingerprint-scoped cache sharing and
persistence model; ``docs/SERVICE.md`` documents the subsystem end to end.
"""

from repro.service.async_service import AsyncVerificationService
from repro.service.jobs import JobError, JobRequest, JobResult, RetryPolicy
from repro.service.pool import CacheBundle, FingerprintCachePool
from repro.service.scheduler import (
    TRANSPORTS,
    ServiceConfig,
    VerificationService,
)
from repro.service.supervisor import (
    ProcessTransportUnavailable,
    WorkerCrashed,
    WorkerSupervisor,
)

__all__ = [
    "AsyncVerificationService",
    "CacheBundle",
    "FingerprintCachePool",
    "JobError",
    "JobRequest",
    "JobResult",
    "ProcessTransportUnavailable",
    "RetryPolicy",
    "ServiceConfig",
    "TRANSPORTS",
    "VerificationService",
    "WorkerCrashed",
    "WorkerSupervisor",
]
