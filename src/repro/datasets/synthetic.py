"""Deterministic synthetic image-classification datasets.

The paper evaluates on MNIST and CIFAR-10; neither the images nor the
pretrained VNN-COMP networks are available in this offline environment, so
we substitute synthetic datasets that reproduce the *structural* properties
relevant to verification:

* several visually-distinct classes whose prototypes differ in localised
  regions (so convolutional and dense models both learn meaningful filters),
* per-sample noise so trained networks have a mixture of robust and fragile
  inputs, which yields the mix of certified / violated / hard verification
  instances the paper's benchmark selection (Fig. 3) relies on,
* pixel values in ``[0, 1]`` so L∞ robustness specifications carry over
  verbatim.

Two generators are provided, mirroring the two dataset families:

* :func:`make_blob_dataset` ("MNIST-like"): single-channel images whose
  classes are blurred blobs at class-specific locations;
* :func:`make_stripe_dataset` ("CIFAR-like"): multi-channel images whose
  classes combine stripe orientation and colour balance.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from repro.utils.rng import SeedLike, as_rng
from repro.utils.validation import require


@dataclass(frozen=True)
class Dataset:
    """A labelled image dataset with values in ``[0, 1]``.

    Attributes
    ----------
    inputs:
        Array of shape ``(count, *image_shape)``.
    labels:
        Integer class labels of shape ``(count,)``.
    num_classes:
        Number of distinct classes.
    name:
        Human-readable dataset name (appears in benchmark tables).
    """

    inputs: np.ndarray
    labels: np.ndarray
    num_classes: int
    name: str

    def __post_init__(self) -> None:
        require(self.inputs.shape[0] == self.labels.shape[0],
                "inputs and labels must have the same number of samples")
        require(self.num_classes >= 2, "a classification dataset needs >= 2 classes")

    @property
    def count(self) -> int:
        return int(self.inputs.shape[0])

    @property
    def image_shape(self) -> Tuple[int, ...]:
        return tuple(self.inputs.shape[1:])

    def sample(self, index: int) -> Tuple[np.ndarray, int]:
        """Return the ``(image, label)`` pair at ``index``."""
        require(0 <= index < self.count, f"sample index {index} out of range")
        return self.inputs[index], int(self.labels[index])

    def subset(self, indices: np.ndarray) -> "Dataset":
        """Return a new dataset restricted to ``indices``."""
        indices = np.asarray(indices, dtype=int)
        return Dataset(self.inputs[indices], self.labels[indices],
                       self.num_classes, self.name)


def _class_prototype_blob(label: int, num_classes: int, size: int) -> np.ndarray:
    """A blurred bright blob whose centre position encodes the class."""
    angle = 2.0 * np.pi * label / num_classes
    radius = 0.28 * size
    centre_row = size / 2.0 + radius * np.sin(angle)
    centre_col = size / 2.0 + radius * np.cos(angle)
    rows = np.arange(size).reshape(-1, 1)
    cols = np.arange(size).reshape(1, -1)
    sigma = 0.16 * size + 0.6
    blob = np.exp(-((rows - centre_row) ** 2 + (cols - centre_col) ** 2) / (2 * sigma ** 2))
    return blob / blob.max()


def make_blob_dataset(count: int = 300, size: int = 7, num_classes: int = 4,
                      noise: float = 0.12, seed: SeedLike = 0,
                      name: str = "blobs") -> Dataset:
    """Single-channel "MNIST-like" dataset of class-positioned blobs.

    Parameters
    ----------
    count:
        Number of samples (classes are balanced up to rounding).
    size:
        Image height and width in pixels.
    num_classes:
        Number of classes; each class places a blob at a distinct position.
    noise:
        Standard deviation of the additive Gaussian pixel noise.
    """
    require(count > 0 and size >= 3 and num_classes >= 2, "invalid dataset parameters")
    require(noise >= 0, "noise must be non-negative")
    rng = as_rng(seed)
    prototypes = np.stack([_class_prototype_blob(c, num_classes, size)
                           for c in range(num_classes)])
    labels = np.arange(count) % num_classes
    rng.shuffle(labels)
    images = prototypes[labels] + rng.normal(0.0, noise, size=(count, size, size))
    images = np.clip(images, 0.0, 1.0)
    return Dataset(images.reshape(count, 1, size, size), labels, num_classes, name)


def _class_prototype_stripes(label: int, num_classes: int, size: int,
                             channels: int) -> np.ndarray:
    """Striped multi-channel prototype: class encodes period, phase, colour."""
    period = 2 + (label % 3)
    vertical = (label // 3) % 2 == 0
    rows = np.arange(size).reshape(-1, 1)
    cols = np.arange(size).reshape(1, -1)
    phase = rows if vertical else cols
    pattern = 0.5 + 0.5 * np.sin(2 * np.pi * phase / period + label)
    image = np.empty((channels, size, size))
    for channel in range(channels):
        weight = 0.35 + 0.65 * ((label + channel) % channels) / max(channels - 1, 1)
        image[channel] = weight * pattern + (1 - weight) * (1 - pattern)
    return np.clip(image, 0.0, 1.0)


def make_stripe_dataset(count: int = 300, size: int = 8, channels: int = 3,
                        num_classes: int = 4, noise: float = 0.1,
                        seed: SeedLike = 0, name: str = "stripes") -> Dataset:
    """Multi-channel "CIFAR-like" dataset of coloured stripe patterns."""
    require(count > 0 and size >= 3 and num_classes >= 2 and channels >= 1,
            "invalid dataset parameters")
    require(noise >= 0, "noise must be non-negative")
    rng = as_rng(seed)
    prototypes = np.stack([_class_prototype_stripes(c, num_classes, size, channels)
                           for c in range(num_classes)])
    labels = np.arange(count) % num_classes
    rng.shuffle(labels)
    images = prototypes[labels] + rng.normal(0.0, noise,
                                             size=(count, channels, size, size))
    images = np.clip(images, 0.0, 1.0)
    return Dataset(images, labels, num_classes, name)


def train_test_split(dataset: Dataset, train_fraction: float = 0.8,
                     seed: SeedLike = 0) -> Tuple[Dataset, Dataset]:
    """Split a dataset into train and test subsets."""
    require(0.0 < train_fraction < 1.0, "train_fraction must be in (0, 1)")
    rng = as_rng(seed)
    order = rng.permutation(dataset.count)
    cut = int(round(dataset.count * train_fraction))
    require(0 < cut < dataset.count, "split produces an empty subset")
    return dataset.subset(order[:cut]), dataset.subset(order[cut:])
