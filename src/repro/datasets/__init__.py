"""Synthetic dataset substrate (stands in for MNIST / CIFAR-10, see DESIGN.md)."""

from repro.datasets.synthetic import (
    Dataset,
    make_blob_dataset,
    make_stripe_dataset,
    train_test_split,
)

__all__ = [
    "Dataset",
    "make_blob_dataset",
    "make_stripe_dataset",
    "train_test_split",
]
