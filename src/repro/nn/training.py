"""A small numpy trainer used to produce realistic verification targets.

The paper evaluates verification on *trained* MNIST/CIFAR-10 networks; the
distribution of stable/unstable ReLUs (and therefore BaB behaviour) depends
on training.  This module trains the laptop-scale model-zoo networks on the
synthetic datasets with mini-batch SGD (optionally Adam) and a softmax
cross-entropy loss.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.nn.network import Network
from repro.utils.rng import SeedLike, as_rng
from repro.utils.validation import require


def softmax(logits: np.ndarray) -> np.ndarray:
    """Numerically stable softmax over the last axis."""
    shifted = logits - logits.max(axis=-1, keepdims=True)
    exp = np.exp(shifted)
    return exp / exp.sum(axis=-1, keepdims=True)


def cross_entropy_loss(logits: np.ndarray, labels: np.ndarray) -> Tuple[float, np.ndarray]:
    """Return mean cross-entropy loss and its gradient w.r.t. the logits."""
    logits = np.asarray(logits, dtype=float)
    labels = np.asarray(labels, dtype=int)
    require(logits.ndim == 2, "logits must be (batch, classes)")
    require(labels.shape == (logits.shape[0],), "labels must be a vector matching the batch")
    probabilities = softmax(logits)
    batch = logits.shape[0]
    picked = probabilities[np.arange(batch), labels]
    loss = float(-np.log(np.clip(picked, 1e-12, None)).mean())
    grad = probabilities.copy()
    grad[np.arange(batch), labels] -= 1.0
    return loss, grad / batch


def accuracy(network: Network, inputs: np.ndarray, labels: np.ndarray) -> float:
    """Fraction of samples classified correctly."""
    predictions = network.predict(inputs)
    return float(np.mean(predictions == np.asarray(labels)))


@dataclass
class TrainingConfig:
    """Hyperparameters for :class:`Trainer`."""

    epochs: int = 20
    batch_size: int = 32
    learning_rate: float = 0.05
    momentum: float = 0.9
    weight_decay: float = 1e-4
    optimizer: str = "sgd"  # "sgd" or "adam"
    shuffle: bool = True
    seed: int = 0

    def __post_init__(self) -> None:
        require(self.epochs >= 0, "epochs must be non-negative")
        require(self.batch_size > 0, "batch_size must be positive")
        require(self.learning_rate > 0, "learning_rate must be positive")
        require(self.optimizer in ("sgd", "adam"),
                f"unknown optimizer {self.optimizer!r}")


@dataclass
class TrainingHistory:
    """Per-epoch loss and accuracy recorded by the trainer."""

    losses: List[float] = field(default_factory=list)
    accuracies: List[float] = field(default_factory=list)

    @property
    def final_loss(self) -> Optional[float]:
        return self.losses[-1] if self.losses else None

    @property
    def final_accuracy(self) -> Optional[float]:
        return self.accuracies[-1] if self.accuracies else None


class Trainer:
    """Mini-batch trainer with SGD+momentum or Adam updates."""

    def __init__(self, network: Network, config: Optional[TrainingConfig] = None) -> None:
        self.network = network
        self.config = config or TrainingConfig()
        self._momentum_buffers: Dict[int, np.ndarray] = {}
        self._adam_m: Dict[int, np.ndarray] = {}
        self._adam_v: Dict[int, np.ndarray] = {}
        self._adam_t = 0

    def fit(self, inputs: np.ndarray, labels: np.ndarray,
            rng: SeedLike = None) -> TrainingHistory:
        """Train the network in place and return the training history."""
        config = self.config
        rng = as_rng(config.seed if rng is None else rng)
        inputs = np.asarray(inputs, dtype=float)
        labels = np.asarray(labels, dtype=int)
        require(inputs.shape[0] == labels.shape[0],
                "inputs and labels must have the same number of samples")
        history = TrainingHistory()
        count = inputs.shape[0]
        for _ in range(config.epochs):
            order = rng.permutation(count) if config.shuffle else np.arange(count)
            epoch_losses = []
            for start in range(0, count, config.batch_size):
                batch_index = order[start:start + config.batch_size]
                loss = self._step(inputs[batch_index], labels[batch_index])
                epoch_losses.append(loss)
            history.losses.append(float(np.mean(epoch_losses)))
            history.accuracies.append(accuracy(self.network, inputs, labels))
        self.network.invalidate_lowered()
        return history

    def _step(self, batch_inputs: np.ndarray, batch_labels: np.ndarray) -> float:
        logits = self.network.forward(batch_inputs)
        loss, grad_logits = cross_entropy_loss(logits, batch_labels)
        self.network.backward(grad_logits)
        if self.config.optimizer == "adam":
            self._apply_adam()
        else:
            self._apply_sgd()
        return loss

    def _apply_sgd(self) -> None:
        config = self.config
        for layer in self.network.layers:
            params = layer.parameters()
            grads = layer.gradients()
            for name, param in params.items():
                grad = grads[name] + config.weight_decay * param
                key = id(param)
                buffer = self._momentum_buffers.get(key)
                if buffer is None:
                    buffer = np.zeros_like(param)
                buffer = config.momentum * buffer + grad
                self._momentum_buffers[key] = buffer
                param -= config.learning_rate * buffer

    def _apply_adam(self, beta1: float = 0.9, beta2: float = 0.999,
                    epsilon: float = 1e-8) -> None:
        config = self.config
        self._adam_t += 1
        for layer in self.network.layers:
            params = layer.parameters()
            grads = layer.gradients()
            for name, param in params.items():
                grad = grads[name] + config.weight_decay * param
                key = id(param)
                m = self._adam_m.get(key, np.zeros_like(param))
                v = self._adam_v.get(key, np.zeros_like(param))
                m = beta1 * m + (1 - beta1) * grad
                v = beta2 * v + (1 - beta2) * grad * grad
                self._adam_m[key] = m
                self._adam_v[key] = v
                m_hat = m / (1 - beta1 ** self._adam_t)
                v_hat = v / (1 - beta2 ** self._adam_t)
                param -= config.learning_rate * m_hat / (np.sqrt(v_hat) + epsilon)


def train_network(network: Network, inputs: np.ndarray, labels: np.ndarray,
                  config: Optional[TrainingConfig] = None) -> TrainingHistory:
    """Convenience wrapper: train ``network`` in place and return the history."""
    return Trainer(network, config).fit(inputs, labels)
