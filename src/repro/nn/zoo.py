"""Model zoo mirroring the paper's five benchmark model families.

The paper (Table I) evaluates five models:

========== ========== ===================== =========
paper name dataset    architecture          #neurons
========== ========== ===================== =========
MNIST_L2   MNIST      2 x 256 linear        512
MNIST_L4   MNIST      4 x 256 linear        1024
CIFAR_BASE CIFAR-10   2 conv, 2 linear      4852
CIFAR_WIDE CIFAR-10   2 conv (wide), 2 lin  6244
CIFAR_DEEP CIFAR-10   4 conv, 2 linear      6756
========== ========== ===================== =========

This reproduction keeps the *relative* structure (two dense families on the
single-channel dataset, three convolutional families of increasing width /
depth on the multi-channel dataset) but scales the widths down so that the
complete evaluation — hundreds of verification problems, each solved by
three verifiers — runs on a laptop with a pure-numpy bound-propagation
backend.  The substitution is recorded in DESIGN.md.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from repro.datasets.synthetic import Dataset, make_blob_dataset, make_stripe_dataset
from repro.nn.layers import Conv2d, Dense, Flatten, ReLU
from repro.nn.network import Network
from repro.nn.training import TrainingConfig, train_network
from repro.utils.validation import require


@dataclass(frozen=True)
class ModelFamily:
    """A named benchmark model family: how to build its dataset and network."""

    name: str
    dataset_name: str
    architecture: str
    build_dataset: Callable[[int], Dataset]
    build_network: Callable[[Dataset, int], Network]
    training: TrainingConfig


def _blob_dataset(seed: int) -> Dataset:
    return make_blob_dataset(count=320, size=7, num_classes=4, noise=0.12,
                             seed=seed, name="blobs-7x7")


def _stripe_dataset(seed: int) -> Dataset:
    return make_stripe_dataset(count=320, size=8, channels=3, num_classes=4,
                               noise=0.1, seed=seed, name="stripes-3x8x8")


def _dense_model(dataset: Dataset, hidden: List[int], seed: int, name: str) -> Network:
    input_dim = 1
    for dim in dataset.image_shape:
        input_dim *= dim
    layers = [Flatten()]
    previous = input_dim
    for index, width in enumerate(hidden):
        layers.append(Dense(previous, width, seed=seed + index))
        layers.append(ReLU())
        previous = width
    layers.append(Dense(previous, dataset.num_classes, seed=seed + len(hidden)))
    return Network(layers, dataset.image_shape, name=name)


def _conv_model(dataset: Dataset, conv_channels: List[int], dense_width: int,
                seed: int, name: str) -> Network:
    channels = dataset.image_shape[0]
    layers = []
    previous = channels
    for index, out_channels in enumerate(conv_channels):
        stride = 2 if index == 0 else 1
        layers.append(Conv2d(previous, out_channels, kernel_size=3, stride=stride,
                             padding=1, seed=seed + index))
        layers.append(ReLU())
        previous = out_channels
    layers.append(Flatten())
    probe = Network(list(layers), dataset.image_shape, name="probe")
    flat_dim = probe.output_dim
    layers.append(Dense(flat_dim, dense_width, seed=seed + 100))
    layers.append(ReLU())
    layers.append(Dense(dense_width, dataset.num_classes, seed=seed + 101))
    return Network(layers, dataset.image_shape, name=name)


_DEFAULT_TRAINING = TrainingConfig(epochs=25, batch_size=32, learning_rate=0.05,
                                   momentum=0.9, weight_decay=1e-4, optimizer="sgd")
_CONV_TRAINING = TrainingConfig(epochs=25, batch_size=32, learning_rate=0.02,
                                momentum=0.9, weight_decay=1e-4, optimizer="adam")


MODEL_FAMILIES: Dict[str, ModelFamily] = {
    "MNIST_L2": ModelFamily(
        name="MNIST_L2",
        dataset_name="blobs-7x7",
        architecture="2 x 24 linear",
        build_dataset=_blob_dataset,
        build_network=lambda ds, seed: _dense_model(ds, [24, 24], seed, "MNIST_L2"),
        training=_DEFAULT_TRAINING,
    ),
    "MNIST_L4": ModelFamily(
        name="MNIST_L4",
        dataset_name="blobs-7x7",
        architecture="4 x 16 linear",
        build_dataset=_blob_dataset,
        build_network=lambda ds, seed: _dense_model(ds, [16, 16, 16, 16], seed, "MNIST_L4"),
        training=_DEFAULT_TRAINING,
    ),
    "CIFAR_BASE": ModelFamily(
        name="CIFAR_BASE",
        dataset_name="stripes-3x8x8",
        architecture="2 conv, 2 linear",
        build_dataset=_stripe_dataset,
        build_network=lambda ds, seed: _conv_model(ds, [4, 4], 24, seed, "CIFAR_BASE"),
        training=_CONV_TRAINING,
    ),
    "CIFAR_WIDE": ModelFamily(
        name="CIFAR_WIDE",
        dataset_name="stripes-3x8x8",
        architecture="2 conv (wide), 2 linear",
        build_dataset=_stripe_dataset,
        build_network=lambda ds, seed: _conv_model(ds, [6, 6], 32, seed, "CIFAR_WIDE"),
        training=_CONV_TRAINING,
    ),
    "CIFAR_DEEP": ModelFamily(
        name="CIFAR_DEEP",
        dataset_name="stripes-3x8x8",
        architecture="4 conv, 2 linear",
        build_dataset=_stripe_dataset,
        build_network=lambda ds, seed: _conv_model(ds, [4, 4, 4, 4], 24, seed, "CIFAR_DEEP"),
        training=_CONV_TRAINING,
    ),
}

#: Paper order of the model families (used by tables and figures).
FAMILY_ORDER: Tuple[str, ...] = ("MNIST_L2", "MNIST_L4", "CIFAR_BASE",
                                 "CIFAR_WIDE", "CIFAR_DEEP")

_TRAINED_CACHE: Dict[Tuple[str, int], Tuple[Network, Dataset]] = {}


def family(name: str) -> ModelFamily:
    """Look up a model family by name."""
    require(name in MODEL_FAMILIES,
            f"unknown model family {name!r}; available: {sorted(MODEL_FAMILIES)}")
    return MODEL_FAMILIES[name]


def build_trained_model(name: str, seed: int = 0,
                        use_cache: bool = True) -> Tuple[Network, Dataset]:
    """Build the dataset and a trained network for a model family.

    Results are cached per ``(name, seed)`` because the experiment harness
    evaluates many verification instances against the same trained model.
    """
    key = (name, int(seed))
    if use_cache and key in _TRAINED_CACHE:
        return _TRAINED_CACHE[key]
    spec = family(name)
    dataset = spec.build_dataset(seed)
    network = spec.build_network(dataset, seed)
    train_network(network, dataset.inputs, dataset.labels, spec.training)
    if use_cache:
        _TRAINED_CACHE[key] = (network, dataset)
    return network, dataset


def clear_model_cache() -> None:
    """Drop all cached trained models (used by tests)."""
    _TRAINED_CACHE.clear()
