"""Neural network substrate: layers, networks, training, and the model zoo."""

from repro.nn.layers import Conv2d, Dense, Flatten, Layer, ReLU
from repro.nn.network import LoweredNetwork, Network, dense_network
from repro.nn.training import (
    Trainer,
    TrainingConfig,
    TrainingHistory,
    accuracy,
    cross_entropy_loss,
    softmax,
    train_network,
)
from repro.nn.zoo import (
    FAMILY_ORDER,
    MODEL_FAMILIES,
    ModelFamily,
    build_trained_model,
    clear_model_cache,
    family,
)

__all__ = [
    "Conv2d",
    "Dense",
    "Flatten",
    "Layer",
    "ReLU",
    "LoweredNetwork",
    "Network",
    "dense_network",
    "Trainer",
    "TrainingConfig",
    "TrainingHistory",
    "accuracy",
    "cross_entropy_loss",
    "softmax",
    "train_network",
    "FAMILY_ORDER",
    "MODEL_FAMILIES",
    "ModelFamily",
    "build_trained_model",
    "clear_model_cache",
    "family",
]
