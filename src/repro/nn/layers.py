"""Neural-network layers implemented in numpy.

The verification algorithms in this library only need networks composed of
affine transformations and ReLU activations (the class handled by the ABONN
paper).  Each layer therefore provides three views:

* ``forward`` / ``backward`` — batched inference and gradient propagation,
  used by the trainer (:mod:`repro.nn.training`) and by the PGD attack
  substrate (:mod:`repro.verifiers.attack`);
* ``output_shape`` — static shape inference;
* for affine layers, ``to_affine`` — the explicit ``(W, b)`` pair over the
  flattened input, used to lower the network into the canonical
  affine/ReLU alternation consumed by the bound-propagation verifiers.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence, Tuple

import numpy as np

from repro.utils.rng import SeedLike, as_rng
from repro.utils.validation import require


class Layer:
    """Base class for all layers."""

    #: True for layers that are affine over the flattened input.
    is_affine: bool = False
    #: True for ReLU activation layers.
    is_relu: bool = False

    def forward(self, x: np.ndarray) -> np.ndarray:
        """Map a batch ``x`` of shape ``(batch, *input_shape)`` to outputs."""
        raise NotImplementedError

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        """Propagate gradients; must be called after ``forward``."""
        raise NotImplementedError

    def output_shape(self, input_shape: Tuple[int, ...]) -> Tuple[int, ...]:
        """Infer the per-sample output shape given a per-sample input shape."""
        raise NotImplementedError

    def parameters(self) -> Dict[str, np.ndarray]:
        """Trainable parameters (possibly empty)."""
        return {}

    def gradients(self) -> Dict[str, np.ndarray]:
        """Gradients for the trainable parameters (same keys as parameters)."""
        return {}

    def to_affine(self, input_shape: Tuple[int, ...]) -> Tuple[np.ndarray, np.ndarray]:
        """Return ``(W, b)`` such that the layer equals ``x -> W @ x + b``.

        Only valid when :attr:`is_affine` is True.  ``x`` is the flattened
        per-sample input of the given shape.
        """
        raise NotImplementedError(f"{type(self).__name__} is not an affine layer")


class Dense(Layer):
    """Fully connected layer ``y = x @ W.T + b``.

    Parameters
    ----------
    in_features, out_features:
        Layer dimensions.
    weight, bias:
        Optional explicit parameters (used when loading saved networks).
    seed:
        Seed for He-initialisation when parameters are not given.
    """

    is_affine = True

    def __init__(
        self,
        in_features: int,
        out_features: int,
        weight: Optional[np.ndarray] = None,
        bias: Optional[np.ndarray] = None,
        seed: SeedLike = None,
    ) -> None:
        require(in_features > 0, "in_features must be positive")
        require(out_features > 0, "out_features must be positive")
        self.in_features = int(in_features)
        self.out_features = int(out_features)
        if weight is None:
            rng = as_rng(seed)
            scale = np.sqrt(2.0 / in_features)
            weight = rng.normal(0.0, scale, size=(out_features, in_features))
        if bias is None:
            bias = np.zeros(out_features)
        self.weight = np.asarray(weight, dtype=float)
        self.bias = np.asarray(bias, dtype=float)
        require(self.weight.shape == (out_features, in_features),
                f"weight must have shape {(out_features, in_features)}")
        require(self.bias.shape == (out_features,),
                f"bias must have shape {(out_features,)}")
        self._cache_input: Optional[np.ndarray] = None
        self.grad_weight = np.zeros_like(self.weight)
        self.grad_bias = np.zeros_like(self.bias)

    def forward(self, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x, dtype=float)
        flat = x.reshape(x.shape[0], -1)
        require(flat.shape[1] == self.in_features,
                f"Dense expected {self.in_features} input features, got {flat.shape[1]}")
        self._cache_input = flat
        return flat @ self.weight.T + self.bias

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._cache_input is None:
            raise RuntimeError("backward called before forward")
        grad_output = np.asarray(grad_output, dtype=float)
        self.grad_weight = grad_output.T @ self._cache_input
        self.grad_bias = grad_output.sum(axis=0)
        return grad_output @ self.weight

    def output_shape(self, input_shape: Tuple[int, ...]) -> Tuple[int, ...]:
        flat = int(np.prod(input_shape))
        require(flat == self.in_features,
                f"Dense expected {self.in_features} input features, got shape {input_shape}")
        return (self.out_features,)

    def parameters(self) -> Dict[str, np.ndarray]:
        return {"weight": self.weight, "bias": self.bias}

    def gradients(self) -> Dict[str, np.ndarray]:
        return {"weight": self.grad_weight, "bias": self.grad_bias}

    def to_affine(self, input_shape: Tuple[int, ...]) -> Tuple[np.ndarray, np.ndarray]:
        flat = int(np.prod(input_shape))
        require(flat == self.in_features,
                f"Dense expected {self.in_features} input features, got shape {input_shape}")
        return self.weight.copy(), self.bias.copy()


class Flatten(Layer):
    """Flatten per-sample inputs to a vector; affine with identity matrix."""

    is_affine = True

    def __init__(self) -> None:
        self._cache_shape: Optional[Tuple[int, ...]] = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x, dtype=float)
        self._cache_shape = x.shape
        return x.reshape(x.shape[0], -1)

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._cache_shape is None:
            raise RuntimeError("backward called before forward")
        return np.asarray(grad_output, dtype=float).reshape(self._cache_shape)

    def output_shape(self, input_shape: Tuple[int, ...]) -> Tuple[int, ...]:
        return (int(np.prod(input_shape)),)

    def to_affine(self, input_shape: Tuple[int, ...]) -> Tuple[np.ndarray, np.ndarray]:
        flat = int(np.prod(input_shape))
        return np.eye(flat), np.zeros(flat)


class ReLU(Layer):
    """Elementwise rectified linear unit ``max(0, x)``."""

    is_relu = True

    def __init__(self) -> None:
        self._cache_mask: Optional[np.ndarray] = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x, dtype=float)
        self._cache_mask = x > 0
        return np.maximum(x, 0.0)

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._cache_mask is None:
            raise RuntimeError("backward called before forward")
        return np.asarray(grad_output, dtype=float) * self._cache_mask

    def output_shape(self, input_shape: Tuple[int, ...]) -> Tuple[int, ...]:
        return tuple(input_shape)


class Conv2d(Layer):
    """2-D convolution over ``(batch, channels, height, width)`` inputs.

    The convolution is implemented with an im2col lowering, which also makes
    the explicit affine matrix (``to_affine``) straightforward to build for
    the verification backends.
    """

    is_affine = True

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        kernel_size: int,
        stride: int = 1,
        padding: int = 0,
        weight: Optional[np.ndarray] = None,
        bias: Optional[np.ndarray] = None,
        seed: SeedLike = None,
    ) -> None:
        require(in_channels > 0 and out_channels > 0, "channel counts must be positive")
        require(kernel_size > 0, "kernel_size must be positive")
        require(stride > 0, "stride must be positive")
        require(padding >= 0, "padding must be non-negative")
        self.in_channels = int(in_channels)
        self.out_channels = int(out_channels)
        self.kernel_size = int(kernel_size)
        self.stride = int(stride)
        self.padding = int(padding)
        fan_in = in_channels * kernel_size * kernel_size
        if weight is None:
            rng = as_rng(seed)
            scale = np.sqrt(2.0 / fan_in)
            weight = rng.normal(0.0, scale,
                                size=(out_channels, in_channels, kernel_size, kernel_size))
        if bias is None:
            bias = np.zeros(out_channels)
        self.weight = np.asarray(weight, dtype=float)
        self.bias = np.asarray(bias, dtype=float)
        require(self.weight.shape == (out_channels, in_channels, kernel_size, kernel_size),
                "conv weight has wrong shape")
        require(self.bias.shape == (out_channels,), "conv bias has wrong shape")
        self.grad_weight = np.zeros_like(self.weight)
        self.grad_bias = np.zeros_like(self.bias)
        self._cache: Optional[Tuple[np.ndarray, Tuple[int, ...]]] = None

    # -- shape bookkeeping -------------------------------------------------
    def _spatial_output(self, height: int, width: int) -> Tuple[int, int]:
        out_h = (height + 2 * self.padding - self.kernel_size) // self.stride + 1
        out_w = (width + 2 * self.padding - self.kernel_size) // self.stride + 1
        require(out_h > 0 and out_w > 0,
                f"convolution output would be empty for input {(height, width)}")
        return out_h, out_w

    def output_shape(self, input_shape: Tuple[int, ...]) -> Tuple[int, ...]:
        require(len(input_shape) == 3, f"Conv2d expects (C, H, W) inputs, got {input_shape}")
        channels, height, width = input_shape
        require(channels == self.in_channels,
                f"Conv2d expected {self.in_channels} channels, got {channels}")
        out_h, out_w = self._spatial_output(height, width)
        return (self.out_channels, out_h, out_w)

    # -- im2col helpers ----------------------------------------------------
    def _im2col(self, x: np.ndarray) -> Tuple[np.ndarray, Tuple[int, int]]:
        batch, channels, height, width = x.shape
        out_h, out_w = self._spatial_output(height, width)
        if self.padding:
            x = np.pad(x, ((0, 0), (0, 0),
                           (self.padding, self.padding), (self.padding, self.padding)))
        k = self.kernel_size
        cols = np.empty((batch, channels, k, k, out_h, out_w), dtype=float)
        for i in range(k):
            i_end = i + self.stride * out_h
            for j in range(k):
                j_end = j + self.stride * out_w
                cols[:, :, i, j, :, :] = x[:, :, i:i_end:self.stride, j:j_end:self.stride]
        # (batch, out_h, out_w, channels * k * k)
        cols = cols.transpose(0, 4, 5, 1, 2, 3).reshape(batch, out_h * out_w, -1)
        return cols, (out_h, out_w)

    def forward(self, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x, dtype=float)
        require(x.ndim == 4, f"Conv2d expects 4-D input (batch, C, H, W), got ndim={x.ndim}")
        cols, (out_h, out_w) = self._im2col(x)
        kernel = self.weight.reshape(self.out_channels, -1)
        out = cols @ kernel.T + self.bias  # (batch, out_h*out_w, out_channels)
        self._cache = (cols, x.shape)
        return out.transpose(0, 2, 1).reshape(x.shape[0], self.out_channels, out_h, out_w)

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._cache is None:
            raise RuntimeError("backward called before forward")
        cols, input_shape = self._cache
        batch, channels, height, width = input_shape
        out_h, out_w = self._spatial_output(height, width)
        grad_output = np.asarray(grad_output, dtype=float)
        grad_flat = grad_output.reshape(batch, self.out_channels, out_h * out_w)
        grad_flat = grad_flat.transpose(0, 2, 1)  # (batch, positions, out_channels)

        kernel = self.weight.reshape(self.out_channels, -1)
        grad_kernel = np.einsum("bpo,bpk->ok", grad_flat, cols)
        self.grad_weight = grad_kernel.reshape(self.weight.shape)
        self.grad_bias = grad_flat.sum(axis=(0, 1))

        grad_cols = grad_flat @ kernel  # (batch, positions, channels*k*k)
        k = self.kernel_size
        grad_cols = grad_cols.reshape(batch, out_h, out_w, channels, k, k)
        grad_cols = grad_cols.transpose(0, 3, 4, 5, 1, 2)
        padded = np.zeros((batch, channels, height + 2 * self.padding, width + 2 * self.padding))
        for i in range(k):
            i_end = i + self.stride * out_h
            for j in range(k):
                j_end = j + self.stride * out_w
                padded[:, :, i:i_end:self.stride, j:j_end:self.stride] += grad_cols[:, :, i, j]
        if self.padding:
            return padded[:, :, self.padding:-self.padding, self.padding:-self.padding]
        return padded

    def parameters(self) -> Dict[str, np.ndarray]:
        return {"weight": self.weight, "bias": self.bias}

    def gradients(self) -> Dict[str, np.ndarray]:
        return {"weight": self.grad_weight, "bias": self.grad_bias}

    def to_affine(self, input_shape: Tuple[int, ...]) -> Tuple[np.ndarray, np.ndarray]:
        """Build the explicit affine map over the flattened (C, H, W) input.

        The matrix is built by pushing the identity basis through the
        convolution, which is exact and fast enough for the laptop-scale
        networks used in this reproduction.
        """
        out_shape = self.output_shape(tuple(input_shape))
        in_dim = int(np.prod(input_shape))
        out_dim = int(np.prod(out_shape))
        basis = np.eye(in_dim).reshape((in_dim,) + tuple(input_shape))
        response = self.forward(basis).reshape(in_dim, out_dim)
        bias_term = self.forward(np.zeros((1,) + tuple(input_shape))).reshape(out_dim)
        matrix = (response - bias_term).T
        return matrix, bias_term


def layer_from_config(config: Dict[str, object]) -> Layer:
    """Re-create a layer from the dictionary produced by :func:`layer_config`."""
    kind = config["kind"]
    if kind == "dense":
        return Dense(int(config["in_features"]), int(config["out_features"]),
                     weight=np.asarray(config["weight"]), bias=np.asarray(config["bias"]))
    if kind == "conv2d":
        return Conv2d(int(config["in_channels"]), int(config["out_channels"]),
                      int(config["kernel_size"]), stride=int(config["stride"]),
                      padding=int(config["padding"]),
                      weight=np.asarray(config["weight"]), bias=np.asarray(config["bias"]))
    if kind == "flatten":
        return Flatten()
    if kind == "relu":
        return ReLU()
    raise ValueError(f"unknown layer kind: {kind!r}")


def layer_config(layer: Layer) -> Dict[str, object]:
    """Return a serialisable description of ``layer`` (used by save/load)."""
    if isinstance(layer, Dense):
        return {"kind": "dense", "in_features": layer.in_features,
                "out_features": layer.out_features,
                "weight": layer.weight, "bias": layer.bias}
    if isinstance(layer, Conv2d):
        return {"kind": "conv2d", "in_channels": layer.in_channels,
                "out_channels": layer.out_channels, "kernel_size": layer.kernel_size,
                "stride": layer.stride, "padding": layer.padding,
                "weight": layer.weight, "bias": layer.bias}
    if isinstance(layer, Flatten):
        return {"kind": "flatten"}
    if isinstance(layer, ReLU):
        return {"kind": "relu"}
    raise ValueError(f"cannot serialise layer of type {type(layer).__name__}")
