"""Sequential network container and its canonical affine/ReLU lowering.

The verification backends (:mod:`repro.bounds`, :mod:`repro.verifiers.milp`)
consume networks in a canonical form: an alternation

``affine -> ReLU -> affine -> ReLU -> ... -> affine``

over the flattened input.  :meth:`Network.lowered` produces that form by
merging consecutive affine layers (Flatten/Dense/Conv2d) into explicit
``(W, b)`` pairs.  Each hidden affine output corresponds to one ReLU "layer"
of the paper's BaB formulation; individual neurons are addressed globally by
``(layer_index, neuron_index)`` pairs or by a flat index in ``[0, K)`` where
``K`` is the total number of ReLU neurons (the constant in Def. 1).
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.nn.layers import Dense, Layer, ReLU, layer_config, layer_from_config
from repro.utils.validation import require


@dataclass(frozen=True)
class LoweredNetwork:
    """Canonical affine/ReLU representation of a network.

    Attributes
    ----------
    weights, biases:
        ``weights[i] @ h + biases[i]`` is the i-th affine map.  ReLU is
        applied after every affine map except the last one.
    input_shape:
        Original per-sample input shape (the affine maps act on the
        flattened input).
    """

    weights: Tuple[np.ndarray, ...]
    biases: Tuple[np.ndarray, ...]
    input_shape: Tuple[int, ...]

    def __post_init__(self) -> None:
        require(len(self.weights) == len(self.biases),
                "weights and biases must have the same length")
        require(len(self.weights) >= 1, "a lowered network needs at least one affine layer")
        for index, (weight, bias) in enumerate(zip(self.weights, self.biases)):
            require(weight.ndim == 2, f"weight {index} must be a matrix")
            require(bias.ndim == 1, f"bias {index} must be a vector")
            require(weight.shape[0] == bias.shape[0],
                    f"weight/bias {index} output dimensions disagree")
            if index > 0:
                require(weight.shape[1] == self.weights[index - 1].shape[0],
                        f"affine layers {index - 1} and {index} do not compose")

    # -- structural queries --------------------------------------------------
    @property
    def num_affine_layers(self) -> int:
        return len(self.weights)

    @property
    def num_relu_layers(self) -> int:
        """Number of hidden ReLU layers (every affine layer except the last)."""
        return len(self.weights) - 1

    @property
    def input_dim(self) -> int:
        return self.weights[0].shape[1]

    @property
    def output_dim(self) -> int:
        return self.weights[-1].shape[0]

    def relu_layer_sizes(self) -> Tuple[int, ...]:
        """Widths of the hidden (pre-activation) layers, in order."""
        return tuple(weight.shape[0] for weight in self.weights[:-1])

    @property
    def num_relu_neurons(self) -> int:
        """Total number of ReLU neurons ``K`` (the constant of Def. 1)."""
        return int(sum(self.relu_layer_sizes()))

    def neuron_index(self, layer: int, unit: int) -> int:
        """Flatten a ``(layer, unit)`` ReLU address into a global index."""
        sizes = self.relu_layer_sizes()
        require(0 <= layer < len(sizes), f"layer {layer} out of range")
        require(0 <= unit < sizes[layer], f"unit {unit} out of range for layer {layer}")
        return int(sum(sizes[:layer]) + unit)

    def neuron_address(self, index: int) -> Tuple[int, int]:
        """Inverse of :meth:`neuron_index`."""
        sizes = self.relu_layer_sizes()
        require(0 <= index < sum(sizes), f"neuron index {index} out of range")
        for layer, size in enumerate(sizes):
            if index < size:
                return layer, int(index)
            index -= size
        raise AssertionError("unreachable")

    # -- evaluation ----------------------------------------------------------
    def forward(self, x: np.ndarray) -> np.ndarray:
        """Evaluate a batch of flattened inputs ``(batch, input_dim)``."""
        h = np.atleast_2d(np.asarray(x, dtype=float))
        require(h.shape[1] == self.input_dim,
                f"expected inputs of dimension {self.input_dim}, got {h.shape[1]}")
        for index, (weight, bias) in enumerate(zip(self.weights, self.biases)):
            h = h @ weight.T + bias
            if index < len(self.weights) - 1:
                h = np.maximum(h, 0.0)
        return h

    def pre_activations(self, x: np.ndarray) -> List[np.ndarray]:
        """Return the pre-activation values of every hidden layer for ``x``.

        ``x`` is a single flattened input; the output values (logits) are not
        included.
        """
        h = np.asarray(x, dtype=float).reshape(-1)
        require(h.shape[0] == self.input_dim,
                f"expected input of dimension {self.input_dim}, got {h.shape[0]}")
        pre_acts: List[np.ndarray] = []
        for weight, bias in zip(self.weights[:-1], self.biases[:-1]):
            z = weight @ h + bias
            pre_acts.append(z)
            h = np.maximum(z, 0.0)
        return pre_acts


class Network:
    """A sequential feed-forward network.

    Parameters
    ----------
    layers:
        Layer instances, applied in order.
    input_shape:
        Per-sample input shape, e.g. ``(16,)`` for flat inputs or
        ``(1, 8, 8)`` for images.
    name:
        Optional human-readable name (used in benchmark tables).
    """

    def __init__(self, layers: Sequence[Layer], input_shape: Sequence[int],
                 name: str = "network") -> None:
        require(len(layers) > 0, "a network needs at least one layer")
        self.layers: List[Layer] = list(layers)
        self.input_shape: Tuple[int, ...] = tuple(int(d) for d in input_shape)
        self.name = str(name)
        # Validate shape compatibility eagerly so mistakes fail at build time.
        shape = self.input_shape
        for layer in self.layers:
            shape = layer.output_shape(shape)
        self._output_shape = shape
        self._lowered: Optional[LoweredNetwork] = None

    # -- basic properties ----------------------------------------------------
    @property
    def input_dim(self) -> int:
        return int(np.prod(self.input_shape))

    @property
    def output_shape(self) -> Tuple[int, ...]:
        return self._output_shape

    @property
    def output_dim(self) -> int:
        return int(np.prod(self._output_shape))

    @property
    def num_relu_neurons(self) -> int:
        return self.lowered().num_relu_neurons

    def layer_shapes(self) -> List[Tuple[int, ...]]:
        """Per-sample output shape after each layer, starting with the input."""
        shapes = [self.input_shape]
        for layer in self.layers:
            shapes.append(layer.output_shape(shapes[-1]))
        return shapes

    def summary(self) -> str:
        """Return a human-readable architecture summary."""
        lines = [f"Network {self.name!r}: input {self.input_shape}"]
        shape = self.input_shape
        for index, layer in enumerate(self.layers):
            shape = layer.output_shape(shape)
            params = sum(p.size for p in layer.parameters().values())
            lines.append(f"  [{index}] {type(layer).__name__:<8} -> {shape} ({params} params)")
        lines.append(f"  total ReLU neurons: {self.num_relu_neurons}")
        return "\n".join(lines)

    # -- inference -----------------------------------------------------------
    def forward(self, x: np.ndarray) -> np.ndarray:
        """Evaluate a batch shaped ``(batch, *input_shape)`` (or flat)."""
        x = np.asarray(x, dtype=float)
        if x.ndim == 1 or x.shape[1:] != self.input_shape:
            x = x.reshape((-1,) + self.input_shape)
        h = x
        for layer in self.layers:
            h = layer.forward(h)
        return h

    def __call__(self, x: np.ndarray) -> np.ndarray:
        return self.forward(x)

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        """Back-propagate ``d loss / d output`` through the network."""
        grad = np.asarray(grad_output, dtype=float)
        for layer in reversed(self.layers):
            grad = layer.backward(grad)
        return grad

    def predict(self, x: np.ndarray) -> np.ndarray:
        """Return the argmax class label for each sample in the batch."""
        return np.argmax(self.forward(x), axis=1)

    def parameters(self) -> List[Tuple[Layer, str, np.ndarray]]:
        """All trainable parameters as ``(layer, name, array)`` triples."""
        out = []
        for layer in self.layers:
            for name, array in layer.parameters().items():
                out.append((layer, name, array))
        return out

    def num_parameters(self) -> int:
        return int(sum(array.size for _, _, array in self.parameters()))

    # -- lowering ------------------------------------------------------------
    def lowered(self) -> LoweredNetwork:
        """Return (and cache) the canonical affine/ReLU form of the network."""
        if self._lowered is None:
            self._lowered = self._build_lowered()
        return self._lowered

    def invalidate_lowered(self) -> None:
        """Drop the cached lowering (call after mutating parameters)."""
        self._lowered = None

    def _build_lowered(self) -> LoweredNetwork:
        weights: List[np.ndarray] = []
        biases: List[np.ndarray] = []
        # Current accumulated affine map (matrix over the flattened input of
        # the current segment) and the segment's input shape.
        current_w: Optional[np.ndarray] = None
        current_b: Optional[np.ndarray] = None
        shape = self.input_shape
        for layer in self.layers:
            if layer.is_relu:
                require(current_w is not None,
                        "a ReLU layer cannot appear before any affine layer")
                weights.append(current_w)
                biases.append(current_b)
                current_w, current_b = None, None
            elif layer.is_affine:
                w, b = layer.to_affine(shape)
                if current_w is None:
                    current_w, current_b = w, b
                else:
                    current_w = w @ current_w
                    current_b = w @ current_b + b
                shape = layer.output_shape(shape)
            else:  # pragma: no cover - defensive
                raise ValueError(f"cannot lower layer of type {type(layer).__name__}")
        require(current_w is not None,
                "the network must end with an affine layer (logits), not a ReLU")
        weights.append(current_w)
        biases.append(current_b)
        return LoweredNetwork(tuple(weights), tuple(biases), self.input_shape)

    # -- persistence ---------------------------------------------------------
    def save(self, path: Union[str, Path]) -> None:
        """Save architecture and weights to an ``.npz`` file."""
        path = Path(path)
        payload: Dict[str, np.ndarray] = {
            "__input_shape__": np.asarray(self.input_shape, dtype=np.int64),
            "__name__": np.asarray(self.name),
            "__num_layers__": np.asarray(len(self.layers), dtype=np.int64),
        }
        for index, layer in enumerate(self.layers):
            config = layer_config(layer)
            for key, value in config.items():
                payload[f"layer{index}__{key}"] = np.asarray(value)
        np.savez(path, **payload)

    @classmethod
    def load(cls, path: Union[str, Path]) -> "Network":
        """Load a network previously written by :meth:`save`."""
        with np.load(Path(path), allow_pickle=False) as data:
            input_shape = tuple(int(d) for d in data["__input_shape__"])
            name = str(data["__name__"])
            num_layers = int(data["__num_layers__"])
            layers: List[Layer] = []
            for index in range(num_layers):
                prefix = f"layer{index}__"
                config = {key[len(prefix):]: data[key] for key in data.files
                          if key.startswith(prefix)}
                config["kind"] = str(config["kind"])
                layers.append(layer_from_config(config))
        return cls(layers, input_shape, name=name)


def dense_network(layer_sizes: Sequence[int], seed: int = 0, name: str = "dense") -> Network:
    """Build a fully-connected ReLU network from a list of layer widths.

    ``layer_sizes = [in, h1, h2, out]`` produces
    ``Dense(in,h1) -> ReLU -> Dense(h1,h2) -> ReLU -> Dense(h2,out)``.
    """
    require(len(layer_sizes) >= 2, "need at least input and output sizes")
    layers: List[Layer] = []
    for index in range(len(layer_sizes) - 1):
        layers.append(Dense(layer_sizes[index], layer_sizes[index + 1],
                            seed=seed + index))
        if index < len(layer_sizes) - 2:
            layers.append(ReLU())
    return Network(layers, (layer_sizes[0],), name=name)
