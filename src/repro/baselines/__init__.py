"""Baseline verifiers the paper compares ABONN against."""

from repro.baselines.alphabeta_crown import AlphaBetaCrownVerifier

__all__ = ["AlphaBetaCrownVerifier"]
