"""An αβ-CROWN-like baseline verifier.

The paper compares ABONN against the αβ-CROWN tool, "the state-of-the-art
verification tool ... that features various sophisticated heuristics for
performance improvement".  The closed-source-free reproduction below keeps
the behaviours that matter for that comparison:

* **attack-first falsification** — a multi-restart PGD attack runs before
  any expensive bounding, so clearly-violated instances are dispatched
  immediately;
* **optimised root bounds** — the root sub-problem is bounded with α-CROWN
  (optimised lower-relaxation slopes), which certifies many instances
  without any branching;
* **bound-ordered best-first BaB** — remaining sub-problems are explored
  best-first by their bound (most-violated first), with per-neuron split
  constraints tightening the child bounds (the role β plays in the original
  tool) and batched, cached LP resolution of fully-decided leaves.  The
  frontier loop runs on the shared
  :class:`~repro.engine.driver.FrontierDriver` over a thin heap work
  source: each round pops the top-``frontier_size`` most-violated
  sub-problems and bounds all of their children in one batched call (the
  original tool batches hundreds of domains per GPU pass the same way);
  ``frontier_size=1`` reproduces the sequential loop's verdicts and
  charges (one deferred-leaf-LP caveat in the terminal round when a leaf
  LP falsifies — see the engine's docstring).

Node-budget accounting: one α-CROWN evaluation internally performs several
bound computations (the SPSA iterations), so it is charged accordingly —
this mirrors the higher per-call cost of the original tool.
"""

from __future__ import annotations

import heapq
import itertools
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.bab.heuristics import BranchingContext, BranchingHeuristic, make_heuristic
from repro.bounds.alpha_crown import AlphaCrownConfig
from repro.bounds.cache import LpCache
from repro.bounds.splits import ReluSplit, SplitAssignment
from repro.engine.driver import DriverVerdict, FrontierDriver, \
    LinearWorkSource, Neuron
from repro.nn.network import Network
from repro.specs.properties import Specification
from repro.utils.timing import Budget
from repro.utils.validation import require
from repro.verifiers.appver import ApproximateVerifier, AppVerOutcome, CascadeConfig
from repro.verifiers.attack import AttackConfig, pgd_attack
from repro.verifiers.milp import (
    LEAF_FALSIFIED,
    LEAF_VERIFIED,
    classify_leaf_optimum,
    problem_fingerprint,
    solve_leaf_lp_batch,
)
from repro.verifiers.result import (
    CompletedRun,
    VerificationResult,
    VerificationStatus,
    Verifier,
    VerifierRun,
    make_budget,
)

#: A heap entry: (bound, tie-break counter, splits, outcome).
HeapEntry = Tuple[float, int, SplitAssignment, AppVerOutcome]


class HeapFrontierSource(LinearWorkSource):
    """A best-first (most-violated-bound) heap as a work source.

    Budget starvation pushes the popped entry straight back onto the heap
    (its bound key is unchanged), keeping the unresolved sub-problem alive;
    the TIMEOUT-not-VERIFIED invariants live in
    :class:`~repro.engine.driver.LinearWorkSource`.
    """

    def __init__(self, root_entry: HeapEntry, appver: ApproximateVerifier,
                 heuristic: BranchingHeuristic, spec: Specification,
                 budget: Budget, lp_cache: LpCache, lp_leaf_refinement: bool,
                 root_bound: float,
                 lp_fingerprint: Optional[str] = None) -> None:
        super().__init__(root_bound)
        self.heap: List[HeapEntry] = [root_entry]
        self.appver = appver
        self.heuristic = heuristic
        self.spec = spec
        self.budget = budget
        self.lp_cache = lp_cache
        self.lp_fingerprint = lp_fingerprint
        self.lp_leaf_refinement = lp_leaf_refinement
        self.counter = itertools.count(1)
        self.lp_leaves = 0

    # -- gathering -------------------------------------------------------------
    def has_work(self) -> bool:
        """Whether any unresolved sub-problem is still on the heap."""
        return bool(self.heap)

    def _pop(self) -> HeapEntry:
        """Pop the most-violated sub-problem."""
        return heapq.heappop(self.heap)

    def _reinsert(self, entry: HeapEntry) -> None:
        """Undo a pop: the entry's bound key makes it the next pop again."""
        heapq.heappush(self.heap, entry)

    def select_neuron(self, entry: HeapEntry) -> Optional[Neuron]:
        """Pick the entry's branching neuron (no look-ahead probing)."""
        _, _, splits, outcome = entry
        context = BranchingContext(network=self.appver.lowered,
                                   spec=self.spec.output_spec,
                                   report=outcome.report, splits=splits)
        return self.heuristic.select(context)

    def child_splits(self, entry: HeapEntry, neuron: Neuron,
                     phases: Sequence[int]) -> List[SplitAssignment]:
        """The children's split assignments for the chosen neuron."""
        splits = entry[2]
        return [splits.with_split(ReluSplit(neuron[0], neuron[1], phase))
                for phase in phases]

    def item_splits(self, entry: HeapEntry) -> SplitAssignment:
        """The entry's assignment — the parent identity of its children."""
        return entry[2]

    # -- batched exact leaf resolution -----------------------------------------
    def resolve_leaves(self, entries: List[HeapEntry]) -> Optional[DriverVerdict]:
        """Resolve decided leaves with one batched, cached leaf-LP call."""
        if not self.lp_leaf_refinement:
            self.has_unknown_leaf = True
            return None
        optima = solve_leaf_lp_batch(
            self.appver.lowered, self.spec.input_box, self.spec.output_spec,
            [(entry[2], entry[3].report) for entry in entries],
            cache=self.lp_cache, fingerprint=self.lp_fingerprint,
            timings=self.appver.timings)
        for optimum in optima:
            self.lp_leaves += 1
            verdict, counterexample = classify_leaf_optimum(optimum, self.spec,
                                                            self.appver.network)
            if verdict == LEAF_FALSIFIED:
                return DriverVerdict(VerificationStatus.FALSIFIED,
                                     counterexample=counterexample)
            if verdict != LEAF_VERIFIED:
                self.has_unknown_leaf = True
        return None

    # -- attachment ------------------------------------------------------------
    def attach(self, entry: HeapEntry, phase: int, splits: SplitAssignment,
               outcome: AppVerOutcome) -> Optional[DriverVerdict]:
        """Heap-push one bounded child unless its bound settles it."""
        if outcome.falsified:
            return DriverVerdict(VerificationStatus.FALSIFIED,
                                 counterexample=outcome.candidate,
                                 bound=outcome.p_hat)
        if outcome.verified or outcome.report.infeasible:
            return None
        heapq.heappush(self.heap, (outcome.p_hat, next(self.counter),
                                   splits, outcome))
        return None


class _AlphaBetaRun(VerifierRun):
    """A preemptible αβ-CROWN-style BaB run (stage 3 of ``start_run``)."""

    def __init__(self, verifier: "AlphaBetaCrownVerifier", budget: Budget,
                 lp_cache: LpCache, source: HeapFrontierSource,
                 driver: FrontierDriver,
                 sub_appver: ApproximateVerifier) -> None:
        self.verifier = verifier
        self.budget = budget
        self.lp_cache = lp_cache
        self.source = source
        self.driver = driver
        self.sub_appver = sub_appver
        self._run = driver.start(source, budget)

    def _finish(self, verdict: DriverVerdict) -> VerificationResult:
        return self.verifier._finish(
            verdict.status, self.budget, self.budget.nodes, self.lp_cache,
            counterexample=verdict.counterexample,
            bound=verdict.bound, lp_leaves=self.source.lp_leaves,
            appver=self.sub_appver,
            attached_by_stage=dict(self.driver.attached_by_stage))

    def step(self) -> Optional[VerificationResult]:
        """Advance one frontier round; the final result once decided."""
        verdict = self._run.step()
        if verdict is None:
            return None
        return self._finish(verdict)

    def interrupt(self) -> VerificationResult:
        """Stop early, reporting TIMEOUT with the best bound so far."""
        return self._finish(self.source.timeout())


class AlphaBetaCrownVerifier(Verifier):
    """Attack + α-CROWN root + bound-ordered best-first BaB.

    ``lp_cache`` optionally shares a leaf-LP cache across runs on the same
    verification problem (see :class:`~repro.bounds.cache.LpCache`).
    """

    name = "alpha-beta-CROWN"

    def __init__(self, heuristic: str = "deepsplit",
                 attack_config: Optional[AttackConfig] = None,
                 alpha_config: Optional[AlphaCrownConfig] = None,
                 lp_leaf_refinement: bool = True,
                 frontier_size: int = 1,
                 lp_cache: Optional[LpCache] = None,
                 incremental: bool = True,
                 cascade: Optional[CascadeConfig] = None) -> None:
        require(frontier_size >= 1, "frontier_size must be positive")
        self.heuristic_name = heuristic
        self.attack_config = attack_config or AttackConfig(steps=25, restarts=3)
        self.alpha_config = alpha_config or AlphaCrownConfig(iterations=6)
        self.lp_leaf_refinement = lp_leaf_refinement
        self.frontier_size = frontier_size
        self.lp_cache = lp_cache
        self.incremental = incremental
        self.cascade = cascade

    def verify(self, network: Network, spec: Specification,
               budget: Optional[Budget] = None) -> VerificationResult:
        """Attack, then α-CROWN root bound, then best-first engine BaB."""
        return self.start_run(network, spec, budget).run_to_completion()

    def start_run(self, network: Network, spec: Specification,
                  budget: Optional[Budget] = None) -> VerifierRun:
        """Run the attack and root-bound stages; return a resumable BaB run.

        The cheap pre-BaB stages (PGD attack, α-CROWN root bound) execute
        here, so an instance they settle comes back as a
        :class:`~repro.verifiers.result.CompletedRun`; otherwise the
        returned run is preemptible at frontier-round boundaries like the
        other engine-backed verifiers.
        """
        budget = make_budget(budget)
        heuristic = make_heuristic(self.heuristic_name)
        lp_cache = self.lp_cache if self.lp_cache is not None else LpCache()

        # Stage 1: adversarial attack (cheap falsification).
        attack = pgd_attack(network, spec, self.attack_config)
        budget.charge_node()  # the attack costs roughly one bound computation
        if attack.is_counterexample:
            return CompletedRun(self._finish(
                VerificationStatus.FALSIFIED, budget, 1, lp_cache,
                counterexample=attack.best_input,
                bound=attack.best_margin))

        # Stage 2: α-CROWN bound on the root problem.
        appver = ApproximateVerifier(network, spec, "alpha-crown",
                                     alpha_config=self.alpha_config)
        root_outcome = appver.evaluate()
        root_cost = 2 + 3 * self.alpha_config.iterations
        budget.charge_node(root_cost)
        if root_outcome.verified or root_outcome.report.infeasible:
            return CompletedRun(self._finish(
                VerificationStatus.VERIFIED, budget, budget.nodes,
                lp_cache, bound=root_outcome.p_hat))
        if root_outcome.falsified:
            return CompletedRun(self._finish(
                VerificationStatus.FALSIFIED, budget, budget.nodes,
                lp_cache, counterexample=root_outcome.candidate,
                bound=root_outcome.p_hat))

        # Stage 3: best-first BaB ordered by the bound (most violated first)
        # on the shared frontier engine, using the cheaper DeepPoly back-end
        # for sub-problems.
        sub_appver = ApproximateVerifier(network, spec, "deeppoly",
                                         incremental=self.incremental,
                                         cascade=self.cascade)
        root_entry: HeapEntry = (root_outcome.p_hat, 0,
                                 SplitAssignment.empty(), root_outcome)
        # Fingerprint-scoping only matters for an externally shared cache.
        lp_fingerprint = (problem_fingerprint(sub_appver.lowered, spec.input_box,
                                              spec.output_spec)
                          if self.lp_cache is not None else None)
        source = HeapFrontierSource(root_entry, sub_appver, heuristic, spec,
                                    budget, lp_cache, self.lp_leaf_refinement,
                                    root_outcome.p_hat,
                                    lp_fingerprint=lp_fingerprint)
        driver = FrontierDriver(sub_appver, self.frontier_size)
        return _AlphaBetaRun(self, budget, lp_cache, source, driver, sub_appver)

    # -- helpers ---------------------------------------------------------------
    def _finish(self, status: VerificationStatus, budget: Budget, nodes: int,
                lp_cache: LpCache,
                counterexample: Optional[np.ndarray] = None,
                bound: Optional[float] = None,
                lp_leaves: int = 0,
                appver: Optional[ApproximateVerifier] = None,
                attached_by_stage: Optional[dict] = None) -> VerificationResult:
        if appver is not None:
            cascade = appver.cascade_stats()
        else:  # pre-BaB exit: no sub-problem verifier was ever built
            cascade = {"enabled": self.cascade.enabled if self.cascade else False,
                       "children": 0, "decided": {}, "seen": {}, "seconds": {},
                       "pre_exact_fraction": 0.0}
        cascade["attached_by_stage"] = attached_by_stage or {}
        return VerificationResult(
            status=status,
            verifier=self.name,
            elapsed_seconds=budget.elapsed_seconds,
            nodes_explored=budget.nodes,
            tree_size=nodes,
            counterexample=counterexample,
            bound=bound,
            extras={"heuristic": self.heuristic_name,
                    "alpha_iterations": self.alpha_config.iterations,
                    "frontier_size": self.frontier_size,
                    "incremental": self.incremental,
                    "lp_leaves_resolved": lp_leaves,
                    "lp_cache": lp_cache.stats.as_dict(),
                    "cascade": cascade,
                    "timings": (appver.timings.as_dict() if appver is not None
                                else {})},
        )
