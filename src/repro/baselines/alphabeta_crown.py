"""An αβ-CROWN-like baseline verifier.

The paper compares ABONN against the αβ-CROWN tool, "the state-of-the-art
verification tool ... that features various sophisticated heuristics for
performance improvement".  The closed-source-free reproduction below keeps
the behaviours that matter for that comparison:

* **attack-first falsification** — a multi-restart PGD attack runs before
  any expensive bounding, so clearly-violated instances are dispatched
  immediately;
* **optimised root bounds** — the root sub-problem is bounded with α-CROWN
  (optimised lower-relaxation slopes), which certifies many instances
  without any branching;
* **bound-ordered best-first BaB** — remaining sub-problems are explored
  best-first by their bound (most-violated first), with per-neuron split
  constraints tightening the child bounds (the role β plays in the original
  tool) and LP resolution of fully-decided leaves.

Node-budget accounting: one α-CROWN evaluation internally performs several
bound computations (the SPSA iterations), so it is charged accordingly —
this mirrors the higher per-call cost of the original tool.
"""

from __future__ import annotations

import heapq
import itertools
from typing import List, Optional, Tuple

import numpy as np

from repro.bab.heuristics import BranchingContext, make_heuristic
from repro.bounds.alpha_crown import AlphaCrownConfig
from repro.bounds.splits import ReluSplit, SplitAssignment
from repro.nn.network import Network
from repro.specs.properties import Specification
from repro.utils.timing import Budget
from repro.verifiers.appver import (
    ApproximateVerifier,
    AppVerOutcome,
    affordable_phases,
)
from repro.verifiers.attack import AttackConfig, pgd_attack
from repro.verifiers.milp import solve_leaf_lp
from repro.verifiers.result import (
    VerificationResult,
    VerificationStatus,
    Verifier,
    make_budget,
)


class AlphaBetaCrownVerifier(Verifier):
    """Attack + α-CROWN root + bound-ordered best-first BaB."""

    name = "alpha-beta-CROWN"

    def __init__(self, heuristic: str = "deepsplit",
                 attack_config: Optional[AttackConfig] = None,
                 alpha_config: Optional[AlphaCrownConfig] = None,
                 lp_leaf_refinement: bool = True) -> None:
        self.heuristic_name = heuristic
        self.attack_config = attack_config or AttackConfig(steps=25, restarts=3)
        self.alpha_config = alpha_config or AlphaCrownConfig(iterations=6)
        self.lp_leaf_refinement = lp_leaf_refinement

    def verify(self, network: Network, spec: Specification,
               budget: Optional[Budget] = None) -> VerificationResult:
        budget = make_budget(budget)
        heuristic = make_heuristic(self.heuristic_name)

        # Stage 1: adversarial attack (cheap falsification).
        attack = pgd_attack(network, spec, self.attack_config)
        budget.charge_node()  # the attack costs roughly one bound computation
        if attack.is_counterexample:
            return self._finish(VerificationStatus.FALSIFIED, budget, 1,
                                counterexample=attack.best_input,
                                bound=attack.best_margin)

        # Stage 2: α-CROWN bound on the root problem.
        appver = ApproximateVerifier(network, spec, "alpha-crown",
                                     alpha_config=self.alpha_config)
        root_outcome = appver.evaluate()
        root_cost = 2 + 3 * self.alpha_config.iterations
        budget.charge_node(root_cost)
        if root_outcome.verified or root_outcome.report.infeasible:
            return self._finish(VerificationStatus.VERIFIED, budget, budget.nodes,
                                bound=root_outcome.p_hat)
        if root_outcome.falsified:
            return self._finish(VerificationStatus.FALSIFIED, budget, budget.nodes,
                                counterexample=root_outcome.candidate,
                                bound=root_outcome.p_hat)

        # Stage 3: best-first BaB ordered by the bound (most violated first),
        # using the cheaper DeepPoly back-end for sub-problems.
        sub_appver = ApproximateVerifier(network, spec, "deeppoly")
        counter = itertools.count()
        heap: List[Tuple[float, int, SplitAssignment, AppVerOutcome]] = []
        heapq.heappush(heap, (root_outcome.p_hat, next(counter),
                              SplitAssignment.empty(), root_outcome))
        has_unknown_leaf = False

        while heap:
            if budget.exhausted():
                return self._finish(VerificationStatus.TIMEOUT, budget, budget.nodes,
                                    bound=root_outcome.p_hat)
            _, _, splits, outcome = heapq.heappop(heap)
            context = BranchingContext(network=sub_appver.lowered, spec=spec.output_spec,
                                       report=outcome.report, splits=splits)
            neuron = heuristic.select(context)
            if neuron is None:
                budget.charge_node()  # the leaf LP costs about one bound computation
                verdict, counterexample = self._resolve_leaf(sub_appver, spec, splits,
                                                             outcome)
                if counterexample is not None:
                    return self._finish(VerificationStatus.FALSIFIED, budget,
                                        budget.nodes, counterexample=counterexample)
                if verdict is None:
                    has_unknown_leaf = True
                continue
            phases = affordable_phases(budget)
            if not phases:
                return self._finish(VerificationStatus.TIMEOUT, budget, budget.nodes,
                                    bound=root_outcome.p_hat)
            truncated = len(phases) < 2
            children = [splits.with_split(ReluSplit(neuron[0], neuron[1], phase))
                        for phase in phases]
            # One batched AppVer call bounds both phase-split children together.
            child_outcomes = sub_appver.evaluate_batch(children)
            for position, (child_splits, child_outcome) in enumerate(zip(children,
                                                                         child_outcomes)):
                if position and budget.exhausted():
                    return self._finish(VerificationStatus.TIMEOUT, budget,
                                        budget.nodes, bound=root_outcome.p_hat)
                budget.charge_node()
                if child_outcome.falsified:
                    return self._finish(VerificationStatus.FALSIFIED, budget,
                                        budget.nodes,
                                        counterexample=child_outcome.candidate,
                                        bound=child_outcome.p_hat)
                if child_outcome.verified or child_outcome.report.infeasible:
                    continue
                heapq.heappush(heap, (child_outcome.p_hat, next(counter),
                                      child_splits, child_outcome))
            if truncated:
                return self._finish(VerificationStatus.TIMEOUT, budget, budget.nodes,
                                    bound=root_outcome.p_hat)

        status = (VerificationStatus.UNKNOWN if has_unknown_leaf
                  else VerificationStatus.VERIFIED)
        return self._finish(status, budget, budget.nodes)

    # -- helpers ---------------------------------------------------------------
    def _resolve_leaf(self, appver: ApproximateVerifier, spec: Specification,
                      splits: SplitAssignment, outcome: AppVerOutcome):
        """Resolve a fully-decided leaf; returns (verdict, counterexample)."""
        if not self.lp_leaf_refinement:
            return None, None
        optimum = solve_leaf_lp(appver.lowered, spec.input_box, spec.output_spec,
                                splits, outcome.report)
        if not optimum.feasible or optimum.value >= 0.0:
            return True, None
        if optimum.minimizer is None:  # pragma: no cover - solver failure
            return None, None
        point = spec.input_box.clip(optimum.minimizer)
        if spec.is_counterexample(appver.network, point):
            return False, point
        return None, None

    def _finish(self, status: VerificationStatus, budget: Budget, nodes: int,
                counterexample: Optional[np.ndarray] = None,
                bound: Optional[float] = None) -> VerificationResult:
        return VerificationResult(
            status=status,
            verifier=self.name,
            elapsed_seconds=budget.elapsed_seconds,
            nodes_explored=budget.nodes,
            tree_size=nodes,
            counterexample=counterexample,
            bound=bound,
            extras={"heuristic": self.heuristic_name,
                    "alpha_iterations": self.alpha_config.iterations},
        )
