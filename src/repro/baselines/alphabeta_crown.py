"""An αβ-CROWN-like baseline verifier.

The paper compares ABONN against the αβ-CROWN tool, "the state-of-the-art
verification tool ... that features various sophisticated heuristics for
performance improvement".  The closed-source-free reproduction below keeps
the behaviours that matter for that comparison:

* **attack-first falsification** — a multi-restart PGD attack runs before
  any expensive bounding, so clearly-violated instances are dispatched
  immediately;
* **optimised root bounds** — the root sub-problem is bounded with α-CROWN
  (optimised lower-relaxation slopes), which certifies many instances
  without any branching;
* **bound-ordered best-first BaB** — remaining sub-problems are explored
  best-first by their bound (most-violated first), with per-neuron split
  constraints tightening the child bounds (the role β plays in the original
  tool) and LP resolution of fully-decided leaves.  ``frontier_size`` pops
  the top-``K`` most-violated sub-problems per round and bounds all of
  their children through one batched AppVer call (the original tool batches
  hundreds of domains per GPU pass the same way); ``K=1`` is exactly the
  sequential loop.

Node-budget accounting: one α-CROWN evaluation internally performs several
bound computations (the SPSA iterations), so it is charged accordingly —
this mirrors the higher per-call cost of the original tool.
"""

from __future__ import annotations

import heapq
import itertools
from typing import List, Optional, Tuple

import numpy as np

from repro.bab.heuristics import BranchingContext, make_heuristic
from repro.bounds.alpha_crown import AlphaCrownConfig
from repro.bounds.splits import ReluSplit, SplitAssignment
from repro.nn.network import Network
from repro.specs.properties import Specification
from repro.utils.timing import Budget
from repro.verifiers.appver import (
    ApproximateVerifier,
    AppVerOutcome,
    affordable_phases,
)
from repro.verifiers.attack import AttackConfig, pgd_attack
from repro.utils.validation import require
from repro.verifiers.milp import solve_leaf_lp
from repro.verifiers.result import (
    VerificationResult,
    VerificationStatus,
    Verifier,
    make_budget,
)


class AlphaBetaCrownVerifier(Verifier):
    """Attack + α-CROWN root + bound-ordered best-first BaB."""

    name = "alpha-beta-CROWN"

    def __init__(self, heuristic: str = "deepsplit",
                 attack_config: Optional[AttackConfig] = None,
                 alpha_config: Optional[AlphaCrownConfig] = None,
                 lp_leaf_refinement: bool = True,
                 frontier_size: int = 1) -> None:
        require(frontier_size >= 1, "frontier_size must be positive")
        self.heuristic_name = heuristic
        self.attack_config = attack_config or AttackConfig(steps=25, restarts=3)
        self.alpha_config = alpha_config or AlphaCrownConfig(iterations=6)
        self.lp_leaf_refinement = lp_leaf_refinement
        self.frontier_size = frontier_size

    def verify(self, network: Network, spec: Specification,
               budget: Optional[Budget] = None) -> VerificationResult:
        budget = make_budget(budget)
        heuristic = make_heuristic(self.heuristic_name)

        # Stage 1: adversarial attack (cheap falsification).
        attack = pgd_attack(network, spec, self.attack_config)
        budget.charge_node()  # the attack costs roughly one bound computation
        if attack.is_counterexample:
            return self._finish(VerificationStatus.FALSIFIED, budget, 1,
                                counterexample=attack.best_input,
                                bound=attack.best_margin)

        # Stage 2: α-CROWN bound on the root problem.
        appver = ApproximateVerifier(network, spec, "alpha-crown",
                                     alpha_config=self.alpha_config)
        root_outcome = appver.evaluate()
        root_cost = 2 + 3 * self.alpha_config.iterations
        budget.charge_node(root_cost)
        if root_outcome.verified or root_outcome.report.infeasible:
            return self._finish(VerificationStatus.VERIFIED, budget, budget.nodes,
                                bound=root_outcome.p_hat)
        if root_outcome.falsified:
            return self._finish(VerificationStatus.FALSIFIED, budget, budget.nodes,
                                counterexample=root_outcome.candidate,
                                bound=root_outcome.p_hat)

        # Stage 3: best-first BaB ordered by the bound (most violated first),
        # using the cheaper DeepPoly back-end for sub-problems.
        sub_appver = ApproximateVerifier(network, spec, "deeppoly")
        counter = itertools.count()
        heap: List[Tuple[float, int, SplitAssignment, AppVerOutcome]] = []
        heapq.heappush(heap, (root_outcome.p_hat, next(counter),
                              SplitAssignment.empty(), root_outcome))
        has_unknown_leaf = False

        while heap:
            if budget.exhausted():
                return self._finish(VerificationStatus.TIMEOUT, budget, budget.nodes,
                                    bound=root_outcome.p_hat)
            # Gather the top-``frontier_size`` most-violated sub-problems;
            # fully-decided leaves are resolved exactly as they pop.
            batch = []  # (splits, phases, child splits)
            planned = 0
            truncated = False
            while heap and len(batch) < self.frontier_size and not truncated:
                if budget.exhausted():
                    if batch:
                        break  # charge the gathered batch; TIMEOUT surfaces next round
                    return self._finish(VerificationStatus.TIMEOUT, budget,
                                        budget.nodes, bound=root_outcome.p_hat)
                entry = heapq.heappop(heap)
                _, _, splits, outcome = entry
                context = BranchingContext(network=sub_appver.lowered,
                                           spec=spec.output_spec,
                                           report=outcome.report, splits=splits)
                neuron = heuristic.select(context)
                if neuron is None:
                    budget.charge_node()  # the leaf LP costs about one bound computation
                    verdict, counterexample = self._resolve_leaf(sub_appver, spec,
                                                                 splits, outcome)
                    if counterexample is not None:
                        return self._finish(VerificationStatus.FALSIFIED, budget,
                                            budget.nodes, counterexample=counterexample)
                    if verdict is None:
                        has_unknown_leaf = True
                    continue
                phases = affordable_phases(budget, planned)
                if not phases:
                    if not batch:
                        return self._finish(VerificationStatus.TIMEOUT, budget,
                                            budget.nodes, bound=root_outcome.p_hat)
                    # No budget left for this sub-problem's children: push it
                    # back.  The unresolved sub-problem keeps the heap
                    # non-empty so exhaustion surfaces as TIMEOUT — never as
                    # a spurious VERIFIED from an emptied heap.
                    heapq.heappush(heap, entry)
                    break
                truncated = len(phases) < 2
                batch.append((splits, phases,
                              [splits.with_split(ReluSplit(neuron[0], neuron[1], phase))
                               for phase in phases]))
                planned += len(phases)
            if not batch:
                continue  # this round only resolved leaves

            # One batched AppVer call bounds the children of the whole frontier.
            flat_splits = [child for _, _, children in batch for child in children]
            child_outcomes = sub_appver.evaluate_batch(flat_splits)
            position = 0
            first_child = True
            for _, phases, children in batch:
                for offset, child_splits in enumerate(children):
                    if not first_child and budget.exhausted():
                        return self._finish(VerificationStatus.TIMEOUT, budget,
                                            budget.nodes, bound=root_outcome.p_hat)
                    child_outcome = child_outcomes[position + offset]
                    budget.charge_node()
                    first_child = False
                    if child_outcome.falsified:
                        return self._finish(VerificationStatus.FALSIFIED, budget,
                                            budget.nodes,
                                            counterexample=child_outcome.candidate,
                                            bound=child_outcome.p_hat)
                    if child_outcome.verified or child_outcome.report.infeasible:
                        continue
                    heapq.heappush(heap, (child_outcome.p_hat, next(counter),
                                          child_splits, child_outcome))
                position += len(children)
            if truncated:
                return self._finish(VerificationStatus.TIMEOUT, budget, budget.nodes,
                                    bound=root_outcome.p_hat)

        status = (VerificationStatus.UNKNOWN if has_unknown_leaf
                  else VerificationStatus.VERIFIED)
        return self._finish(status, budget, budget.nodes)

    # -- helpers ---------------------------------------------------------------
    def _resolve_leaf(self, appver: ApproximateVerifier, spec: Specification,
                      splits: SplitAssignment, outcome: AppVerOutcome):
        """Resolve a fully-decided leaf; returns (verdict, counterexample)."""
        if not self.lp_leaf_refinement:
            return None, None
        optimum = solve_leaf_lp(appver.lowered, spec.input_box, spec.output_spec,
                                splits, outcome.report)
        if not optimum.feasible or optimum.value >= 0.0:
            return True, None
        if optimum.minimizer is None:  # pragma: no cover - solver failure
            return None, None
        point = spec.input_box.clip(optimum.minimizer)
        if spec.is_counterexample(appver.network, point):
            return False, point
        return None, None

    def _finish(self, status: VerificationStatus, budget: Budget, nodes: int,
                counterexample: Optional[np.ndarray] = None,
                bound: Optional[float] = None) -> VerificationResult:
        return VerificationResult(
            status=status,
            verifier=self.name,
            elapsed_seconds=budget.elapsed_seconds,
            nodes_explored=budget.nodes,
            tree_size=nodes,
            counterexample=counterexample,
            bound=bound,
            extras={"heuristic": self.heuristic_name,
                    "alpha_iterations": self.alpha_config.iterations,
                    "frontier_size": self.frontier_size},
        )
