"""Shared utilities: deterministic RNG handling, timing, and validation helpers."""

from repro.utils.rng import as_rng, spawn_rng
from repro.utils.timing import Stopwatch, Budget
from repro.utils.validation import (
    require,
    require_finite_array,
    require_shape,
)

__all__ = [
    "as_rng",
    "spawn_rng",
    "Stopwatch",
    "Budget",
    "require",
    "require_finite_array",
    "require_shape",
]
