"""Small argument-validation helpers used across the library."""

from __future__ import annotations

from typing import Sequence

import numpy as np


def require(condition: bool, message: str) -> None:
    """Raise ``ValueError(message)`` unless ``condition`` holds."""
    if not condition:
        raise ValueError(message)


def require_finite_array(array: np.ndarray, name: str) -> np.ndarray:
    """Return ``array`` as float ndarray, raising if it contains NaN/inf."""
    out = np.asarray(array, dtype=float)
    if not np.all(np.isfinite(out)):
        raise ValueError(f"{name} must contain only finite values")
    return out


def require_shape(array: np.ndarray, shape: Sequence[int], name: str) -> np.ndarray:
    """Return ``array`` checked against an exact shape."""
    out = np.asarray(array)
    if tuple(out.shape) != tuple(shape):
        raise ValueError(f"{name} must have shape {tuple(shape)}, got {out.shape}")
    return out
