"""Deterministic random-number-generator helpers.

Every stochastic component in the library (dataset generation, weight
initialisation, PGD restarts, SPSA perturbations) takes either an integer
seed or a :class:`numpy.random.Generator`.  These helpers normalise both
forms so experiments are reproducible end to end.
"""

from __future__ import annotations

import zlib
from typing import Optional, Union

import numpy as np

SeedLike = Union[int, np.random.Generator, None]


def as_rng(seed: SeedLike = None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for ``seed``.

    ``None`` produces a default-seeded generator (seed 0) so that library
    behaviour is deterministic unless the caller opts into a specific seed.
    An existing generator is passed through unchanged.
    """
    if isinstance(seed, np.random.Generator):
        return seed
    if seed is None:
        return np.random.default_rng(0)
    return np.random.default_rng(int(seed))


def spawn_rng(rng: np.random.Generator, count: int) -> list[np.random.Generator]:
    """Split ``rng`` into ``count`` independent child generators."""
    if count < 0:
        raise ValueError(f"count must be non-negative, got {count}")
    seeds = rng.integers(0, 2**63 - 1, size=count, dtype=np.int64)
    return [np.random.default_rng(int(s)) for s in seeds]


def derive_seed(base_seed: int, *components: Union[int, str]) -> int:
    """Derive a deterministic child seed from a base seed and components.

    Used by the benchmark suite generator so that every instance has a seed
    that depends only on its identity, not on generation order or on the
    process' hash randomisation (strings are hashed with CRC32).
    """
    mix = int(base_seed) & 0xFFFFFFFFFFFFFFFF
    for component in components:
        if isinstance(component, str):
            value = zlib.crc32(component.encode("utf-8"))
        else:
            value = int(component) & 0xFFFFFFFFFFFFFFFF
        mix = (mix * 6364136223846793005 + value + 1442695040888963407) & 0xFFFFFFFFFFFFFFFF
    return int(mix % (2**31 - 1))


_UNSET: Optional[object] = None
