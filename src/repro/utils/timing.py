"""Timing primitives: stopwatch, phase timings, and combined budgets.

The paper terminates each verification run after a 1000 s wall-clock budget.
In this reproduction we support both wall-clock budgets and *node* budgets
(the number of AppVer calls), because node budgets make benchmark results
machine-independent and keep the benchmark harness fast.

:class:`PhaseTimings` additionally gives the bound/LP hot path a cheap
per-phase breakdown (``substitute``, ``correct``, ``concretize``, ``lp``)
that the verifiers surface in ``extras["timings"]`` — so perf work can see
*where* per-child bound time goes instead of only its total.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, Iterator, Optional


class Stopwatch:
    """A simple restartable stopwatch measuring wall-clock seconds."""

    def __init__(self) -> None:
        self._start: Optional[float] = None
        self._elapsed = 0.0
        self._started = False

    def start(self) -> "Stopwatch":
        if self._start is None:
            self._start = time.perf_counter()
            self._started = True
        return self

    def stop(self) -> float:
        if self._start is not None:
            self._elapsed += time.perf_counter() - self._start
            self._start = None
        return self._elapsed

    def reset(self) -> None:
        self._start = None
        self._elapsed = 0.0
        self._started = False

    @property
    def started(self) -> bool:
        """Whether the stopwatch has ever been started since creation/reset."""
        return self._started

    @property
    def elapsed(self) -> float:
        """Elapsed seconds, including the currently running span."""
        running = 0.0
        if self._start is not None:
            running = time.perf_counter() - self._start
        return self._elapsed + running

    def __enter__(self) -> "Stopwatch":
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.stop()


class PhaseTimings:
    """Cumulative wall-clock seconds (and call counts) per named phase.

    The bound analysers record their backward-substitution time under
    ``"substitute"``, the incremental rank-1 split corrections under
    ``"correct"`` and the box concretisations under ``"concretize"``; the
    leaf-LP solver records under ``"lp"``.  One instance lives on each
    :class:`~repro.verifiers.appver.ApproximateVerifier` and is exposed by
    the verifiers as ``extras["timings"]``.  Recording costs two
    ``perf_counter`` calls per measured block, so it is safe to leave on in
    the hot path.
    """

    def __init__(self) -> None:
        self._seconds: Dict[str, float] = {}
        self._counts: Dict[str, int] = {}

    def record(self, phase: str, seconds: float, count: int = 1) -> None:
        """Add ``seconds`` (and ``count`` occurrences) to a phase."""
        self._seconds[phase] = self._seconds.get(phase, 0.0) + float(seconds)
        self._counts[phase] = self._counts.get(phase, 0) + int(count)

    @contextmanager
    def measure(self, phase: str) -> Iterator[None]:
        """Context manager timing one block into ``phase``."""
        start = time.perf_counter()
        try:
            yield
        finally:
            self.record(phase, time.perf_counter() - start)

    def seconds(self, phase: str) -> float:
        """Total seconds recorded for a phase (0.0 when never recorded)."""
        return self._seconds.get(phase, 0.0)

    def as_dict(self) -> dict:
        """``{phase: {"seconds": ..., "count": ...}}`` for every phase."""
        return {phase: {"seconds": self._seconds[phase],
                        "count": self._counts.get(phase, 0)}
                for phase in sorted(self._seconds)}

    def clear(self) -> None:
        """Drop all recorded phases."""
        self._seconds.clear()
        self._counts.clear()


@dataclass
class Budget:
    """A combined wall-clock-seconds and node-count budget.

    ``max_seconds=None`` or ``max_nodes=None`` disables the respective limit.
    ``nodes`` counts the number of AppVer (bound computation) calls charged
    via :meth:`charge_node`.

    The wall clock **auto-starts** on the first call to :meth:`exhausted` or
    read of :attr:`elapsed_seconds`: a budget handed to a consumer that never
    calls :meth:`start` still enforces ``max_seconds`` (previously the limit
    was silently a no-op — the unstarted stopwatch reported 0 s forever).
    :meth:`start` remains the explicit way to pin the measurement origin.
    """

    max_seconds: Optional[float] = None
    max_nodes: Optional[int] = None
    nodes: int = 0
    _watch: Stopwatch = field(default_factory=Stopwatch, repr=False)

    def start(self) -> "Budget":
        self._watch.start()
        return self

    def charge_node(self, count: int = 1) -> None:
        """Charge ``count`` bound-computation calls against the budget."""
        if count < 0:
            raise ValueError(f"count must be non-negative, got {count}")
        self.nodes += count

    @property
    def elapsed_seconds(self) -> float:
        """Wall-clock seconds consumed; starts the clock on first read."""
        if not self._watch.started:
            self._watch.start()
        return self._watch.elapsed

    def exhausted(self) -> bool:
        """Return True when either limit has been reached."""
        if self.max_seconds is not None and self.elapsed_seconds >= self.max_seconds:
            return True
        if self.max_nodes is not None and self.nodes >= self.max_nodes:
            return True
        return False

    def remaining_nodes(self) -> Optional[int]:
        if self.max_nodes is None:
            return None
        return max(0, self.max_nodes - self.nodes)

    def copy(self) -> "Budget":
        """Return a fresh, unstarted budget with the same limits."""
        return Budget(max_seconds=self.max_seconds, max_nodes=self.max_nodes)
