"""Adversarial-attack substrate: FGSM and multi-restart PGD falsification.

Attacks search for concrete counterexamples by minimising the specification
margin with (signed) gradient steps projected onto the input box.  They play
two roles in the library, mirroring how the paper's baselines use them:

* quick falsification before/while running expensive branch and bound
  (used by the αβ-CROWN-like baseline);
* validation or sharpening of the counterexample candidates returned by the
  bound-propagation verifiers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from repro.nn.network import Network
from repro.specs.properties import InputBox, LinearOutputSpec, Specification
from repro.utils.rng import SeedLike, as_rng
from repro.utils.validation import require


@dataclass(frozen=True)
class AttackConfig:
    """Hyperparameters of the PGD attack."""

    steps: int = 30
    restarts: int = 3
    step_fraction: float = 0.15  # step size as a fraction of the box radius
    seed: int = 0

    def __post_init__(self) -> None:
        require(self.steps >= 1, "steps must be positive")
        require(self.restarts >= 1, "restarts must be positive")
        require(self.step_fraction > 0, "step_fraction must be positive")


@dataclass
class AttackResult:
    """Best input found by an attack and its specification margin."""

    best_input: np.ndarray
    best_margin: float
    iterations: int

    @property
    def is_counterexample(self) -> bool:
        """Whether the best input violates the specification (margin < 0)."""
        return self.best_margin < 0.0


def margin_and_gradient(network: Network, spec: LinearOutputSpec,
                        point: np.ndarray) -> Tuple[float, np.ndarray]:
    """Specification margin at ``point`` and its gradient w.r.t. the input.

    The margin is ``min_i (C_i @ f(x) + d_i)``; its gradient is the gradient
    of the active (minimal) row, obtained with one backward pass.
    """
    point = np.asarray(point, dtype=float).reshape(1, -1)
    output = network.forward(point)[0]
    values = spec.constraint_values(output)
    worst_row = int(np.argmin(values))
    grad_output = np.zeros((1, spec.output_dim))
    grad_output[0] = spec.coefficients[worst_row]
    grad_input = network.backward(grad_output).reshape(-1)
    return float(values[worst_row]), grad_input


def fgsm(network: Network, spec: Specification,
         start: Optional[np.ndarray] = None) -> AttackResult:
    """Single signed-gradient step from the box centre (or ``start``)."""
    box = spec.input_box
    point = box.center if start is None else box.clip(start)
    margin, gradient = margin_and_gradient(network, spec.output_spec, point)
    stepped = box.clip(point - np.sign(gradient) * (box.upper - box.lower))
    stepped_margin, _ = margin_and_gradient(network, spec.output_spec, stepped)
    if stepped_margin < margin:
        return AttackResult(stepped, stepped_margin, 1)
    return AttackResult(point, margin, 1)


def pgd_attack(network: Network, spec: Specification,
               config: Optional[AttackConfig] = None,
               start: Optional[np.ndarray] = None,
               rng: SeedLike = None) -> AttackResult:
    """Multi-restart projected gradient descent on the specification margin.

    Returns the input with the lowest margin found; a negative margin means
    a real counterexample (the returned point is always inside the box).
    """
    config = config or AttackConfig()
    rng = as_rng(config.seed if rng is None else rng)
    box = spec.input_box
    step = config.step_fraction * np.maximum(box.upper - box.lower, 1e-12)

    best_point = box.center
    best_margin, _ = margin_and_gradient(network, spec.output_spec, best_point)
    iterations = 0

    starts = []
    if start is not None:
        starts.append(box.clip(start))
    starts.append(box.center)
    while len(starts) < config.restarts:
        starts.append(box.sample(rng, 1)[0])

    for start_point in starts[:config.restarts]:
        point = start_point.copy()
        for _ in range(config.steps):
            margin, gradient = margin_and_gradient(network, spec.output_spec, point)
            iterations += 1
            if margin < best_margin:
                best_margin, best_point = margin, point.copy()
            if margin < 0.0:
                return AttackResult(point.copy(), margin, iterations)
            point = box.clip(point - step * np.sign(gradient))
        margin, _ = margin_and_gradient(network, spec.output_spec, point)
        iterations += 1
        if margin < best_margin:
            best_margin, best_point = margin, point.copy()
        if best_margin < 0.0:
            break
    return AttackResult(best_point, best_margin, iterations)


def empirical_robustness_radius(network: Network, reference: np.ndarray, label: int,
                                num_classes: int, upper: float = 0.5,
                                tolerance: float = 1e-3,
                                config: Optional[AttackConfig] = None) -> float:
    """Binary-search the smallest ε at which PGD finds an adversarial example.

    Used by the benchmark-suite generator to place instance perturbation radii
    in the interesting regime between "trivially certified" and "trivially
    falsified".
    """
    from repro.specs.robustness import local_robustness_spec

    low, high = 0.0, float(upper)
    spec_high = local_robustness_spec(reference, high, label, num_classes)
    if not pgd_attack(network, spec_high, config).is_counterexample:
        return high
    while high - low > tolerance:
        mid = 0.5 * (low + high)
        spec = local_robustness_spec(reference, mid, label, num_classes)
        if pgd_attack(network, spec, config).is_counterexample:
            high = mid
        else:
            low = mid
    return high
