"""Verification front-ends: AppVer, attacks, MILP/LP backends, result types."""

from repro.verifiers.appver import (
    BOUND_METHODS,
    AppVerOutcome,
    ApproximateVerifier,
    CascadeConfig,
)
from repro.verifiers.attack import (
    AttackConfig,
    AttackResult,
    empirical_robustness_radius,
    fgsm,
    margin_and_gradient,
    pgd_attack,
)
from repro.verifiers.milp import (
    MilpVerifier,
    RowOptimum,
    solve_leaf_lp,
    solve_leaf_lp_batch,
)
from repro.verifiers.result import (
    VerificationResult,
    VerificationStatus,
    Verifier,
    make_budget,
)

__all__ = [
    "BOUND_METHODS",
    "AppVerOutcome",
    "ApproximateVerifier",
    "CascadeConfig",
    "AttackConfig",
    "AttackResult",
    "empirical_robustness_radius",
    "fgsm",
    "margin_and_gradient",
    "pgd_attack",
    "MilpVerifier",
    "RowOptimum",
    "solve_leaf_lp",
    "solve_leaf_lp_batch",
    "VerificationResult",
    "VerificationStatus",
    "Verifier",
    "make_budget",
]
