"""Verification verdicts, results and the common verifier interface."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, Optional

import numpy as np

from repro.nn.network import Network
from repro.specs.properties import Specification
from repro.utils.timing import Budget


class VerificationStatus(enum.Enum):
    """Outcome of a verification run (the paper's ``{true, false, timeout}``)."""

    VERIFIED = "verified"      # the specification holds on the whole input box
    FALSIFIED = "falsified"    # a real counterexample was found
    TIMEOUT = "timeout"        # the budget ran out before a conclusion
    UNKNOWN = "unknown"        # the verifier gave up for another reason

    @property
    def is_conclusive(self) -> bool:
        """Whether this status settles the problem (verified or falsified)."""
        return self in (VerificationStatus.VERIFIED, VerificationStatus.FALSIFIED)


@dataclass
class VerificationResult:
    """The outcome of one verifier run on one verification problem."""

    status: VerificationStatus
    verifier: str
    elapsed_seconds: float = 0.0
    #: Number of AppVer (bound computation) calls, i.e. visited sub-problems.
    nodes_explored: int = 0
    #: Total number of nodes in the final BaB tree (including the root).
    tree_size: int = 1
    counterexample: Optional[np.ndarray] = None
    #: Best (largest) specification-margin lower bound established, if any.
    bound: Optional[float] = None
    extras: Dict[str, object] = field(default_factory=dict)

    @property
    def solved(self) -> bool:
        """True when the verifier reached a conclusive verdict."""
        return self.status.is_conclusive

    def check_counterexample(self, network: Network, spec: Specification) -> bool:
        """Validate that a reported counterexample really violates the spec."""
        if self.counterexample is None:
            return False
        return spec.is_counterexample(network, self.counterexample)

    def summary(self) -> str:
        """One human-readable line: verifier, verdict, time, nodes, bound."""
        parts = [f"{self.verifier}: {self.status.value}",
                 f"time={self.elapsed_seconds:.3f}s",
                 f"nodes={self.nodes_explored}"]
        if self.bound is not None:
            parts.append(f"bound={self.bound:.4f}")
        return ", ".join(parts)


class VerifierRun:
    """A resumable verification run, preemptible at round boundaries.

    The verification service multiplexes many jobs over one process by
    advancing each job's run a few :class:`~repro.engine.driver.FrontierDriver`
    rounds at a time.  A run's contract:

    * :meth:`step` executes at most one unit of work (one driver round for
      the engine-backed verifiers) and returns the final
      :class:`VerificationResult` once the run finished, ``None`` while more
      work remains.  Stepping a run to completion produces exactly the
      result one uninterrupted ``verify`` call would.
    * :meth:`interrupt` finishes the run early with the verifier's budget-
      exhaustion result (a TIMEOUT), or returns ``None`` when the run
      cannot be interrupted (monolithic fallback runs); the deadline
      enforcement of the service is built on it.
    """

    def step(self) -> Optional[VerificationResult]:
        """Advance one round; the final result once finished, else ``None``."""
        raise NotImplementedError

    def interrupt(self) -> Optional[VerificationResult]:
        """Finish early with a TIMEOUT result (``None`` if unsupported)."""
        return None

    def run_to_completion(self) -> VerificationResult:
        """Step until the run finishes and return its result."""
        while True:
            result = self.step()
            if result is not None:
                return result


class CompletedRun(VerifierRun):
    """A run that settled during setup (e.g. the root bound decided it)."""

    def __init__(self, result: VerificationResult) -> None:
        self.result = result

    def step(self) -> VerificationResult:
        """Return the precomputed result."""
        return self.result

    def interrupt(self) -> VerificationResult:
        """The run is already finished; interrupting changes nothing."""
        return self.result


class MonolithicRun(VerifierRun):
    """Fallback run for verifiers without a resumable ``start_run``.

    The whole ``verify`` call executes inside the first :meth:`step`, so the
    job occupies its worker for one indivisible slice; :meth:`interrupt`
    stays unsupported (returns ``None``) before that slice completes.
    """

    def __init__(self, verifier: "Verifier", network: Network,
                 spec: Specification, budget: Optional[Budget] = None) -> None:
        self.verifier = verifier
        self.network = network
        self.spec = spec
        self.budget = budget
        self._result: Optional[VerificationResult] = None

    def step(self) -> VerificationResult:
        """Run ``verify`` to completion (first call) and return its result."""
        if self._result is None:
            self._result = self.verifier.verify(self.network, self.spec,
                                                self.budget)
        return self._result

    def interrupt(self) -> Optional[VerificationResult]:
        """Only an already-finished monolithic run can be 'interrupted'."""
        return self._result


class Verifier:
    """Common interface of every complete verifier in the library."""

    #: Human-readable name used in result tables.
    name: str = "verifier"

    def verify(self, network: Network, spec: Specification,
               budget: Optional[Budget] = None) -> VerificationResult:
        """Decide whether ``network`` satisfies ``spec`` within ``budget``."""
        raise NotImplementedError

    def start_run(self, network: Network, spec: Specification,
                  budget: Optional[Budget] = None) -> VerifierRun:
        """Begin a (possibly resumable) verification run.

        The engine-backed verifiers override this with a run that is
        preemptible at :class:`~repro.engine.driver.FrontierDriver` round
        boundaries; the default wraps :meth:`verify` in a
        :class:`MonolithicRun` so every verifier can serve as a job backend
        of the verification service.
        """
        return MonolithicRun(self, network, spec, budget)

    def __repr__(self) -> str:
        return f"{type(self).__name__}(name={self.name!r})"


def make_budget(budget: Optional[Budget], default_nodes: int = 2000,
                default_seconds: Optional[float] = None) -> Budget:
    """Return a started copy of ``budget`` (or a default one)."""
    if budget is None:
        budget = Budget(max_seconds=default_seconds, max_nodes=default_nodes)
    else:
        budget = budget.copy()
    return budget.start()
