"""Verification verdicts, results and the common verifier interface."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, Optional

import numpy as np

from repro.nn.network import Network
from repro.specs.properties import Specification
from repro.utils.timing import Budget


class VerificationStatus(enum.Enum):
    """Outcome of a verification run (the paper's ``{true, false, timeout}``)."""

    VERIFIED = "verified"      # the specification holds on the whole input box
    FALSIFIED = "falsified"    # a real counterexample was found
    TIMEOUT = "timeout"        # the budget ran out before a conclusion
    UNKNOWN = "unknown"        # the verifier gave up for another reason

    @property
    def is_conclusive(self) -> bool:
        """Whether this status settles the problem (verified or falsified)."""
        return self in (VerificationStatus.VERIFIED, VerificationStatus.FALSIFIED)


@dataclass
class VerificationResult:
    """The outcome of one verifier run on one verification problem."""

    status: VerificationStatus
    verifier: str
    elapsed_seconds: float = 0.0
    #: Number of AppVer (bound computation) calls, i.e. visited sub-problems.
    nodes_explored: int = 0
    #: Total number of nodes in the final BaB tree (including the root).
    tree_size: int = 1
    counterexample: Optional[np.ndarray] = None
    #: Best (largest) specification-margin lower bound established, if any.
    bound: Optional[float] = None
    extras: Dict[str, object] = field(default_factory=dict)

    @property
    def solved(self) -> bool:
        """True when the verifier reached a conclusive verdict."""
        return self.status.is_conclusive

    def check_counterexample(self, network: Network, spec: Specification) -> bool:
        """Validate that a reported counterexample really violates the spec."""
        if self.counterexample is None:
            return False
        return spec.is_counterexample(network, self.counterexample)

    def summary(self) -> str:
        """One human-readable line: verifier, verdict, time, nodes, bound."""
        parts = [f"{self.verifier}: {self.status.value}",
                 f"time={self.elapsed_seconds:.3f}s",
                 f"nodes={self.nodes_explored}"]
        if self.bound is not None:
            parts.append(f"bound={self.bound:.4f}")
        return ", ".join(parts)


class Verifier:
    """Common interface of every complete verifier in the library."""

    #: Human-readable name used in result tables.
    name: str = "verifier"

    def verify(self, network: Network, spec: Specification,
               budget: Optional[Budget] = None) -> VerificationResult:
        """Decide whether ``network`` satisfies ``spec`` within ``budget``."""
        raise NotImplementedError

    def __repr__(self) -> str:
        return f"{type(self).__name__}(name={self.name!r})"


def make_budget(budget: Optional[Budget], default_nodes: int = 2000,
                default_seconds: Optional[float] = None) -> Budget:
    """Return a started copy of ``budget`` (or a default one)."""
    if budget is None:
        budget = Budget(max_seconds=default_seconds, max_nodes=default_nodes)
    else:
        budget = budget.copy()
    return budget.start()
