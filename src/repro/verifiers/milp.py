"""Complete verification via MILP / LP encodings (GUROBI substitute).

The paper's experiment infrastructure uses GUROBI both as a complete
reference and inside the BaB baselines.  This module provides the same
capabilities on top of SciPy's HiGHS back-end:

* :class:`MilpVerifier` — the classical big-M MILP encoding of a ReLU
  network (Tjeng et al.), solved exactly with :func:`scipy.optimize.milp`.
  It serves as the ground-truth oracle in the test-suite and as the
  "MILP baseline" the paper's introduction contrasts BaB against.
* :func:`solve_leaf_lp` — an LP over a *fully phase-decided* sub-problem
  (every ReLU either stable or split), used by the BaB verifiers to resolve
  leaves exactly.  This mirrors how BaB tools fall back to an LP once no
  unstable neuron remains, which is what makes them complete.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np
from scipy import optimize, sparse

from repro.bounds.deeppoly import DeepPolyAnalyzer
from repro.bounds.report import BoundReport
from repro.bounds.splits import ACTIVE, INACTIVE, SplitAssignment
from repro.nn.network import LoweredNetwork, Network
from repro.specs.properties import InputBox, LinearOutputSpec, Specification
from repro.utils.timing import Budget
from repro.utils.validation import require
from repro.verifiers.result import (
    VerificationResult,
    VerificationStatus,
    Verifier,
    make_budget,
)


@dataclass
class _Encoding:
    """Variable layout shared by the MILP and leaf-LP encodings."""

    num_inputs: int
    hidden_sizes: Tuple[int, ...]
    #: offset of each hidden layer's post-activation block in the variable vector
    hidden_offsets: Tuple[int, ...]
    #: indices of binary variables (MILP only), keyed by (layer, unit)
    binary_index: dict
    num_variables: int

    def x_slice(self) -> slice:
        return slice(0, self.num_inputs)

    def h_index(self, layer: int, unit: int) -> int:
        return self.hidden_offsets[layer] + unit


def _build_encoding(network: LoweredNetwork, unstable: Sequence[Tuple[int, int]],
                    with_binaries: bool) -> _Encoding:
    hidden_sizes = network.relu_layer_sizes()
    offsets = []
    cursor = network.input_dim
    for size in hidden_sizes:
        offsets.append(cursor)
        cursor += size
    binary_index = {}
    if with_binaries:
        for neuron in unstable:
            binary_index[neuron] = cursor
            cursor += 1
    return _Encoding(network.input_dim, tuple(hidden_sizes), tuple(offsets),
                     binary_index, cursor)


def _phase_of(layer: int, unit: int, report: BoundReport,
              splits: SplitAssignment) -> int:
    """Phase of a neuron: +1 active, -1 inactive, 0 unstable."""
    decided = splits.phase_of(layer, unit)
    if decided != 0:
        return decided
    bounds = report.pre_activation_bounds[layer]
    if bounds.lower[unit] >= 0.0:
        return ACTIVE
    if bounds.upper[unit] <= 0.0:
        return INACTIVE
    return 0


class _ConstraintBuilder:
    """Accumulates sparse linear constraints ``lb <= A v <= ub``."""

    def __init__(self, num_variables: int) -> None:
        self.num_variables = num_variables
        self.rows: List[np.ndarray] = []
        self.lower: List[float] = []
        self.upper: List[float] = []

    def add(self, coefficients: dict, lower: float, upper: float) -> None:
        row = np.zeros(self.num_variables)
        for index, value in coefficients.items():
            row[index] += value
        self.rows.append(row)
        self.lower.append(lower)
        self.upper.append(upper)

    def add_affine_row(self, weight_row: np.ndarray, bias: float,
                       previous_offset: Optional[int], encoding: _Encoding,
                       extra: dict, lower: float, upper: float) -> None:
        """Add a constraint ``lower <= w·h_prev + bias + extra·v <= upper``."""
        coefficients = dict(extra)
        if previous_offset is None:
            for index, value in enumerate(weight_row):
                if value != 0.0:
                    coefficients[index] = coefficients.get(index, 0.0) + value
        else:
            for index, value in enumerate(weight_row):
                if value != 0.0:
                    key = previous_offset + index
                    coefficients[key] = coefficients.get(key, 0.0) + value
        self.add(coefficients, lower - bias, upper - bias)

    def to_constraint(self) -> Optional[optimize.LinearConstraint]:
        if not self.rows:
            return None
        matrix = sparse.csr_matrix(np.vstack(self.rows))
        return optimize.LinearConstraint(matrix, np.asarray(self.lower),
                                         np.asarray(self.upper))


def _encode_problem(network: LoweredNetwork, box: InputBox, report: BoundReport,
                    splits: SplitAssignment, with_binaries: bool
                    ) -> Tuple[_Encoding, _ConstraintBuilder, np.ndarray, np.ndarray, bool]:
    """Build the constraint system shared by the MILP and leaf LP.

    Returns ``(encoding, builder, var_lower, var_upper, has_unstable)``.
    When ``with_binaries`` is False every neuron must already be phase
    decided; an unstable neuron then raises ``ValueError``.
    """
    unstable = report.unstable_neurons(splits)
    if not with_binaries and unstable:
        raise ValueError("leaf LP requires every ReLU neuron to be phase-decided")
    encoding = _build_encoding(network, unstable, with_binaries)
    builder = _ConstraintBuilder(encoding.num_variables)

    var_lower = np.full(encoding.num_variables, -np.inf)
    var_upper = np.full(encoding.num_variables, np.inf)
    var_lower[:encoding.num_inputs] = box.lower
    var_upper[:encoding.num_inputs] = box.upper

    infinity = float("inf")
    for layer, size in enumerate(encoding.hidden_sizes):
        previous_offset = None if layer == 0 else encoding.hidden_offsets[layer - 1]
        weight = network.weights[layer]
        bias = network.biases[layer]
        bounds = report.pre_activation_bounds[layer]
        for unit in range(size):
            h_index = encoding.h_index(layer, unit)
            lower_z = float(bounds.lower[unit])
            upper_z = float(bounds.upper[unit])
            phase = _phase_of(layer, unit, report, splits)
            if phase == ACTIVE:
                # h = z, z >= 0
                var_lower[h_index] = max(0.0, lower_z)
                var_upper[h_index] = max(0.0, upper_z)
                builder.add_affine_row(weight[unit], float(bias[unit]), previous_offset,
                                       encoding, {h_index: -1.0}, 0.0, 0.0)
                builder.add_affine_row(weight[unit], float(bias[unit]), previous_offset,
                                       encoding, {}, 0.0, infinity)
            elif phase == INACTIVE:
                # h = 0, z <= 0
                var_lower[h_index] = 0.0
                var_upper[h_index] = 0.0
                builder.add_affine_row(weight[unit], float(bias[unit]), previous_offset,
                                       encoding, {}, -infinity, 0.0)
            else:
                # Unstable neuron with binary indicator a:
                #   h >= 0, h >= z, h <= z - l (1 - a), h <= u a
                a_index = encoding.binary_index[(layer, unit)]
                var_lower[h_index] = 0.0
                var_upper[h_index] = max(0.0, upper_z)
                var_lower[a_index] = 0.0
                var_upper[a_index] = 1.0
                # h - z >= 0
                builder.add_affine_row(-weight[unit], -float(bias[unit]), previous_offset,
                                       encoding, {h_index: 1.0}, 0.0, infinity)
                # h - z - l a <= -l   (h <= z - l + l a)
                builder.add_affine_row(-weight[unit], -float(bias[unit]), previous_offset,
                                       encoding, {h_index: 1.0, a_index: -lower_z},
                                       -infinity, -lower_z)
                # h - u a <= 0
                builder.add({h_index: 1.0, a_index: -upper_z}, -infinity, 0.0)
    return encoding, builder, var_lower, var_upper, bool(unstable)


def _objective_vector(network: LoweredNetwork, spec_row: np.ndarray,
                      encoding: _Encoding) -> Tuple[np.ndarray, float]:
    """Objective ``c·v + constant`` for one spec row over the encoding variables."""
    objective = np.zeros(encoding.num_variables)
    final_weight = network.weights[-1]
    final_bias = network.biases[-1]
    coefficients = spec_row @ final_weight
    constant = float(spec_row @ final_bias)
    if encoding.hidden_sizes:
        offset = encoding.hidden_offsets[-1]
        objective[offset:offset + encoding.hidden_sizes[-1]] = coefficients
    else:
        objective[:encoding.num_inputs] = coefficients
    return objective, constant


@dataclass
class RowOptimum:
    """Exact minimum of one spec row over a (sub-)problem."""

    value: float
    minimizer: Optional[np.ndarray]
    feasible: bool


def _solve(objective: np.ndarray, constant: float, builder: _ConstraintBuilder,
           var_lower: np.ndarray, var_upper: np.ndarray,
           integrality: np.ndarray, encoding: _Encoding,
           time_limit: Optional[float]) -> RowOptimum:
    constraints = builder.to_constraint()
    options = {}
    if time_limit is not None:
        options["time_limit"] = float(time_limit)
    result = optimize.milp(
        c=objective,
        constraints=[constraints] if constraints is not None else [],
        bounds=optimize.Bounds(var_lower, var_upper),
        integrality=integrality,
        options=options,
    )
    if result.status == 2:  # infeasible
        return RowOptimum(float("inf"), None, feasible=False)
    if result.x is None:  # pragma: no cover - solver failure/time limit
        return RowOptimum(float("-inf"), None, feasible=True)
    minimizer = np.asarray(result.x[:encoding.num_inputs])
    return RowOptimum(float(result.fun + constant), minimizer, feasible=True)


def solve_leaf_lp(network: LoweredNetwork, box: InputBox, spec: LinearOutputSpec,
                  splits: SplitAssignment, report: BoundReport,
                  time_limit: Optional[float] = None) -> RowOptimum:
    """Exactly resolve a fully phase-decided sub-problem with an LP.

    Returns the minimum specification margin over the sub-problem's feasible
    region along with its minimiser; an infeasible region yields ``+inf``
    (vacuously verified).  Every ReLU neuron must be stable or split.
    """
    encoding, builder, var_lower, var_upper, _ = _encode_problem(
        network, box, report, splits, with_binaries=False)
    integrality = np.zeros(encoding.num_variables)
    best = RowOptimum(float("inf"), None, feasible=False)
    any_feasible = False
    for row_index in range(spec.num_constraints):
        objective, constant = _objective_vector(network, spec.coefficients[row_index],
                                                encoding)
        constant += float(spec.offsets[row_index])
        optimum = _solve(objective, constant, builder, var_lower, var_upper,
                         integrality, encoding, time_limit)
        if not optimum.feasible:
            continue
        any_feasible = True
        if optimum.value < best.value or best.minimizer is None:
            best = optimum
    if not any_feasible:
        return RowOptimum(float("inf"), None, feasible=False)
    return best


class MilpVerifier(Verifier):
    """Complete verification through the big-M MILP encoding."""

    name = "MILP"

    def __init__(self, time_limit_per_row: Optional[float] = None) -> None:
        self.time_limit_per_row = time_limit_per_row

    def verify(self, network: Network, spec: Specification,
               budget: Optional[Budget] = None) -> VerificationResult:
        budget = make_budget(budget, default_nodes=10_000)
        lowered = network.lowered()
        report = DeepPolyAnalyzer(lowered).analyze(spec.input_box,
                                                   spec=spec.output_spec)
        budget.charge_node()
        if report.p_hat is not None and report.p_hat > 0.0:
            return VerificationResult(VerificationStatus.VERIFIED, self.name,
                                      elapsed_seconds=budget.elapsed_seconds,
                                      nodes_explored=budget.nodes,
                                      bound=float(report.p_hat))

        splits = SplitAssignment.empty()
        encoding, builder, var_lower, var_upper, has_unstable = _encode_problem(
            lowered, spec.input_box, report, splits, with_binaries=True)
        integrality = np.zeros(encoding.num_variables)
        for index in encoding.binary_index.values():
            integrality[index] = 1

        worst = float("inf")
        counterexample = None
        for row_index in range(spec.output_spec.num_constraints):
            if budget.exhausted():
                return VerificationResult(VerificationStatus.TIMEOUT, self.name,
                                          elapsed_seconds=budget.elapsed_seconds,
                                          nodes_explored=budget.nodes)
            objective, constant = _objective_vector(
                lowered, spec.output_spec.coefficients[row_index], encoding)
            constant += float(spec.output_spec.offsets[row_index])
            time_limit = self.time_limit_per_row
            if budget.max_seconds is not None:
                remaining = max(budget.max_seconds - budget.elapsed_seconds, 0.1)
                time_limit = remaining if time_limit is None else min(time_limit, remaining)
            optimum = _solve(objective, constant, builder, var_lower, var_upper,
                             integrality, encoding, time_limit)
            budget.charge_node()
            if not optimum.feasible:
                continue
            if optimum.minimizer is None:
                # Solver hit its limit without an incumbent: no sound verdict.
                return VerificationResult(VerificationStatus.TIMEOUT, self.name,
                                          elapsed_seconds=budget.elapsed_seconds,
                                          nodes_explored=budget.nodes)
            if optimum.value < worst:
                worst = optimum.value
                counterexample = optimum.minimizer
            if optimum.value < 0.0 and optimum.minimizer is not None:
                point = spec.input_box.clip(optimum.minimizer)
                return VerificationResult(VerificationStatus.FALSIFIED, self.name,
                                          elapsed_seconds=budget.elapsed_seconds,
                                          nodes_explored=budget.nodes,
                                          counterexample=point,
                                          bound=float(optimum.value))
        return VerificationResult(VerificationStatus.VERIFIED, self.name,
                                  elapsed_seconds=budget.elapsed_seconds,
                                  nodes_explored=budget.nodes,
                                  bound=None if worst == float("inf") else float(worst))
