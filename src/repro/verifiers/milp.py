"""Complete verification via MILP / LP encodings (GUROBI substitute).

The paper's experiment infrastructure uses GUROBI both as a complete
reference and inside the BaB baselines.  This module provides the same
capabilities on top of SciPy's HiGHS back-end:

* :class:`MilpVerifier` — the classical big-M MILP encoding of a ReLU
  network (Tjeng et al.), solved exactly with :func:`scipy.optimize.milp`.
  It serves as the ground-truth oracle in the test-suite and as the
  "MILP baseline" the paper's introduction contrasts BaB against.
* :func:`solve_leaf_lp` — an LP over a *fully phase-decided* sub-problem
  (every ReLU either stable or split), used by the BaB verifiers to resolve
  leaves exactly.  This mirrors how BaB tools fall back to an LP once no
  unstable neuron remains, which is what makes them complete.

Two execution modes back the leaf-LP hot path (the frontier drivers charge
roughly one bound computation per leaf, and the LP dominated ABONN's node
charges on the deeper seed families once bound batching landed):

* :func:`solve_leaf_lp` — one leaf at a time;
* :func:`solve_leaf_lp_batch` — all fully-decided leaves of one frontier
  round in a single pass.  A decided leaf's constraint *rows* depend only
  on the per-layer phase pattern (the bounds from its report enter only the
  variable-bound vectors), so the batch shares one row block per
  ``(layer, phase-pattern)`` group — sibling leaves, which agree on every
  layer except the one holding the flipped neuron, rebuild almost nothing —
  and computes the spec-row objective vectors once for the whole batch.
  Within one leaf, all specification rows can resolve through a **single
  stacked multi-objective ``milp`` call** (``stack_rows``): the rows share
  one feasible region, so minimising an auxiliary ``t`` over
  ``t >= f_i(v) - M_i (1 - s_i)`` with one-hot binary selectors ``s``
  yields exactly ``min_i min_v f_i(v)`` in one solve sharing the
  constraint matrix, instead of one ``milp`` call per row.  Big-Ms come
  from interval arithmetic over the (always finite) leaf variable bounds.
  The per-row loop (with an early exit on the first infeasible row — the
  rows share the region, so one infeasible row means all are) remains the
  default below :data:`STACK_ROWS_MIN` rows, where one solver call per row
  is still cheaper than the selector branch-and-bound.

Both modes accept a :class:`~repro.bounds.cache.LpCache` that memoises the
resulting :class:`RowOptimum`.  Cache keys are
``SplitAssignment.canonical_key()`` tuples, optionally scoped by a
``fingerprint`` — a digest of the network weights, input box and output
spec from :func:`problem_fingerprint` — which makes one ``LpCache``
instance safely shareable *across verification problems*: a
robustness-radius sweep can thread a single cache through every epsilon,
reusing solves when a problem recurs while nearby radii (whose boxes, and
hence optima, differ) can never collide.
"""

from __future__ import annotations

import hashlib
from contextlib import nullcontext
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np
from scipy import optimize, sparse

from repro.bounds.cache import LpCache
from repro.bounds.deeppoly import DeepPolyAnalyzer
from repro.bounds.report import BoundReport
from repro.bounds.splits import ACTIVE, INACTIVE, SplitAssignment
from repro.nn.network import LoweredNetwork, Network
from repro.specs.properties import InputBox, LinearOutputSpec, Specification
from repro.utils.timing import Budget, PhaseTimings
from repro.utils.validation import require
from repro.verifiers.result import (
    VerificationResult,
    VerificationStatus,
    Verifier,
    make_budget,
)


@dataclass
class _Encoding:
    """Variable layout shared by the MILP and leaf-LP encodings."""

    num_inputs: int
    hidden_sizes: Tuple[int, ...]
    #: offset of each hidden layer's post-activation block in the variable vector
    hidden_offsets: Tuple[int, ...]
    #: indices of binary variables (MILP only), keyed by (layer, unit)
    binary_index: dict
    num_variables: int

    def x_slice(self) -> slice:
        return slice(0, self.num_inputs)

    def h_index(self, layer: int, unit: int) -> int:
        return self.hidden_offsets[layer] + unit


def _build_encoding(network: LoweredNetwork, unstable: Sequence[Tuple[int, int]],
                    with_binaries: bool) -> _Encoding:
    hidden_sizes = network.relu_layer_sizes()
    offsets = []
    cursor = network.input_dim
    for size in hidden_sizes:
        offsets.append(cursor)
        cursor += size
    binary_index = {}
    if with_binaries:
        for neuron in unstable:
            binary_index[neuron] = cursor
            cursor += 1
    return _Encoding(network.input_dim, tuple(hidden_sizes), tuple(offsets),
                     binary_index, cursor)


def _phase_of(layer: int, unit: int, report: BoundReport,
              splits: SplitAssignment) -> int:
    """Phase of a neuron: +1 active, -1 inactive, 0 unstable."""
    decided = splits.phase_of(layer, unit)
    if decided != 0:
        return decided
    bounds = report.pre_activation_bounds[layer]
    if bounds.lower[unit] >= 0.0:
        return ACTIVE
    if bounds.upper[unit] <= 0.0:
        return INACTIVE
    return 0


class _ConstraintBuilder:
    """Accumulates sparse linear constraints ``lb <= A v <= ub``."""

    def __init__(self, num_variables: int) -> None:
        self.num_variables = num_variables
        self.rows: List[np.ndarray] = []
        self.lower: List[float] = []
        self.upper: List[float] = []

    def add(self, coefficients: dict, lower: float, upper: float) -> None:
        row = np.zeros(self.num_variables)
        for index, value in coefficients.items():
            row[index] += value
        self.rows.append(row)
        self.lower.append(lower)
        self.upper.append(upper)

    def add_affine_row(self, weight_row: np.ndarray, bias: float,
                       previous_offset: Optional[int], encoding: _Encoding,
                       extra: dict, lower: float, upper: float) -> None:
        """Add a constraint ``lower <= w·h_prev + bias + extra·v <= upper``."""
        coefficients = dict(extra)
        if previous_offset is None:
            for index, value in enumerate(weight_row):
                if value != 0.0:
                    coefficients[index] = coefficients.get(index, 0.0) + value
        else:
            for index, value in enumerate(weight_row):
                if value != 0.0:
                    key = previous_offset + index
                    coefficients[key] = coefficients.get(key, 0.0) + value
        self.add(coefficients, lower - bias, upper - bias)

    def to_constraint(self) -> Optional[optimize.LinearConstraint]:
        if not self.rows:
            return None
        matrix = sparse.csr_matrix(np.vstack(self.rows))
        return optimize.LinearConstraint(matrix, np.asarray(self.lower),
                                         np.asarray(self.upper))


def _encode_problem(network: LoweredNetwork, box: InputBox, report: BoundReport,
                    splits: SplitAssignment, with_binaries: bool
                    ) -> Tuple[_Encoding, _ConstraintBuilder, np.ndarray, np.ndarray, bool]:
    """Build the constraint system shared by the MILP and leaf LP.

    Returns ``(encoding, builder, var_lower, var_upper, has_unstable)``.
    When ``with_binaries`` is False every neuron must already be phase
    decided; an unstable neuron then raises ``ValueError``.
    """
    unstable = report.unstable_neurons(splits)
    if not with_binaries and unstable:
        raise ValueError("leaf LP requires every ReLU neuron to be phase-decided")
    encoding = _build_encoding(network, unstable, with_binaries)
    builder = _ConstraintBuilder(encoding.num_variables)

    var_lower = np.full(encoding.num_variables, -np.inf)
    var_upper = np.full(encoding.num_variables, np.inf)
    var_lower[:encoding.num_inputs] = box.lower
    var_upper[:encoding.num_inputs] = box.upper

    infinity = float("inf")
    for layer, size in enumerate(encoding.hidden_sizes):
        previous_offset = None if layer == 0 else encoding.hidden_offsets[layer - 1]
        weight = network.weights[layer]
        bias = network.biases[layer]
        bounds = report.pre_activation_bounds[layer]
        for unit in range(size):
            h_index = encoding.h_index(layer, unit)
            lower_z = float(bounds.lower[unit])
            upper_z = float(bounds.upper[unit])
            phase = _phase_of(layer, unit, report, splits)
            if phase == ACTIVE:
                # h = z, z >= 0
                var_lower[h_index] = max(0.0, lower_z)
                var_upper[h_index] = max(0.0, upper_z)
                builder.add_affine_row(weight[unit], float(bias[unit]), previous_offset,
                                       encoding, {h_index: -1.0}, 0.0, 0.0)
                builder.add_affine_row(weight[unit], float(bias[unit]), previous_offset,
                                       encoding, {}, 0.0, infinity)
            elif phase == INACTIVE:
                # h = 0, z <= 0
                var_lower[h_index] = 0.0
                var_upper[h_index] = 0.0
                builder.add_affine_row(weight[unit], float(bias[unit]), previous_offset,
                                       encoding, {}, -infinity, 0.0)
            else:
                # Unstable neuron with binary indicator a:
                #   h >= 0, h >= z, h <= z - l (1 - a), h <= u a
                a_index = encoding.binary_index[(layer, unit)]
                var_lower[h_index] = 0.0
                var_upper[h_index] = max(0.0, upper_z)
                var_lower[a_index] = 0.0
                var_upper[a_index] = 1.0
                # h - z >= 0
                builder.add_affine_row(-weight[unit], -float(bias[unit]), previous_offset,
                                       encoding, {h_index: 1.0}, 0.0, infinity)
                # h - z - l a <= -l   (h <= z - l + l a)
                builder.add_affine_row(-weight[unit], -float(bias[unit]), previous_offset,
                                       encoding, {h_index: 1.0, a_index: -lower_z},
                                       -infinity, -lower_z)
                # h - u a <= 0
                builder.add({h_index: 1.0, a_index: -upper_z}, -infinity, 0.0)
    return encoding, builder, var_lower, var_upper, bool(unstable)


def _objective_vector(network: LoweredNetwork, spec_row: np.ndarray,
                      encoding: _Encoding) -> Tuple[np.ndarray, float]:
    """Objective ``c·v + constant`` for one spec row over the encoding variables."""
    objective = np.zeros(encoding.num_variables)
    final_weight = network.weights[-1]
    final_bias = network.biases[-1]
    coefficients = spec_row @ final_weight
    constant = float(spec_row @ final_bias)
    if encoding.hidden_sizes:
        offset = encoding.hidden_offsets[-1]
        objective[offset:offset + encoding.hidden_sizes[-1]] = coefficients
    else:
        objective[:encoding.num_inputs] = coefficients
    return objective, constant


@dataclass
class RowOptimum:
    """Exact minimum of one spec row over a (sub-)problem."""

    value: float
    minimizer: Optional[np.ndarray]
    feasible: bool


def _lp_measure(timings: Optional[PhaseTimings]):
    """A ``timings.measure("lp")`` context, or a no-op without timings."""
    return timings.measure("lp") if timings is not None else nullcontext()


#: Row count from which the stacked multi-objective leaf solve is the
#: default.  The selector MILP costs one branch-and-bound over the one-hot
#: binaries, which beats one HiGHS call per row once enough rows share the
#: region (measured crossover on the seed families: ~2x slower at 3 rows,
#: ~1.3x faster at 9); explicit ``stack_rows=True/False`` overrides.
STACK_ROWS_MIN = 6


def _solve(objective: np.ndarray, constant: float,
           constraints: Optional[optimize.LinearConstraint],
           var_lower: np.ndarray, var_upper: np.ndarray,
           integrality: np.ndarray, encoding: _Encoding,
           time_limit: Optional[float]) -> RowOptimum:
    options = {}
    if time_limit is not None:
        options["time_limit"] = float(time_limit)
    result = optimize.milp(
        c=objective,
        constraints=[constraints] if constraints is not None else [],
        bounds=optimize.Bounds(var_lower, var_upper),
        integrality=integrality,
        options=options,
    )
    if result.status == 2:  # infeasible
        return RowOptimum(float("inf"), None, feasible=False)
    if result.x is None:  # pragma: no cover - solver failure/time limit
        return RowOptimum(float("-inf"), None, feasible=True)
    minimizer = np.asarray(result.x[:encoding.num_inputs])
    return RowOptimum(float(result.fun + constant), minimizer, feasible=True)


# ---------------------------------------------------------------------------
# Batched, cached leaf-LP resolution
# ---------------------------------------------------------------------------

def network_weights_digest(network: LoweredNetwork) -> str:
    """A stable digest over just the lowered weights and biases.

    The verification service keys its warm-model cache on this digest so
    many properties over one network (a robustness sweep, a batch of
    labels) reuse one lowering; :func:`problem_fingerprint` accepts it as a
    precomputed prefix to avoid re-hashing the (large) weight arrays per
    property.
    """
    digest = hashlib.sha256()
    for weight, bias in zip(network.weights, network.biases):
        digest.update(np.ascontiguousarray(weight, dtype=float).tobytes())
        digest.update(np.ascontiguousarray(bias, dtype=float).tobytes())
    return digest.hexdigest()


def problem_fingerprint(network: LoweredNetwork, box: InputBox,
                        spec: LinearOutputSpec,
                        weights_digest: Optional[str] = None) -> str:
    """A stable digest identifying one verification problem.

    Hashes the lowered weights/biases, the input box and the output-spec
    rows; two problems share a fingerprint exactly when the leaf LP (and
    every bound computation) they induce is identical.  Used to scope
    :class:`~repro.bounds.cache.LpCache` keys so one cache instance can be
    shared across runs *and* across problems (e.g. a robustness-radius
    sweep) without unsound cross-problem hits.

    ``weights_digest`` optionally supplies the network's precomputed
    :func:`network_weights_digest`, skipping the per-call weight hashing;
    it MUST be the digest of ``network`` or fingerprints collide.
    """
    digest = hashlib.sha256()
    if weights_digest is None:
        weights_digest = network_weights_digest(network)
    digest.update(weights_digest.encode("ascii"))
    digest.update(np.ascontiguousarray(box.lower, dtype=float).tobytes())
    digest.update(np.ascontiguousarray(box.upper, dtype=float).tobytes())
    digest.update(np.ascontiguousarray(spec.coefficients, dtype=float).tobytes())
    digest.update(np.ascontiguousarray(spec.offsets, dtype=float).tobytes())
    return digest.hexdigest()


def _leaf_phase_signature(network: LoweredNetwork, report: BoundReport,
                          splits: SplitAssignment) -> Tuple[Tuple[int, ...], ...]:
    """Per-layer decided phases of a leaf (``+1`` / ``-1`` per neuron).

    Raises ``ValueError`` when any neuron is still unstable — the leaf LP is
    only defined for fully phase-decided sub-problems.
    """
    signature = []
    for layer, size in enumerate(network.relu_layer_sizes()):
        phases = []
        for unit in range(size):
            phase = _phase_of(layer, unit, report, splits)
            if phase == 0:
                raise ValueError("leaf LP requires every ReLU neuron to be phase-decided")
            phases.append(phase)
        signature.append(tuple(phases))
    return tuple(signature)


def _layer_row_block(network: LoweredNetwork, encoding: _Encoding, layer: int,
                     phases: Tuple[int, ...]
                     ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """The leaf-LP constraint rows contributed by one hidden layer.

    For decided leaves the rows depend only on the layer's phase pattern
    (ACTIVE: ``h = z`` and ``z >= 0``; INACTIVE: ``z <= 0``), never on the
    leaf's bound report — which is what lets a batch share row blocks across
    leaves that agree on the layer.
    """
    builder = _ConstraintBuilder(encoding.num_variables)
    previous_offset = None if layer == 0 else encoding.hidden_offsets[layer - 1]
    weight = network.weights[layer]
    bias = network.biases[layer]
    infinity = float("inf")
    for unit, phase in enumerate(phases):
        h_index = encoding.h_index(layer, unit)
        if phase == ACTIVE:
            builder.add_affine_row(weight[unit], float(bias[unit]), previous_offset,
                                   encoding, {h_index: -1.0}, 0.0, 0.0)
            builder.add_affine_row(weight[unit], float(bias[unit]), previous_offset,
                                   encoding, {}, 0.0, infinity)
        else:
            builder.add_affine_row(weight[unit], float(bias[unit]), previous_offset,
                                   encoding, {}, -infinity, 0.0)
    if not builder.rows:
        empty = np.zeros((0, encoding.num_variables))
        return empty, np.zeros(0), np.zeros(0)
    return (np.vstack(builder.rows), np.asarray(builder.lower),
            np.asarray(builder.upper))


def _leaf_variable_bounds(box: InputBox, report: BoundReport,
                          signature: Tuple[Tuple[int, ...], ...],
                          encoding: _Encoding) -> Tuple[np.ndarray, np.ndarray]:
    """Per-leaf variable bounds (inputs from the box, ``h`` from the report)."""
    var_lower = np.full(encoding.num_variables, -np.inf)
    var_upper = np.full(encoding.num_variables, np.inf)
    var_lower[:encoding.num_inputs] = box.lower
    var_upper[:encoding.num_inputs] = box.upper
    for layer, phases in enumerate(signature):
        bounds = report.pre_activation_bounds[layer]
        for unit, phase in enumerate(phases):
            h_index = encoding.h_index(layer, unit)
            if phase == ACTIVE:
                var_lower[h_index] = max(0.0, float(bounds.lower[unit]))
                var_upper[h_index] = max(0.0, float(bounds.upper[unit]))
            else:
                var_lower[h_index] = 0.0
                var_upper[h_index] = 0.0
    return var_lower, var_upper


def _row_objectives(network: LoweredNetwork, spec: LinearOutputSpec,
                    encoding: _Encoding) -> List[Tuple[np.ndarray, float]]:
    """Objective vector and constant of every spec row over the encoding."""
    objectives = []
    for row_index in range(spec.num_constraints):
        objective, constant = _objective_vector(network, spec.coefficients[row_index],
                                                encoding)
        objectives.append((objective, constant + float(spec.offsets[row_index])))
    return objectives


def _minimise_rows(objectives: List[Tuple[np.ndarray, float]],
                   constraints: Optional[optimize.LinearConstraint],
                   var_lower: np.ndarray, var_upper: np.ndarray,
                   integrality: np.ndarray, encoding: _Encoding,
                   time_limit: Optional[float]) -> RowOptimum:
    """Minimum over all spec rows of one leaf (``+inf`` when infeasible).

    Every row shares the same feasible region, so the first infeasible row
    proves the region empty and the loop returns without solving the rest.
    """
    best = RowOptimum(float("inf"), None, feasible=False)
    any_feasible = False
    for objective, constant in objectives:
        optimum = _solve(objective, constant, constraints, var_lower, var_upper,
                         integrality, encoding, time_limit)
        if not optimum.feasible:
            return RowOptimum(float("inf"), None, feasible=False)
        any_feasible = True
        if optimum.value < best.value or best.minimizer is None:
            best = optimum
    if not any_feasible:
        return RowOptimum(float("inf"), None, feasible=False)
    return best


def _objective_interval(objective: np.ndarray, constant: float,
                        var_lower: np.ndarray, var_upper: np.ndarray
                        ) -> Tuple[float, float]:
    """Interval bounds of ``objective @ v + constant`` over the var bounds."""
    positive = np.clip(objective, 0.0, None)
    negative = np.clip(objective, None, 0.0)
    lower = positive @ var_lower + negative @ var_upper + constant
    upper = positive @ var_upper + negative @ var_lower + constant
    return float(lower), float(upper)


def _minimise_rows_stacked(objectives: List[Tuple[np.ndarray, float]],
                           row_matrix: Optional[np.ndarray],
                           row_lower: Optional[np.ndarray],
                           row_upper: Optional[np.ndarray],
                           var_lower: np.ndarray, var_upper: np.ndarray,
                           encoding: _Encoding,
                           time_limit: Optional[float]) -> Optional[RowOptimum]:
    """All spec rows of one leaf in a single stacked ``milp`` call.

    The rows share one feasible region, so ``min_i min_v f_i(v)`` is the
    optimum of::

        minimise t  s.t.  t >= f_i(v) - M_i (1 - s_i),  sum_i s_i = 1

    with binary selectors ``s`` and ``M_i = U_i - L_min`` from interval
    arithmetic over the (finite) leaf variable bounds.  Returns ``None``
    when the stacking is inapplicable (unbounded big-M) or the solver fails
    without a verdict — callers then fall back to the per-row loop.
    """
    num_rows = len(objectives)
    if num_rows == 1:
        constraints = None
        if row_matrix is not None:
            constraints = optimize.LinearConstraint(
                sparse.csr_matrix(row_matrix), row_lower, row_upper)
        objective, constant = objectives[0]
        return _solve(objective, constant, constraints, var_lower, var_upper,
                      np.zeros(encoding.num_variables), encoding, time_limit)

    intervals = [_objective_interval(objective, constant, var_lower, var_upper)
                 for objective, constant in objectives]
    if not all(np.isfinite(bound) for pair in intervals for bound in pair):
        return None  # pragma: no cover - leaf variable bounds are finite
    lowest = min(lower for lower, _ in intervals)
    big_m = [upper - lowest for _, upper in intervals]

    num_base = encoding.num_variables
    t_index = num_base
    s_offset = num_base + 1
    total = num_base + 1 + num_rows

    blocks: List[np.ndarray] = []
    lowers: List[np.ndarray] = []
    uppers: List[np.ndarray] = []
    if row_matrix is not None and row_matrix.shape[0]:
        padded = np.zeros((row_matrix.shape[0], total))
        padded[:, :num_base] = row_matrix
        blocks.append(padded)
        lowers.append(row_lower)
        uppers.append(row_upper)
    # f_i(v) - t + M_i s_i <= M_i - k_i  (i.e. t >= f_i(v) - M_i (1 - s_i))
    selector_rows = np.zeros((num_rows, total))
    for index, (objective, constant) in enumerate(objectives):
        selector_rows[index, :num_base] = objective
        selector_rows[index, t_index] = -1.0
        selector_rows[index, s_offset + index] = big_m[index]
    blocks.append(selector_rows)
    lowers.append(np.full(num_rows, -np.inf))
    uppers.append(np.asarray([big_m[index] - objectives[index][1]
                              for index in range(num_rows)]))
    # Exactly one selected row.
    one_hot = np.zeros((1, total))
    one_hot[0, s_offset:] = 1.0
    blocks.append(one_hot)
    lowers.append(np.ones(1))
    uppers.append(np.ones(1))

    constraints = optimize.LinearConstraint(
        sparse.csr_matrix(np.vstack(blocks)),
        np.concatenate(lowers), np.concatenate(uppers))
    full_lower = np.concatenate([var_lower, [lowest], np.zeros(num_rows)])
    full_upper = np.concatenate([var_upper,
                                 [min(upper for _, upper in intervals)],
                                 np.ones(num_rows)])
    integrality = np.zeros(total)
    integrality[s_offset:] = 1
    options = {"mip_rel_gap": 0.0}
    if time_limit is not None:
        options["time_limit"] = float(time_limit)
    result = optimize.milp(
        c=np.concatenate([np.zeros(num_base), [1.0], np.zeros(num_rows)]),
        constraints=[constraints],
        bounds=optimize.Bounds(full_lower, full_upper),
        integrality=integrality,
        options=options,
    )
    if result.status == 2:  # infeasible region: every row is infeasible
        return RowOptimum(float("inf"), None, feasible=False)
    if result.x is None:  # pragma: no cover - solver failure/time limit
        return None
    minimizer = np.asarray(result.x[:encoding.num_inputs])
    return RowOptimum(float(result.fun), minimizer, feasible=True)


def solve_leaf_lp_batch(network: LoweredNetwork, box: InputBox,
                        spec: LinearOutputSpec,
                        leaves: Sequence[Tuple[SplitAssignment, BoundReport]],
                        cache: Optional[LpCache] = None,
                        time_limit: Optional[float] = None,
                        fingerprint: Optional[str] = None,
                        stack_rows: Optional[bool] = None,
                        timings: Optional[PhaseTimings] = None) -> List[RowOptimum]:
    """Exactly resolve a batch of fully phase-decided sub-problems.

    ``leaves`` pairs each leaf's :class:`~repro.bounds.splits.SplitAssignment`
    with the :class:`~repro.bounds.report.BoundReport` of its bound analysis.
    Returns one :class:`RowOptimum` per leaf, in order, equal to what
    :func:`solve_leaf_lp` computes for each leaf alone.

    The batch is resolved in one pass over shared structure: the variable
    layout and the per-spec-row objective vectors are computed once; the
    constraint rows, which depend only on each layer's phase pattern, are
    built once per ``(layer, phase-pattern)`` group and reused by every leaf
    agreeing on that layer.  With ``stack_rows`` each leaf's spec rows are
    minimised through one stacked multi-objective ``milp`` call sharing
    that constraint matrix (see the module docstring); ``False`` keeps one
    call per row, and ``None`` (the default) stacks from
    :data:`STACK_ROWS_MIN` rows up — the measured crossover where one
    selector MILP beats per-row solves.  When a
    :class:`~repro.bounds.cache.LpCache` is
    supplied, leaves whose ``canonical_key()`` was already resolved — in an
    earlier call or earlier in this batch — are served from the cache
    (counted as hits) and never reach the solver.  ``fingerprint``
    (see :func:`problem_fingerprint`) scopes the cache keys so one cache
    can be shared across verification problems; ``timings`` accumulates the
    solver time under the ``"lp"`` phase.
    """
    if not leaves:
        return []
    results: List[Optional[RowOptimum]] = [None] * len(leaves)
    unsolved: List[int] = []        # indices that reach the solver
    aliases: List[Tuple[int, int]] = []  # (duplicate index, primary index)
    first_by_key = {}

    def cache_key(splits: SplitAssignment):
        canonical = splits.canonical_key()
        return canonical if fingerprint is None else (fingerprint, canonical)

    for index, (splits, _) in enumerate(leaves):
        key = splits.canonical_key()
        primary = first_by_key.get(key)
        if primary is not None:
            # An identical leaf earlier in this batch: reuse its optimum.
            if cache is not None:
                cache.record_hit()
            aliases.append((index, primary))
            continue
        if cache is not None:
            hit = cache.get(cache_key(splits))
            if hit is not None:
                results[index] = hit
                continue
        first_by_key[key] = index
        unsolved.append(index)

    if unsolved:
        encoding = _build_encoding(network, (), with_binaries=False)
        integrality = np.zeros(encoding.num_variables)
        objectives = _row_objectives(network, spec, encoding)
        if stack_rows is None:
            stack_rows = len(objectives) >= STACK_ROWS_MIN
        row_blocks = {}  # (layer, phase pattern) -> shared row block
        for index in unsolved:
            splits, report = leaves[index]
            signature = _leaf_phase_signature(network, report, splits)
            blocks = []
            for layer, phases in enumerate(signature):
                block_key = (layer, phases)
                block = row_blocks.get(block_key)
                if block is None:
                    block = _layer_row_block(network, encoding, layer, phases)
                    row_blocks[block_key] = block
                blocks.append(block)
            if blocks and sum(block[0].shape[0] for block in blocks):
                row_matrix = np.vstack([block[0] for block in blocks])
                row_lower = np.concatenate([block[1] for block in blocks])
                row_upper = np.concatenate([block[2] for block in blocks])
            else:
                row_matrix = None
                row_lower = None
                row_upper = None
            var_lower, var_upper = _leaf_variable_bounds(box, report,
                                                         signature, encoding)
            with _lp_measure(timings):
                optimum = None
                if stack_rows:
                    optimum = _minimise_rows_stacked(
                        objectives, row_matrix, row_lower, row_upper,
                        var_lower, var_upper, encoding, time_limit)
                    # The selector relaxations only ever *under*-estimate
                    # (weaker constraints lower the minimum), so a
                    # non-negative stacked value soundly proves the leaf;
                    # a negative one may be a big-M/integrality-tolerance
                    # artefact and is confirmed by the exact per-row LPs.
                    if (optimum is not None and optimum.feasible
                            and optimum.value < 0.0):
                        optimum = None
                if optimum is None:
                    constraints = None
                    if row_matrix is not None:
                        constraints = optimize.LinearConstraint(
                            sparse.csr_matrix(row_matrix), row_lower, row_upper)
                    optimum = _minimise_rows(objectives, constraints,
                                             var_lower, var_upper, integrality,
                                             encoding, time_limit)
            results[index] = optimum
            if cache is not None:
                cache.record_solve()
                cache.put(cache_key(splits), optimum)

    for duplicate, primary in aliases:
        results[duplicate] = results[primary]
    return results  # type: ignore[return-value]


#: Verdict of one exactly resolved leaf (see :func:`classify_leaf_optimum`).
LEAF_VERIFIED = "verified"
LEAF_UNKNOWN = "unknown"
LEAF_FALSIFIED = "falsified"


def classify_leaf_optimum(optimum: RowOptimum, spec: Specification,
                          network: Network) -> Tuple[str, Optional[np.ndarray]]:
    """Interpret one leaf optimum soundly; returns ``(verdict, counterexample)``.

    The single shared reading every BaB work source applies to an exact
    leaf resolution:

    * infeasible region or non-negative minimum — the leaf is *verified*
      (``LEAF_VERIFIED``);
    * a negative minimum whose clipped minimiser is a real counterexample of
      the original problem — *falsified* (``LEAF_FALSIFIED``, with the
      validated point);
    * anything else (solver failure without a minimiser, or a spurious
      minimiser that does not reproduce the violation) — *unknown*
      (``LEAF_UNKNOWN``), which keeps completeness honest.
    """
    if not optimum.feasible or optimum.value >= 0.0:
        return LEAF_VERIFIED, None
    if optimum.minimizer is None:  # pragma: no cover - solver failure
        return LEAF_UNKNOWN, None
    point = spec.input_box.clip(optimum.minimizer)
    if spec.is_counterexample(network, point):
        return LEAF_FALSIFIED, point
    return LEAF_UNKNOWN, None  # pragma: no cover - numerical corner case


def solve_leaf_lp(network: LoweredNetwork, box: InputBox, spec: LinearOutputSpec,
                  splits: SplitAssignment, report: BoundReport,
                  time_limit: Optional[float] = None,
                  cache: Optional[LpCache] = None,
                  fingerprint: Optional[str] = None,
                  stack_rows: Optional[bool] = None,
                  timings: Optional[PhaseTimings] = None) -> RowOptimum:
    """Exactly resolve a fully phase-decided sub-problem with an LP.

    Returns the minimum specification margin over the sub-problem's feasible
    region along with its minimiser; an infeasible region yields ``+inf``
    (vacuously verified).  Every ReLU neuron must be stable or split.  A
    supplied :class:`~repro.bounds.cache.LpCache` memoises the optimum by
    the assignment's canonical key, optionally scoped by ``fingerprint``
    (see :func:`solve_leaf_lp_batch`, which also documents ``stack_rows``
    and ``timings``).
    """
    return solve_leaf_lp_batch(network, box, spec, [(splits, report)],
                               cache=cache, time_limit=time_limit,
                               fingerprint=fingerprint, stack_rows=stack_rows,
                               timings=timings)[0]


class MilpVerifier(Verifier):
    """Complete verification through the big-M MILP encoding."""

    name = "MILP"

    def __init__(self, time_limit_per_row: Optional[float] = None) -> None:
        self.time_limit_per_row = time_limit_per_row

    def verify(self, network: Network, spec: Specification,
               budget: Optional[Budget] = None) -> VerificationResult:
        """Decide the problem exactly: DeepPoly pre-pass, then one MILP per
        specification row (stopping at the first violated row)."""
        budget = make_budget(budget, default_nodes=10_000)
        lowered = network.lowered()
        report = DeepPolyAnalyzer(lowered).analyze(spec.input_box,
                                                   spec=spec.output_spec)
        budget.charge_node()
        if report.p_hat is not None and report.p_hat > 0.0:
            return VerificationResult(VerificationStatus.VERIFIED, self.name,
                                      elapsed_seconds=budget.elapsed_seconds,
                                      nodes_explored=budget.nodes,
                                      bound=float(report.p_hat))

        splits = SplitAssignment.empty()
        encoding, builder, var_lower, var_upper, has_unstable = _encode_problem(
            lowered, spec.input_box, report, splits, with_binaries=True)
        constraints = builder.to_constraint()
        integrality = np.zeros(encoding.num_variables)
        for index in encoding.binary_index.values():
            integrality[index] = 1

        worst = float("inf")
        counterexample = None
        for row_index in range(spec.output_spec.num_constraints):
            if budget.exhausted():
                return VerificationResult(VerificationStatus.TIMEOUT, self.name,
                                          elapsed_seconds=budget.elapsed_seconds,
                                          nodes_explored=budget.nodes)
            objective, constant = _objective_vector(
                lowered, spec.output_spec.coefficients[row_index], encoding)
            constant += float(spec.output_spec.offsets[row_index])
            time_limit = self.time_limit_per_row
            if budget.max_seconds is not None:
                remaining = max(budget.max_seconds - budget.elapsed_seconds, 0.1)
                time_limit = remaining if time_limit is None else min(time_limit, remaining)
            optimum = _solve(objective, constant, constraints, var_lower, var_upper,
                             integrality, encoding, time_limit)
            budget.charge_node()
            if not optimum.feasible:
                continue
            if optimum.minimizer is None:
                # Solver hit its limit without an incumbent: no sound verdict.
                return VerificationResult(VerificationStatus.TIMEOUT, self.name,
                                          elapsed_seconds=budget.elapsed_seconds,
                                          nodes_explored=budget.nodes)
            if optimum.value < worst:
                worst = optimum.value
                counterexample = optimum.minimizer
            if optimum.value < 0.0 and optimum.minimizer is not None:
                point = spec.input_box.clip(optimum.minimizer)
                return VerificationResult(VerificationStatus.FALSIFIED, self.name,
                                          elapsed_seconds=budget.elapsed_seconds,
                                          nodes_explored=budget.nodes,
                                          counterexample=point,
                                          bound=float(optimum.value))
        return VerificationResult(VerificationStatus.VERIFIED, self.name,
                                  elapsed_seconds=budget.elapsed_seconds,
                                  nodes_explored=budget.nodes,
                                  bound=None if worst == float("inf") else float(worst))
