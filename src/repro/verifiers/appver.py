"""The ``AppVer`` oracle used by every BaB-style verifier in the library.

An approximated verifier, applied to a (sub-)problem, returns (§III):

* ``p̂`` — a sound lower bound of the specification margin over the
  sub-problem (positive means the sub-problem is verified);
* ``x̂`` — a candidate counterexample, only meaningful when ``p̂ < 0``;
* whether ``x̂`` is *valid*, i.e. a real counterexample of the original
  problem (``valid(x̂)`` in Def. 1 / Alg. 1).

This module wraps the bound-propagation analysers of :mod:`repro.bounds`
behind that interface and counts calls, which is how all verifiers charge
their node budgets.

Three throughput features back the hot path (see ``docs/BATCHING.md``):

* :meth:`ApproximateVerifier.evaluate_batch` bounds ``B`` sub-problems in
  one batched pass for every back-end — DeepPoly and IBP via a leading
  batch axis through the backward substitution, α-CROWN via stacked SPSA
  slope optimisation.  The frontier-wide drivers feed it the phase-split
  children of up to ``frontier_size`` nodes at once, and the realised batch
  sizes are recorded in :attr:`ApproximateVerifier.batch_histogram`;
* a split-aware :class:`~repro.bounds.cache.BoundCache` (on by default)
  memoises per-layer pre-activation bounds keyed by the split-assignment
  prefix relevant to each layer, plus whole reports keyed by the full
  canonical assignment, so a child sub-problem only recomputes layers
  at-or-below its newly decided neuron;
* **incremental parent-pass reuse** (``incremental=True``, the default):
  when the caller threads each child's BaB parent through ``parent=`` /
  ``parents=``, the DeepPoly back-end derives the child's split layer from
  the parent's memoised substitution entry with a rank-1 correction
  (skipping that layer's whole backward substitution), the α-CROWN back-end
  warm-starts its slope ascent from the parent's optimised slopes, and
  candidate-counterexample validation memoises the network forward pass per
  distinct candidate corner (phase-split children overwhelmingly share
  their parent's corner).  The DeepPoly reuse is exact — results are
  identical to the non-incremental path (sequential mode bit-for-bit;
  batched mode up to the same sub-1e-9 GEMM noise that already separates
  batched from sequential evaluation).  The α-CROWN warm start is sound
  but moves the SPSA ascent's starting point, so optimised bounds may
  differ from the cold-start path.

The per-phase time breakdown (``substitute`` / ``correct`` / ``concretize``
and the sources' ``lp``) accumulates in :attr:`ApproximateVerifier.timings`
and is surfaced by the verifiers as ``extras["timings"]``.
"""

from __future__ import annotations

import math
from collections import Counter, OrderedDict
from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from repro.bounds.alpha_crown import AlphaCrownAnalyzer, AlphaCrownConfig
from repro.bounds.cache import DEFAULT_CACHE_SIZE, BoundCache
from repro.bounds.deeppoly import DeepPolyAnalyzer
from repro.bounds.interval import interval_bounds, interval_bounds_batch
from repro.bounds.report import BoundReport
from repro.bounds.splits import ACTIVE, INACTIVE, SplitAssignment
from repro.nn.network import Network
from repro.specs.properties import Specification
from repro.utils.timing import Budget, PhaseTimings
from repro.utils.validation import require

#: Capacity of the candidate-validation memo (distinct candidate corners).
DEFAULT_CANDIDATE_CACHE_SIZE = 2048

#: Supported bound-propagation back-ends.
BOUND_METHODS = ("deeppoly", "alpha-crown", "ibp")


def affordable_phases(budget: Budget, planned: int = 0) -> tuple:
    """The phase-split children a node budget still pays for.

    Mirrors the sequential per-child exhaustion check of the BaB drivers:
    no children once the budget is spent, only the ``r+`` child when a
    single node charge remains, both otherwise.  Wall-clock exhaustion is
    re-checked by the drivers between the children they process.

    ``planned`` is the number of node charges a frontier driver has already
    committed (but not yet charged) for earlier leaves of the same batched
    expansion; with ``planned=0`` this is exactly the sequential rule.  The
    per-child budget semantics are therefore identical whether children are
    expanded one node at a time or frontier-wide.
    """
    if budget.exhausted():
        return ()
    remaining = budget.remaining_nodes()
    if remaining is None:
        return (ACTIVE, INACTIVE)
    left = remaining - planned
    if left < 1:
        return ()
    if left < 2:
        return (ACTIVE,)
    return (ACTIVE, INACTIVE)


@dataclass(frozen=True)
class CascadeConfig:
    """Knobs of the precision-cascade dispatcher (``docs/BATCHING.md``).

    With ``enabled`` off (the default) :meth:`ApproximateVerifier.evaluate_batch`
    runs the single-back-end path unchanged.  On, each batched sub-problem is
    routed through the cheapest stage that *decides* it (proves ``p̂ > 0`` or
    infeasibility); only the survivors of every prefilter stage reach the
    configured exact back-end, re-batched per stage.  Prefilter stages never
    falsify: a negative cheap bound says nothing, so candidates and
    counterexamples always come from the exact stage.

    ``use_ibp``
        Forward interval propagation over the whole batch — near-free, only
        decides very easy children.
    ``use_relaxed``
        The relaxed-incremental DeepPoly mode
        (:meth:`~repro.bounds.deeppoly.DeepPolyAnalyzer.analyze_batch_relaxed`):
        parent relaxations frozen above the split, one fused top pass.
        Requires the bound cache, incremental mode and threaded parents.
    ``use_deeppoly``
        With the ``alpha-crown`` method, run exact DeepPoly as a further
        prefilter before the (much costlier) α-CROWN stage.
    ``adaptive``
        A prefilter stage costs its bound pass on *every* pending child but
        only saves the exact pass on the ones it decides, so on problems
        where children rarely verify it is pure overhead.  With ``adaptive``
        on (the default) each prefilter stage runs unconditionally for its
        first ``warmup_children`` children and is then switched off for the
        rest of the verifier's life whenever its cumulative decide rate
        falls below ``min_decide_rate``.  Gating is deterministic (counts,
        not wall clock) and trajectory-safe: skipping a prefilter only
        sends children to the exact stage, which would have re-derived the
        same verdicts anyway.
    ``warmup_children``
        Children each prefilter stage sees before gating can switch it off.
    ``min_decide_rate``
        Cumulative decided/seen ratio a prefilter stage must sustain after
        warm-up to keep running.  The default approximates the break-even
        point of the relaxed stage (roughly half an exact pass per child).
    """

    enabled: bool = False
    use_ibp: bool = True
    use_relaxed: bool = True
    use_deeppoly: bool = True
    adaptive: bool = True
    warmup_children: int = 128
    min_decide_rate: float = 0.25

    def __post_init__(self) -> None:
        require(self.warmup_children >= 0,
                "warmup_children must be non-negative")
        require(0.0 <= self.min_decide_rate <= 1.0,
                "min_decide_rate must be within [0, 1]")


@dataclass
class AppVerOutcome:
    """One AppVer evaluation of a sub-problem.

    ``stage`` names the cascade stage that produced the outcome (``"ibp"``,
    ``"relaxed"``, ``"deeppoly"`` or ``"exact"``) when the precision cascade
    dispatched it; ``None`` on the single-back-end path.
    """

    p_hat: float
    candidate: Optional[np.ndarray]
    is_valid_counterexample: bool
    report: BoundReport
    stage: Optional[str] = None

    @property
    def verified(self) -> bool:
        """The sub-problem is proven to satisfy the specification."""
        return self.p_hat > 0.0

    @property
    def falsified(self) -> bool:
        """A real counterexample of the original problem was found."""
        return self.p_hat < 0.0 and self.is_valid_counterexample

    @property
    def needs_split(self) -> bool:
        """``p̂ < 0`` with only a spurious counterexample: a false alarm."""
        return not self.verified and not self.falsified


class ApproximateVerifier:
    """AppVer for a fixed network and specification.

    Parameters
    ----------
    network:
        The network under verification.
    spec:
        The verification problem ``(Φ, Ψ)``.
    method:
        One of ``"deeppoly"`` (default), ``"alpha-crown"`` or ``"ibp"``.
    alpha_config:
        Optional α-CROWN optimiser configuration (only used by that method).
    use_cache:
        Enable the split-aware bound cache for the DeepPoly back-end.
        Caching never changes results: a hit returns exactly the bounds the
        analyser would recompute for the same (sub-)problem.
    cache_size:
        Maximum number of cache entries (LRU eviction beyond that).
    incremental:
        Honour parent identity threaded through ``parent=`` / ``parents=``:
        rank-1 split corrections against the parent's substitution entry
        (DeepPoly), parent-slope warm starts (α-CROWN) and the
        candidate-validation memo.  Off, parent arguments are ignored and
        every evaluation runs the full PR-3 path — DeepPoly results are
        identical either way; α-CROWN warm starts change where the slope
        ascent begins (sound, possibly different optimised bounds).
    cascade:
        Optional :class:`CascadeConfig` enabling the precision-cascade
        dispatcher inside :meth:`evaluate_batch`; ``None`` (the default)
        disables it and keeps the batched path byte-for-byte unchanged.
    bound_cache:
        Optional externally owned :class:`~repro.bounds.cache.BoundCache`
        used instead of creating a fresh one — this is how the verification
        service shares bound work *across* jobs on the same problem.  The
        cache's soundness contract is the caller's responsibility: entries
        are only valid for one fixed ``(network, input box, output spec)``
        triple, so a shared instance must be scoped by problem fingerprint
        (the service's per-fingerprint cache bundles guarantee exactly
        that).  Ignored when ``use_cache`` is false.
    """

    def __init__(self, network: Network, spec: Specification, method: str = "deeppoly",
                 alpha_config: Optional[AlphaCrownConfig] = None,
                 use_cache: bool = True, cache_size: int = DEFAULT_CACHE_SIZE,
                 incremental: bool = True,
                 cascade: Optional[CascadeConfig] = None,
                 bound_cache: Optional[BoundCache] = None) -> None:
        require(method in BOUND_METHODS,
                f"unknown bound method {method!r}; choose one of {BOUND_METHODS}")
        self.network = network
        self.spec = spec
        self.method = method
        self.lowered = network.lowered()
        require(self.lowered.input_dim == spec.input_dim,
                "specification input dimension does not match the network")
        require(self.lowered.output_dim == spec.output_dim,
                "specification output dimension does not match the network")
        self._deeppoly = DeepPolyAnalyzer(self.lowered)
        self._alpha = AlphaCrownAnalyzer(self.lowered, alpha_config)
        if not use_cache:
            self.cache: Optional[BoundCache] = None
        elif bound_cache is not None:
            self.cache = bound_cache
        else:
            self.cache = BoundCache(cache_size)
        self.incremental = bool(incremental)
        self.cascade = cascade if cascade is not None else CascadeConfig()
        #: Children decided per cascade stage (``{stage: count}``).
        self.cascade_decided: Counter = Counter()
        #: Children each prefilter stage has bounded (adaptive-gating input).
        self.cascade_seen: Counter = Counter()
        #: Sub-problems routed through the cascade dispatcher.
        self.cascade_children = 0
        self.num_calls = 0
        #: Realised ``evaluate_batch`` sizes: ``{batch_size: call_count}``.
        self.batch_histogram: Counter = Counter()
        #: Per-phase wall-clock breakdown of the bound/LP hot path.
        self.timings = PhaseTimings()
        self._candidate_cache: "OrderedDict[bytes, bool]" = OrderedDict()
        self._fresh_keys: set = set()
        self.candidate_hits = 0
        self.candidate_misses = 0

    @property
    def num_relu_neurons(self) -> int:
        """The constant ``K`` of Def. 1."""
        return self.lowered.num_relu_neurons

    def _validate_candidate(self, candidate: np.ndarray) -> bool:
        """Whether a candidate is a real counterexample, memoised per corner.

        Candidates are box corners determined by coefficient signs, so the
        phase-split children of one frontier round overwhelmingly share
        their parent's corner; validating a corner costs a full network
        forward pass, and the validation is a pure function of the input
        bytes, so memoising it is exact.  Only consulted in incremental
        mode so the non-incremental path stays byte-for-byte PR-3.
        """
        if not self.incremental:
            return self.spec.is_counterexample(self.network, candidate)
        key = candidate.tobytes()
        cached = self._candidate_cache.get(key)
        if cached is not None:
            self._candidate_cache.move_to_end(key)
            if key in self._fresh_keys:
                # First lookup after prevalidation: the miss was already
                # counted there; only later lookups are genuine reuse.
                self._fresh_keys.discard(key)
            else:
                self.candidate_hits += 1
            return cached
        self.candidate_misses += 1
        valid = self.spec.is_counterexample(self.network, candidate)
        self._remember_candidate(key, valid)
        return valid

    def _remember_candidate(self, key: bytes, valid: bool) -> None:
        self._candidate_cache[key] = valid
        while len(self._candidate_cache) > DEFAULT_CANDIDATE_CACHE_SIZE:
            self._candidate_cache.popitem(last=False)

    def _prevalidate_candidates(self, reports: Sequence[BoundReport]) -> None:
        """Validate a round's distinct unseen candidates in one forward pass.

        Each validation is a full network forward; a frontier round yields
        up to ``2K`` candidates of which only a handful of corners are
        distinct and unseen, so one stacked
        :meth:`~repro.specs.properties.Specification.is_counterexample_batch`
        call replaces one pass per candidate.  Incremental mode only — the
        non-incremental path keeps the sequential PR-3 behaviour.  Each
        fresh corner is counted as one miss here and its first follow-up
        lookup is *not* counted as a hit (``_fresh_keys``), so the hit
        counter reports genuine reuse only.
        """
        fresh = {}
        for report in reports:
            candidate = report.candidate_input
            if (candidate is None or report.p_hat is None
                    or not report.p_hat < 0.0):
                continue
            key = candidate.tobytes()
            if key not in self._candidate_cache and key not in fresh:
                fresh[key] = candidate
        if not fresh:
            return
        points = np.stack([np.asarray(c, dtype=float).reshape(-1)
                           for c in fresh.values()])
        valid = self.spec.is_counterexample_batch(self.network, points)
        for position, key in enumerate(fresh):
            self.candidate_misses += 1
            self._fresh_keys.add(key)
            self._remember_candidate(key, bool(valid[position]))

    def _outcome_from_report(self, report: BoundReport) -> AppVerOutcome:
        candidate = report.candidate_input
        valid = False
        if candidate is not None and report.p_hat is not None and report.p_hat < 0.0:
            valid = self._validate_candidate(candidate)
        p_hat = float(report.p_hat) if report.p_hat is not None else float("-inf")
        return AppVerOutcome(p_hat=p_hat, candidate=candidate,
                             is_valid_counterexample=valid, report=report)

    def evaluate(self, splits: Optional[SplitAssignment] = None,
                 method: Optional[str] = None,
                 parent: Optional[SplitAssignment] = None) -> AppVerOutcome:
        """Apply the approximated verifier to the sub-problem ``splits``.

        ``parent`` optionally names the sub-problem's BaB parent; with the
        incremental mode on, a one-split child reuses the parent's memoised
        pass (see the module docstring) — results are unchanged.
        """
        splits = splits or SplitAssignment.empty()
        method = method or self.method
        require(method in BOUND_METHODS, f"unknown bound method {method!r}")
        self.num_calls += 1
        if not self.incremental:
            parent = None
        if method == "ibp":
            report = interval_bounds(self.lowered, self.spec.input_box,
                                     splits=splits, spec=self.spec.output_spec)
        elif method == "alpha-crown":
            report = self._alpha.analyze(self.spec.input_box, splits=splits,
                                         spec=self.spec.output_spec,
                                         parent=parent)
        else:
            report = self._deeppoly.analyze(self.spec.input_box, splits=splits,
                                            spec=self.spec.output_spec,
                                            cache=self.cache, parent=parent,
                                            timings=self.timings)
        return self._outcome_from_report(report)

    def evaluate_batch(self, splits_list: Sequence[Optional[SplitAssignment]],
                       method: Optional[str] = None,
                       parents: Optional[Sequence[Optional[SplitAssignment]]] = None
                       ) -> List[AppVerOutcome]:
        """Apply the approximated verifier to ``B`` sub-problems at once.

        Returns one :class:`AppVerOutcome` per entry of ``splits_list``, in
        order, equal (to floating-point noise far below 1e-9) to what ``B``
        :meth:`evaluate` calls would return; each sub-problem is charged one
        call.  All three back-ends run genuinely batched: DeepPoly and IBP
        carry a leading batch axis through one backward pass, and α-CROWN
        runs its SPSA slope optimisation for all ``B`` sub-problems at once
        (shared perturbation draws, stacked objective evaluations — see
        :meth:`~repro.bounds.alpha_crown.AlphaCrownAnalyzer.analyze_batch`).
        The realised batch size is recorded in :attr:`batch_histogram`.

        ``parents`` (index-aligned with ``splits_list``, ``None`` entries
        allowed) threads each sub-problem's BaB parent for the incremental
        reuse paths; ignored when ``incremental`` is off.

        With :attr:`cascade` enabled (and a non-IBP method), the batch is
        instead routed through the precision cascade: cheap prefilter stages
        decide (verify) whichever children they can, and only the survivors
        are re-batched into the configured exact back-end.  Charges
        (``num_calls``) and the realised batch size are recorded once at
        entry either way, so budget accounting is identical cascade on or
        off; each outcome's :attr:`AppVerOutcome.stage` names the stage that
        decided it.
        """
        method = method or self.method
        require(method in BOUND_METHODS, f"unknown bound method {method!r}")
        splits_list = [s or SplitAssignment.empty() for s in splits_list]
        self.num_calls += len(splits_list)
        if not splits_list:
            return []
        self.batch_histogram[len(splits_list)] += 1
        if not self.incremental:
            parents = None
        stages: Optional[List[str]] = None
        if self.cascade.enabled and method != "ibp":
            reports, stages = self._cascade_reports(splits_list, method, parents)
        elif method == "ibp":
            reports = interval_bounds_batch(self.lowered, self.spec.input_box,
                                            splits_list, spec=self.spec.output_spec)
        elif method == "alpha-crown":
            reports = self._alpha.analyze_batch(self.spec.input_box, splits_list,
                                                spec=self.spec.output_spec,
                                                parents=parents)
        else:
            reports = self._deeppoly.analyze_batch(self.spec.input_box, splits_list,
                                                   spec=self.spec.output_spec,
                                                   cache=self.cache,
                                                   parents=parents,
                                                   timings=self.timings)
        if self.incremental and len(reports) > 1:
            self._prevalidate_candidates(reports)
        outcomes = [self._outcome_from_report(report) for report in reports]
        if stages is not None:
            for outcome, stage in zip(outcomes, stages):
                outcome.stage = stage
        return outcomes

    def _cascade_reports(self, splits_list: Sequence[SplitAssignment],
                         method: str,
                         parents: Optional[Sequence[Optional[SplitAssignment]]]
                         ) -> tuple:
        """Route each sub-problem through the cheapest stage that decides it.

        Stage order: IBP → relaxed-incremental DeepPoly → (with the
        ``alpha-crown`` method) exact DeepPoly → the exact back-end; the
        stacked leaf LP stays with the engine's decided-leaf resolution.  A
        prefilter stage only ever decides *verified* children (``p̂ > 0``):
        its bounds are sound, so a positive bound is a proof, while a
        negative one says nothing — those children fall through, which keeps
        candidate counterexamples (and thus falsifications) the exact
        stage's alone.  Survivors are re-batched per stage.  Returns
        ``(reports, stages)``, index-aligned with ``splits_list``.

        The IBP stage additionally requires a *finite* positive bound.  Its
        forward pass clips every interval with the split phases, so it
        routinely proves a split combination empty (``p̂ = +inf``) where the
        exact backward pass still reports a finite negative bound and
        queues the child; letting those decisions through would prune
        subtrees the exact path explores and change node charges.  The
        relaxed stage keeps its ``+inf`` decisions: its infeasibility test
        is the same ``_correct_neuron`` conflict the exact rank-1 path
        applies, and a phase conflict on the parent's (looser) bounds
        implies the same conflict on the child's.

        With :attr:`CascadeConfig.adaptive` on, each prefilter stage is
        skipped once its cumulative decide rate after warm-up drops below
        ``min_decide_rate`` — see the config docstring for the rationale.
        """
        total = len(splits_list)
        reports: List[Optional[BoundReport]] = [None] * total
        stages: List[str] = ["exact"] * total
        pending = list(range(total))
        self.cascade_children += total

        def _stage_active(stage_name):
            # Adaptive gating: a prefilter runs through its warm-up window,
            # then only while its cumulative decide rate pays for the extra
            # bound pass.  Purely count-based, hence deterministic.
            if not self.cascade.adaptive:
                return True
            seen = self.cascade_seen[stage_name]
            if seen < self.cascade.warmup_children:
                return True
            return (self.cascade_decided[stage_name]
                    >= self.cascade.min_decide_rate * seen)

        def _keep_decided(stage_name, stage_reports, require_finite=False):
            self.cascade_seen[stage_name] += len(pending)
            survivors = []
            for position, index in enumerate(pending):
                report = stage_reports[position]
                decided = (report is not None and report.p_hat is not None
                           and report.p_hat > 0.0)
                if decided and require_finite and not math.isfinite(report.p_hat):
                    decided = False
                if decided:
                    reports[index] = report
                    stages[index] = stage_name
                    self.cascade_decided[stage_name] += 1
                else:
                    survivors.append(index)
            return survivors

        if pending and self.cascade.use_ibp and _stage_active("ibp"):
            with self.timings.measure("cascade_ibp"):
                stage_reports = interval_bounds_batch(
                    self.lowered, self.spec.input_box,
                    [splits_list[i] for i in pending],
                    spec=self.spec.output_spec)
            pending = _keep_decided("ibp", stage_reports, require_finite=True)

        if (pending and self.cascade.use_relaxed and self.cache is not None
                and parents is not None and _stage_active("relaxed")):
            with self.timings.measure("cascade_relaxed"):
                stage_reports = self._deeppoly.analyze_batch_relaxed(
                    self.spec.input_box, [splits_list[i] for i in pending],
                    spec=self.spec.output_spec, cache=self.cache,
                    parents=[parents[i] for i in pending])
            pending = _keep_decided("relaxed", stage_reports)

        if (pending and method == "alpha-crown" and self.cascade.use_deeppoly
                and _stage_active("deeppoly")):
            sub_parents = ([parents[i] for i in pending]
                           if parents is not None else None)
            with self.timings.measure("cascade_deeppoly"):
                stage_reports = self._deeppoly.analyze_batch(
                    self.spec.input_box, [splits_list[i] for i in pending],
                    spec=self.spec.output_spec, cache=self.cache,
                    parents=sub_parents, timings=self.timings)
            pending = _keep_decided("deeppoly", stage_reports)

        if pending:
            sub_splits = [splits_list[i] for i in pending]
            sub_parents = ([parents[i] for i in pending]
                           if parents is not None else None)
            with self.timings.measure("cascade_exact"):
                if method == "alpha-crown":
                    stage_reports = self._alpha.analyze_batch(
                        self.spec.input_box, sub_splits,
                        spec=self.spec.output_spec, parents=sub_parents)
                else:
                    stage_reports = self._deeppoly.analyze_batch(
                        self.spec.input_box, sub_splits,
                        spec=self.spec.output_spec, cache=self.cache,
                        parents=sub_parents, timings=self.timings)
            for position, index in enumerate(pending):
                reports[index] = stage_reports[position]
            self.cascade_decided["exact"] += len(pending)
        return reports, stages

    def cache_stats(self) -> dict:
        """Cache hit/miss counters plus the realised batch-size statistics.

        The cache counters are zero when caching is off.  ``batch_histogram``
        maps each realised :meth:`evaluate_batch` size to how many calls used
        it, and ``mean_realised_batch`` is the mean batch size over those
        calls (0.0 before any batched call) — this is how frontier drivers
        make the batch sizes they actually achieve observable.
        """
        if self.cache is None:
            stats = {"layer_hits": 0, "layer_misses": 0, "report_hits": 0,
                     "report_misses": 0, "evictions": 0, "layer_evictions": 0,
                     "report_evictions": 0, "delta_corrections": 0}
        else:
            stats = self.cache.stats.as_dict()
        stats["candidate_hits"] = self.candidate_hits
        stats["candidate_misses"] = self.candidate_misses
        stats["alpha_warm_starts"] = self._alpha.warm_starts
        stats.update(self.batch_stats())
        return stats

    def cascade_stats(self) -> dict:
        """Per-stage decide counts and seconds of the precision cascade.

        Schema (the ``extras["cascade"]`` block of the verifiers):
        ``enabled``; ``children`` — sub-problems routed through the cascade
        dispatcher; ``decided`` — children decided per stage; ``seen`` —
        children each prefilter stage bounded (the adaptive-gating input:
        ``seen`` stops growing once the stage is gated off); ``seconds`` —
        wall-clock per stage from :attr:`timings`; ``pre_exact_fraction`` —
        the share of children decided before the exact stage (0.0 before any
        cascade call).
        """
        stage_names = ("ibp", "relaxed", "deeppoly", "exact")
        decided = {stage: int(self.cascade_decided.get(stage, 0))
                   for stage in stage_names}
        pre_exact = self.cascade_children - decided["exact"]
        return {
            "enabled": bool(self.cascade.enabled),
            "children": int(self.cascade_children),
            "decided": decided,
            "seen": {stage: int(self.cascade_seen.get(stage, 0))
                     for stage in stage_names if stage != "exact"},
            "seconds": {stage: self.timings.seconds(f"cascade_{stage}")
                        for stage in stage_names},
            "pre_exact_fraction": (pre_exact / self.cascade_children
                                   if self.cascade_children else 0.0),
        }

    def batch_stats(self) -> dict:
        """Histogram and mean of realised :meth:`evaluate_batch` sizes."""
        calls = sum(self.batch_histogram.values())
        total = sum(size * count for size, count in self.batch_histogram.items())
        return {
            "batch_histogram": {int(size): int(count) for size, count
                                in sorted(self.batch_histogram.items())},
            "batched_calls": calls,
            "mean_realised_batch": (total / calls) if calls else 0.0,
        }

    def reset_counter(self) -> None:
        """Zero the AppVer call counter (between benchmark phases)."""
        self.num_calls = 0
