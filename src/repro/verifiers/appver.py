"""The ``AppVer`` oracle used by every BaB-style verifier in the library.

An approximated verifier, applied to a (sub-)problem, returns (§III):

* ``p̂`` — a sound lower bound of the specification margin over the
  sub-problem (positive means the sub-problem is verified);
* ``x̂`` — a candidate counterexample, only meaningful when ``p̂ < 0``;
* whether ``x̂`` is *valid*, i.e. a real counterexample of the original
  problem (``valid(x̂)`` in Def. 1 / Alg. 1).

This module wraps the bound-propagation analysers of :mod:`repro.bounds`
behind that interface and counts calls, which is how all verifiers charge
their node budgets.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.bounds.alpha_crown import AlphaCrownAnalyzer, AlphaCrownConfig
from repro.bounds.deeppoly import DeepPolyAnalyzer
from repro.bounds.interval import interval_bounds
from repro.bounds.report import BoundReport
from repro.bounds.splits import SplitAssignment
from repro.nn.network import Network
from repro.specs.properties import Specification
from repro.utils.validation import require

#: Supported bound-propagation back-ends.
BOUND_METHODS = ("deeppoly", "alpha-crown", "ibp")


@dataclass
class AppVerOutcome:
    """One AppVer evaluation of a sub-problem."""

    p_hat: float
    candidate: Optional[np.ndarray]
    is_valid_counterexample: bool
    report: BoundReport

    @property
    def verified(self) -> bool:
        """The sub-problem is proven to satisfy the specification."""
        return self.p_hat > 0.0

    @property
    def falsified(self) -> bool:
        """A real counterexample of the original problem was found."""
        return self.p_hat < 0.0 and self.is_valid_counterexample

    @property
    def needs_split(self) -> bool:
        """``p̂ < 0`` with only a spurious counterexample: a false alarm."""
        return not self.verified and not self.falsified


class ApproximateVerifier:
    """AppVer for a fixed network and specification.

    Parameters
    ----------
    network:
        The network under verification.
    spec:
        The verification problem ``(Φ, Ψ)``.
    method:
        One of ``"deeppoly"`` (default), ``"alpha-crown"`` or ``"ibp"``.
    alpha_config:
        Optional α-CROWN optimiser configuration (only used by that method).
    """

    def __init__(self, network: Network, spec: Specification, method: str = "deeppoly",
                 alpha_config: Optional[AlphaCrownConfig] = None) -> None:
        require(method in BOUND_METHODS,
                f"unknown bound method {method!r}; choose one of {BOUND_METHODS}")
        self.network = network
        self.spec = spec
        self.method = method
        self.lowered = network.lowered()
        require(self.lowered.input_dim == spec.input_dim,
                "specification input dimension does not match the network")
        require(self.lowered.output_dim == spec.output_dim,
                "specification output dimension does not match the network")
        self._deeppoly = DeepPolyAnalyzer(self.lowered)
        self._alpha = AlphaCrownAnalyzer(self.lowered, alpha_config)
        self.num_calls = 0

    @property
    def num_relu_neurons(self) -> int:
        """The constant ``K`` of Def. 1."""
        return self.lowered.num_relu_neurons

    def evaluate(self, splits: Optional[SplitAssignment] = None,
                 method: Optional[str] = None) -> AppVerOutcome:
        """Apply the approximated verifier to the sub-problem ``splits``."""
        splits = splits or SplitAssignment.empty()
        method = method or self.method
        require(method in BOUND_METHODS, f"unknown bound method {method!r}")
        self.num_calls += 1
        if method == "ibp":
            report = interval_bounds(self.lowered, self.spec.input_box,
                                     splits=splits, spec=self.spec.output_spec)
        elif method == "alpha-crown":
            report = self._alpha.analyze(self.spec.input_box, splits=splits,
                                         spec=self.spec.output_spec)
        else:
            report = self._deeppoly.analyze(self.spec.input_box, splits=splits,
                                            spec=self.spec.output_spec)
        candidate = report.candidate_input
        valid = False
        if candidate is not None and report.p_hat is not None and report.p_hat < 0.0:
            valid = self.spec.is_counterexample(self.network, candidate)
        p_hat = float(report.p_hat) if report.p_hat is not None else float("-inf")
        return AppVerOutcome(p_hat=p_hat, candidate=candidate,
                             is_valid_counterexample=valid, report=report)

    def reset_counter(self) -> None:
        self.num_calls = 0
