"""The ``AppVer`` oracle used by every BaB-style verifier in the library.

An approximated verifier, applied to a (sub-)problem, returns (§III):

* ``p̂`` — a sound lower bound of the specification margin over the
  sub-problem (positive means the sub-problem is verified);
* ``x̂`` — a candidate counterexample, only meaningful when ``p̂ < 0``;
* whether ``x̂`` is *valid*, i.e. a real counterexample of the original
  problem (``valid(x̂)`` in Def. 1 / Alg. 1).

This module wraps the bound-propagation analysers of :mod:`repro.bounds`
behind that interface and counts calls, which is how all verifiers charge
their node budgets.

Two throughput features back the hot path (see ``docs/BATCHING.md``):

* :meth:`ApproximateVerifier.evaluate_batch` bounds ``B`` sub-problems in
  one batched pass for every back-end — DeepPoly and IBP via a leading
  batch axis through the backward substitution, α-CROWN via stacked SPSA
  slope optimisation.  The frontier-wide drivers feed it the phase-split
  children of up to ``frontier_size`` nodes at once, and the realised batch
  sizes are recorded in :attr:`ApproximateVerifier.batch_histogram`;
* a split-aware :class:`~repro.bounds.cache.BoundCache` (on by default)
  memoises per-layer pre-activation bounds keyed by the split-assignment
  prefix relevant to each layer, plus whole reports keyed by the full
  canonical assignment, so a child sub-problem only recomputes layers
  at-or-below its newly decided neuron.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from repro.bounds.alpha_crown import AlphaCrownAnalyzer, AlphaCrownConfig
from repro.bounds.cache import DEFAULT_CACHE_SIZE, BoundCache
from repro.bounds.deeppoly import DeepPolyAnalyzer
from repro.bounds.interval import interval_bounds, interval_bounds_batch
from repro.bounds.report import BoundReport
from repro.bounds.splits import ACTIVE, INACTIVE, SplitAssignment
from repro.nn.network import Network
from repro.specs.properties import Specification
from repro.utils.timing import Budget
from repro.utils.validation import require

#: Supported bound-propagation back-ends.
BOUND_METHODS = ("deeppoly", "alpha-crown", "ibp")


def affordable_phases(budget: Budget, planned: int = 0) -> tuple:
    """The phase-split children a node budget still pays for.

    Mirrors the sequential per-child exhaustion check of the BaB drivers:
    no children once the budget is spent, only the ``r+`` child when a
    single node charge remains, both otherwise.  Wall-clock exhaustion is
    re-checked by the drivers between the children they process.

    ``planned`` is the number of node charges a frontier driver has already
    committed (but not yet charged) for earlier leaves of the same batched
    expansion; with ``planned=0`` this is exactly the sequential rule.  The
    per-child budget semantics are therefore identical whether children are
    expanded one node at a time or frontier-wide.
    """
    if budget.exhausted():
        return ()
    remaining = budget.remaining_nodes()
    if remaining is None:
        return (ACTIVE, INACTIVE)
    left = remaining - planned
    if left < 1:
        return ()
    if left < 2:
        return (ACTIVE,)
    return (ACTIVE, INACTIVE)


@dataclass
class AppVerOutcome:
    """One AppVer evaluation of a sub-problem."""

    p_hat: float
    candidate: Optional[np.ndarray]
    is_valid_counterexample: bool
    report: BoundReport

    @property
    def verified(self) -> bool:
        """The sub-problem is proven to satisfy the specification."""
        return self.p_hat > 0.0

    @property
    def falsified(self) -> bool:
        """A real counterexample of the original problem was found."""
        return self.p_hat < 0.0 and self.is_valid_counterexample

    @property
    def needs_split(self) -> bool:
        """``p̂ < 0`` with only a spurious counterexample: a false alarm."""
        return not self.verified and not self.falsified


class ApproximateVerifier:
    """AppVer for a fixed network and specification.

    Parameters
    ----------
    network:
        The network under verification.
    spec:
        The verification problem ``(Φ, Ψ)``.
    method:
        One of ``"deeppoly"`` (default), ``"alpha-crown"`` or ``"ibp"``.
    alpha_config:
        Optional α-CROWN optimiser configuration (only used by that method).
    use_cache:
        Enable the split-aware bound cache for the DeepPoly back-end.
        Caching never changes results: a hit returns exactly the bounds the
        analyser would recompute for the same (sub-)problem.
    cache_size:
        Maximum number of cache entries (LRU eviction beyond that).
    """

    def __init__(self, network: Network, spec: Specification, method: str = "deeppoly",
                 alpha_config: Optional[AlphaCrownConfig] = None,
                 use_cache: bool = True, cache_size: int = DEFAULT_CACHE_SIZE) -> None:
        require(method in BOUND_METHODS,
                f"unknown bound method {method!r}; choose one of {BOUND_METHODS}")
        self.network = network
        self.spec = spec
        self.method = method
        self.lowered = network.lowered()
        require(self.lowered.input_dim == spec.input_dim,
                "specification input dimension does not match the network")
        require(self.lowered.output_dim == spec.output_dim,
                "specification output dimension does not match the network")
        self._deeppoly = DeepPolyAnalyzer(self.lowered)
        self._alpha = AlphaCrownAnalyzer(self.lowered, alpha_config)
        self.cache: Optional[BoundCache] = (BoundCache(cache_size) if use_cache
                                            else None)
        self.num_calls = 0
        #: Realised ``evaluate_batch`` sizes: ``{batch_size: call_count}``.
        self.batch_histogram: Counter = Counter()

    @property
    def num_relu_neurons(self) -> int:
        """The constant ``K`` of Def. 1."""
        return self.lowered.num_relu_neurons

    def _outcome_from_report(self, report: BoundReport) -> AppVerOutcome:
        candidate = report.candidate_input
        valid = False
        if candidate is not None and report.p_hat is not None and report.p_hat < 0.0:
            valid = self.spec.is_counterexample(self.network, candidate)
        p_hat = float(report.p_hat) if report.p_hat is not None else float("-inf")
        return AppVerOutcome(p_hat=p_hat, candidate=candidate,
                             is_valid_counterexample=valid, report=report)

    def evaluate(self, splits: Optional[SplitAssignment] = None,
                 method: Optional[str] = None) -> AppVerOutcome:
        """Apply the approximated verifier to the sub-problem ``splits``."""
        splits = splits or SplitAssignment.empty()
        method = method or self.method
        require(method in BOUND_METHODS, f"unknown bound method {method!r}")
        self.num_calls += 1
        if method == "ibp":
            report = interval_bounds(self.lowered, self.spec.input_box,
                                     splits=splits, spec=self.spec.output_spec)
        elif method == "alpha-crown":
            report = self._alpha.analyze(self.spec.input_box, splits=splits,
                                         spec=self.spec.output_spec)
        else:
            report = self._deeppoly.analyze(self.spec.input_box, splits=splits,
                                            spec=self.spec.output_spec,
                                            cache=self.cache)
        return self._outcome_from_report(report)

    def evaluate_batch(self, splits_list: Sequence[Optional[SplitAssignment]],
                       method: Optional[str] = None) -> List[AppVerOutcome]:
        """Apply the approximated verifier to ``B`` sub-problems at once.

        Returns one :class:`AppVerOutcome` per entry of ``splits_list``, in
        order, equal (to floating-point noise far below 1e-9) to what ``B``
        :meth:`evaluate` calls would return; each sub-problem is charged one
        call.  All three back-ends run genuinely batched: DeepPoly and IBP
        carry a leading batch axis through one backward pass, and α-CROWN
        runs its SPSA slope optimisation for all ``B`` sub-problems at once
        (shared perturbation draws, stacked objective evaluations — see
        :meth:`~repro.bounds.alpha_crown.AlphaCrownAnalyzer.analyze_batch`).
        The realised batch size is recorded in :attr:`batch_histogram`.
        """
        method = method or self.method
        require(method in BOUND_METHODS, f"unknown bound method {method!r}")
        splits_list = [s or SplitAssignment.empty() for s in splits_list]
        self.num_calls += len(splits_list)
        if not splits_list:
            return []
        self.batch_histogram[len(splits_list)] += 1
        if method == "ibp":
            reports = interval_bounds_batch(self.lowered, self.spec.input_box,
                                            splits_list, spec=self.spec.output_spec)
        elif method == "alpha-crown":
            reports = self._alpha.analyze_batch(self.spec.input_box, splits_list,
                                                spec=self.spec.output_spec)
        else:
            reports = self._deeppoly.analyze_batch(self.spec.input_box, splits_list,
                                                   spec=self.spec.output_spec,
                                                   cache=self.cache)
        return [self._outcome_from_report(report) for report in reports]

    def cache_stats(self) -> dict:
        """Cache hit/miss counters plus the realised batch-size statistics.

        The cache counters are zero when caching is off.  ``batch_histogram``
        maps each realised :meth:`evaluate_batch` size to how many calls used
        it, and ``mean_realised_batch`` is the mean batch size over those
        calls (0.0 before any batched call) — this is how frontier drivers
        make the batch sizes they actually achieve observable.
        """
        if self.cache is None:
            stats = {"layer_hits": 0, "layer_misses": 0, "report_hits": 0,
                     "report_misses": 0, "evictions": 0}
        else:
            stats = self.cache.stats.as_dict()
        stats.update(self.batch_stats())
        return stats

    def batch_stats(self) -> dict:
        """Histogram and mean of realised :meth:`evaluate_batch` sizes."""
        calls = sum(self.batch_histogram.values())
        total = sum(size * count for size, count in self.batch_histogram.items())
        return {
            "batch_histogram": {int(size): int(count) for size, count
                                in sorted(self.batch_histogram.items())},
            "batched_calls": calls,
            "mean_realised_batch": (total / calls) if calls else 0.0,
        }

    def reset_counter(self) -> None:
        """Zero the AppVer call counter (between benchmark phases)."""
        self.num_calls = 0
