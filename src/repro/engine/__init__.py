"""The shared frontier-driver engine used by every BaB-style verifier.

:mod:`repro.engine.driver` owns the gather → flatten → batched-bound →
attach loop that ABONN, the BaB baseline, and the αβ-CROWN baseline all
execute; the verifiers only supply a :class:`~repro.engine.driver.WorkSource`
describing where sub-problems come from and where their children go.  See
``docs/ENGINE.md`` for the full contract.
"""

from repro.engine.driver import (
    DriverRun,
    DriverVerdict,
    Expansion,
    FrontierDriver,
    LinearWorkSource,
    WorkSource,
)

__all__ = [
    "DriverRun",
    "DriverVerdict",
    "Expansion",
    "FrontierDriver",
    "LinearWorkSource",
    "WorkSource",
]
