"""The shared frontier-driver engine behind every BaB-style verifier.

Before this module existed, the frontier loop — gather up to ``K``
sub-problems, flatten their phase-split children, bound all of them through
one batched AppVer call, then attach the results — was implemented three
times (in ABONN, the BaB baseline, and the αβ-CROWN baseline), each copy
re-stating the budget invariants.  :class:`FrontierDriver` now owns that
loop exactly once, parameterised over a :class:`WorkSource` that describes
*where sub-problems come from* (an MCTS tree, a FIFO/LIFO queue, a
best-first heap) and *where their children go*.

One driver **round** is:

1. **Gather** — pop up to ``frontier_size`` work items from the source.
   Items whose branching heuristic finds no unstable neuron are *fully
   phase-decided leaves*: the driver charges one node for each (the leaf LP
   costs about one bound computation) and defers them for batched exact
   resolution.  For every splittable item the driver asks
   :func:`~repro.verifiers.appver.affordable_phases` which children the
   node budget still pays for, accounting for charges already committed to
   earlier items of the same round (``planned``); a starved item is handed
   back to the source (`push-back`_), and a truncated expansion (only the
   ``r+`` child affordable) ends the gather.
2. **Resolve** — all deferred leaves are resolved in pop order through one
   :func:`~repro.verifiers.milp.solve_leaf_lp_batch` call (the source owns
   the call so it can thread its :class:`~repro.bounds.cache.LpCache`).
3. **Expand** — the children of the whole round are flattened into one
   ``evaluate_batch`` call on the driver's
   :class:`~repro.verifiers.appver.ApproximateVerifier`; this is the only
   place in the library where a search driver reaches the batched bound
   back-ends, so realised batch sizes are accounted exactly once.  Each
   child is dispatched together with its *parent identity* (the gathered
   item's own split assignment, via :meth:`WorkSource.item_splits`), which
   lets the incremental bound path resolve the ≤2K children of a round as
   rank-1 deltas against at most K memoised parent passes.
4. **Attach** — outcomes are handed back to the source one child at a time
   in selection order, each preceded by the sequential wall-clock re-check
   and followed by one node charge, so a frontier of ``K`` behaves at
   budget boundaries exactly like ``K`` sequential iterations.

.. _push-back:

**Budget-starvation push-back.**  When ``affordable_phases`` returns no
phases for a gathered item, the sub-problem is *unresolved but unexpanded*.
Queue/heap sources must push the item back so the unresolved sub-problem
keeps the source non-empty and exhaustion surfaces as TIMEOUT — never as a
spurious VERIFIED from a drained queue; when nothing else was gathered they
return TIMEOUT immediately.  Tree sources simply leave the leaf in the tree
(it stays selectable) and let the main loop re-check the budget.

Verdicts flow back as :class:`DriverVerdict` values; ``None`` from a hook
always means "keep going".  The driver never constructs
:class:`~repro.verifiers.result.VerificationResult` objects — mapping a
verdict to the verifier's result format (extras, statistics) stays with the
verifier.
"""

from __future__ import annotations

import abc
from collections import Counter
from dataclasses import dataclass
from typing import Any, List, Optional, Sequence, Tuple

import numpy as np

from repro.bounds.splits import SplitAssignment
from repro.utils.timing import Budget
from repro.utils.validation import require
from repro.verifiers.appver import (
    ApproximateVerifier,
    AppVerOutcome,
    affordable_phases,
)
from repro.verifiers.result import VerificationStatus

#: A ReLU neuron identified by ``(layer, unit)``.
Neuron = Tuple[int, int]


@dataclass
class DriverVerdict:
    """A terminal outcome of a driver run (or of one of its hooks).

    ``status`` is the verification verdict; ``counterexample`` is a real,
    validated counterexample when the status is FALSIFIED; ``bound`` is the
    bound the owning verifier wants reported (sources that track the root
    ``p̂`` attach it to their TIMEOUT verdicts).
    """

    status: VerificationStatus
    counterexample: Optional[np.ndarray] = None
    bound: Optional[float] = None


@dataclass
class Expansion:
    """One gathered work item together with its planned phase-split children.

    ``item`` is whatever the :class:`WorkSource` yields (an MCTS node, a BaB
    node, a heap entry); ``phases`` are the affordable child phases in
    expansion order and ``child_splits`` the corresponding split
    assignments, index-aligned with ``phases``.
    """

    item: Any
    neuron: Neuron
    phases: Tuple[int, ...]
    child_splits: List[SplitAssignment]


class WorkSource(abc.ABC):
    """What a verifier must provide to run on the :class:`FrontierDriver`.

    A source is constructed per ``verify()`` run and owns the run's mutable
    search state (tree / queue / heap, statistics, the budget reference used
    by probing heuristics, the LP cache).  Hooks returning
    ``Optional[DriverVerdict]`` end the run when they return a verdict and
    continue otherwise.
    """

    @abc.abstractmethod
    def has_work(self) -> bool:
        """Whether any unresolved sub-problem remains (checked per round)."""

    def begin_round(self, budget: Budget) -> bool:
        """Prepare one round; ``False`` skips gathering for this round.

        Tree sources run their frontier selection here (and handle a
        dead-ended descent by back-propagating before returning ``False``);
        queue/heap sources need no preparation.
        """
        return True

    @abc.abstractmethod
    def next_item(self, budget: Budget, gathered: int, planned: int) -> Any:
        """Pop the next work item, or ``None`` to stop gathering this round.

        ``gathered`` is the number of expansions already planned this round
        and ``planned`` the node charges they have committed; sources use
        them for their pre-pop budget policy.  Returning a
        :class:`DriverVerdict` aborts the run (after deferred leaves are
        resolved) — this is how queue/heap sources surface wall-clock
        TIMEOUT when nothing could be gathered.
        """

    @abc.abstractmethod
    def select_neuron(self, item: Any) -> Optional[Neuron]:
        """Pick the item's branching neuron, or ``None`` for a decided leaf."""

    def item_splits(self, item: Any) -> Optional[SplitAssignment]:
        """The item's own split assignment (the parent of its children).

        The driver threads it through ``evaluate_batch(parents=...)`` so the
        incremental bound path can reuse the parent's memoised pass; return
        ``None`` (the default) to opt a source out of parent threading.
        """
        return None

    @abc.abstractmethod
    def child_splits(self, item: Any, neuron: Neuron,
                     phases: Sequence[int]) -> List[SplitAssignment]:
        """Split assignments of the item's children, aligned with ``phases``."""

    @abc.abstractmethod
    def push_back(self, item: Any, gathered: int) -> Optional[DriverVerdict]:
        """Budget starvation: no child of ``item`` is affordable.

        Queue/heap sources re-enqueue the item (and return TIMEOUT when
        ``gathered`` is zero, i.e. the whole round starved); tree sources
        leave the leaf selectable and return ``None``.
        """

    @abc.abstractmethod
    def resolve_leaves(self, items: List[Any]) -> Optional[DriverVerdict]:
        """Exactly resolve fully phase-decided leaves, in pop order.

        The driver has already charged one node per leaf.  Sources resolve
        all leaves through one :func:`~repro.verifiers.milp.solve_leaf_lp_batch`
        call (threading their LP cache) and apply the outcomes in order,
        returning FALSIFIED as soon as an optimum yields a real
        counterexample.
        """

    @abc.abstractmethod
    def attach(self, item: Any, phase: int, splits: SplitAssignment,
               outcome: AppVerOutcome) -> Optional[DriverVerdict]:
        """Attach one bounded child (already charged) to the search state."""

    def attach_exhausted(self) -> Optional[DriverVerdict]:
        """Wall-clock ran out between two children of the same round.

        Queue/heap sources return TIMEOUT; tree sources return ``None`` so
        the driver just stops attaching (the partial expansion stays in the
        tree and the main loop surfaces TIMEOUT).
        """
        return None

    def leaf_attached(self, item: Any, added: int) -> bool:
        """All of ``item``'s children for this round are attached.

        ``added`` is at least 1.  Tree sources back-propagate here and
        return ``True`` to stop attaching the rest of the round (a real
        counterexample reached the root); others return ``False``.
        """
        return False

    def round_complete(self) -> Optional[DriverVerdict]:
        """Inspect the search state after a round (e.g. the root reward)."""
        return None

    def truncated(self) -> Optional[DriverVerdict]:
        """The round's last expansion was truncated to a single child.

        Queue/heap sources return TIMEOUT (the budget affords no sibling and
        the search cannot make further progress this run); tree sources
        return ``None`` and let the main loop re-check the budget.
        """
        return None

    @abc.abstractmethod
    def timeout(self) -> DriverVerdict:
        """The TIMEOUT verdict (sources attach their reported bound)."""

    @abc.abstractmethod
    def drained(self) -> DriverVerdict:
        """Verdict when no work remains: VERIFIED, or UNKNOWN when any leaf
        resisted exact resolution."""


class LinearWorkSource(WorkSource):
    """Shared behaviour of sources backed by a linear container (queue/heap).

    Unlike a tree source, a linear source *removes* items when popping, so
    the soundness-critical invariants live here exactly once: budget
    starvation re-inserts the popped item (``_reinsert``) so the unresolved
    sub-problem keeps the container non-empty and exhaustion surfaces as
    TIMEOUT — never as a spurious VERIFIED from a drained container — and
    every exhaustion verdict (``timeout``/``truncated``/``attach_exhausted``)
    carries the root bound.  Subclasses provide ``_pop`` (which may also
    record statistics) and ``_reinsert`` (which must undo them).
    """

    def __init__(self, root_bound: float) -> None:
        self.root_bound = root_bound
        self.has_unknown_leaf = False

    def next_item(self, budget: Budget, gathered: int, planned: int) -> Any:
        """Pop the next sub-problem, minding the wall clock before the pop."""
        if not self.has_work():
            return None
        if budget.exhausted():
            if gathered:
                return None  # charge the gathered batch; TIMEOUT surfaces next round
            return self.timeout()
        return self._pop()

    def push_back(self, item: Any, gathered: int) -> Optional[DriverVerdict]:
        """Budget starvation: re-insert the item (TIMEOUT when round empty)."""
        if not gathered:
            return self.timeout()
        self._reinsert(item)
        return None

    def attach_exhausted(self) -> Optional[DriverVerdict]:
        """Wall-clock exhaustion between two children is a TIMEOUT."""
        return self.timeout()

    def truncated(self) -> Optional[DriverVerdict]:
        """A truncated expansion means the budget is effectively spent."""
        return self.timeout()

    def timeout(self) -> DriverVerdict:
        """TIMEOUT carrying the root bound, as the sequential loops reported."""
        return DriverVerdict(VerificationStatus.TIMEOUT, bound=self.root_bound)

    def drained(self) -> DriverVerdict:
        """Container empty: VERIFIED, or UNKNOWN if any leaf resisted the LP."""
        status = (VerificationStatus.UNKNOWN if self.has_unknown_leaf
                  else VerificationStatus.VERIFIED)
        return DriverVerdict(status)

    @abc.abstractmethod
    def _pop(self):
        """Remove and return the next sub-problem in exploration order."""

    @abc.abstractmethod
    def _reinsert(self, item) -> None:
        """Undo a pop so the item is the next to be re-popped."""


class DriverRun:
    """A resumable :class:`FrontierDriver` run: one :meth:`step` per round.

    The driver's main loop — check work, check the wall clock, execute one
    gather → resolve → expand → attach round, consult ``round_complete`` —
    is re-entrant at round boundaries, which is what lets a scheduler
    multiplex many verification jobs over one process: each job advances one
    round at a time and yields between rounds, with all budget accounting
    (``affordable_phases``, per-child charges, wall-clock re-checks)
    happening inside the round exactly as in an uninterrupted
    :meth:`FrontierDriver.run`.  Stepping a run to completion is
    byte-identical to calling ``run`` directly; ``run`` is itself
    implemented as a step loop.
    """

    def __init__(self, driver: "FrontierDriver", source: WorkSource,
                 budget: Budget) -> None:
        self.driver = driver
        self.source = source
        self.budget = budget
        self.rounds = 0
        self._verdict: Optional[DriverVerdict] = None

    @property
    def verdict(self) -> Optional[DriverVerdict]:
        """The terminal verdict, or ``None`` while the run is in progress."""
        return self._verdict

    def step(self) -> Optional[DriverVerdict]:
        """Execute at most one driver round.

        Returns the terminal :class:`DriverVerdict` once the run finishes
        (and on every call thereafter), ``None`` while more rounds remain.
        The order of checks — work, wall clock, round, ``round_complete`` —
        is exactly the main loop's, so interleaving ``step`` calls of
        several runs cannot change any single run's trajectory.
        """
        if self._verdict is not None:
            return self._verdict
        if not self.source.has_work():
            self._verdict = self.source.drained()
            return self._verdict
        if self.budget.exhausted():
            self._verdict = self.source.timeout()
            return self._verdict
        self.rounds += 1
        verdict = self.driver._round(self.source, self.budget)
        if verdict is None:
            verdict = self.source.round_complete()
        self._verdict = verdict
        return verdict


class FrontierDriver:
    """Runs a :class:`WorkSource` to a verdict with frontier-wide batching.

    The driver owns the loop skeleton and the budget invariants — the
    ``affordable_phases(budget, planned)`` accounting, the one-node charge
    per attached child and per deferred leaf LP, and the wall-clock
    re-checks between children — while every search-strategy decision stays
    in the source.  ``frontier_size=1`` reproduces the sequential drivers'
    verdicts, counterexamples and charges, with one caveat from the
    deferred leaf-LP batching: a round's decided leaves resolve *after*
    gathering, so when a leaf LP falsifies, items popped later in the same
    round were already popped and charged (further decided leaves charge
    their LP node; a probing heuristic additionally charges its look-ahead
    probes) where the sequential loop returned mid-gather before reaching
    them.  The verdict and counterexample are unchanged; only the terminal
    round's charge count can differ, and only when a round mixes a
    falsifying decided leaf with later pops.
    """

    def __init__(self, appver: ApproximateVerifier, frontier_size: int = 1) -> None:
        require(frontier_size >= 1, "frontier_size must be positive")
        self.appver = appver
        self.frontier_size = int(frontier_size)
        #: Attached children per cascade stage (``"ibp"``/``"relaxed"``/
        #: ``"exact"``); stays empty when outcomes carry no stage tag.
        self.attached_by_stage = Counter()

    def start(self, source: WorkSource, budget: Budget) -> DriverRun:
        """Begin a resumable run; the caller steps it one round at a time."""
        return DriverRun(self, source, budget)

    def run(self, source: WorkSource, budget: Budget) -> DriverVerdict:
        """Drive ``source`` until a verdict: the shared main loop."""
        run = self.start(source, budget)
        while True:
            verdict = run.step()
            if verdict is not None:
                return verdict

    # -- one gather → resolve → expand → attach round --------------------------
    def _round(self, source: WorkSource, budget: Budget) -> Optional[DriverVerdict]:
        if not source.begin_round(budget):
            return None

        plan: List[Expansion] = []
        pending: List[Any] = []  # fully phase-decided leaves, in pop order
        planned = 0
        truncated = False
        gather_verdict: Optional[DriverVerdict] = None
        while len(plan) < self.frontier_size and not truncated:
            item = source.next_item(budget, len(plan), planned)
            if item is None:
                break
            if isinstance(item, DriverVerdict):
                gather_verdict = item
                break
            neuron = source.select_neuron(item)
            if neuron is None:
                # The leaf LP costs about one bound computation; the solve
                # itself is deferred so the whole round resolves in one
                # batched call.
                budget.charge_node()
                pending.append(item)
                continue
            phases = affordable_phases(budget, planned)
            if not phases:
                gather_verdict = source.push_back(item, len(plan))
                break
            plan.append(Expansion(item, neuron, phases,
                                  source.child_splits(item, neuron, phases)))
            planned += len(phases)
            truncated = len(phases) < 2

        # Deferred exact resolution before any verdict: the leaves were
        # charged, so their outcomes (in pop order) take effect exactly as
        # in the sequential interleaving.
        if pending:
            verdict = source.resolve_leaves(pending)
            if verdict is not None:
                return verdict
        if gather_verdict is not None:
            return gather_verdict
        if not plan:
            return None

        # One batched AppVer call bounds the children of the whole round;
        # this is the engine's single point of batched-bound dispatch.  The
        # children carry their parents' identities so the ≤2K sub-problems
        # resolve as rank-1 deltas against at most K memoised parent passes.
        flat_splits = [splits for expansion in plan
                       for splits in expansion.child_splits]
        flat_parents = [source.item_splits(expansion.item) for expansion in plan
                        for _ in expansion.child_splits]
        outcomes = self.appver.evaluate_batch(flat_splits, parents=flat_parents)

        verdict = self._attach(source, plan, outcomes, budget)
        if verdict is not None:
            return verdict
        if truncated:
            return source.truncated()
        return None

    def _attach(self, source: WorkSource, plan: List[Expansion],
                outcomes: List[AppVerOutcome],
                budget: Budget) -> Optional[DriverVerdict]:
        """Hand outcomes back in selection order with sequential charges."""
        position = 0
        first_child = True
        for expansion in plan:
            added = 0
            stop = False
            for offset, (phase, splits) in enumerate(zip(expansion.phases,
                                                         expansion.child_splits)):
                if not first_child and budget.exhausted():
                    # The wall clock ran out between two children.
                    verdict = source.attach_exhausted()
                    if verdict is not None:
                        return verdict
                    stop = True
                    break
                outcome = outcomes[position + offset]
                budget.charge_node()
                first_child = False
                stage = getattr(outcome, "stage", None)
                if stage is not None:
                    self.attached_by_stage[stage] += 1
                verdict = source.attach(expansion.item, phase, splits, outcome)
                added += 1
                if verdict is not None:
                    return verdict
            position += len(expansion.phases)
            if stop:
                # Wall-clock exhaustion cut the expansion short, so the
                # ``leaf_attached`` contract ("all children attached") does
                # not hold — the partial expansion must not be
                # back-propagated as complete.
                break
            if added and source.leaf_attached(expansion.item, added):
                break  # a real counterexample surfaced; stop attaching more
        return None
