"""ABONN reproduction: adaptive branch-and-bound tree exploration for NN verification.

The package is organised as:

* :mod:`repro.nn` — neural-network substrate (layers, training, model zoo);
* :mod:`repro.datasets` — synthetic MNIST/CIFAR-10 stand-ins;
* :mod:`repro.specs` — verification specifications and VNN-LIB I/O;
* :mod:`repro.bounds` — approximated verifiers (IBP, DeepPoly/CROWN, α-CROWN);
* :mod:`repro.verifiers` — AppVer wrapper, PGD attacks, MILP/LP back-ends;
* :mod:`repro.bab` — branch-and-bound substrate and the BaB-baseline;
* :mod:`repro.core` — the paper's contribution (counterexample potentiality,
  MCTS-style exploration, the ABONN verifier);
* :mod:`repro.baselines` — the αβ-CROWN-like baseline;
* :mod:`repro.service` — the verification service (job scheduling, cache
  pooling, batch/streaming APIs over every verifier);
* :mod:`repro.experiments` — benchmark suite, runners, tables and figures.

Quickstart::

    from repro import AbonnVerifier, dense_network, local_robustness_spec

    network = dense_network([4, 16, 16, 3], seed=0)
    spec = local_robustness_spec(reference=[0.5, 0.5, 0.5, 0.5], epsilon=0.05,
                                 label=0, num_classes=3)
    result = AbonnVerifier().verify(network, spec)
    print(result.status, result.counterexample)
"""

from repro.bab import BaBBaselineVerifier
from repro.baselines import AlphaBetaCrownVerifier
from repro.core import AbonnConfig, AbonnVerifier, counterexample_potentiality
from repro.nn import Network, build_trained_model, dense_network
from repro.specs import (
    InputBox,
    LinearOutputSpec,
    Specification,
    load_vnnlib,
    local_robustness_spec,
    save_vnnlib,
)
from repro.utils import Budget
from repro.verifiers import (
    ApproximateVerifier,
    MilpVerifier,
    VerificationResult,
    VerificationStatus,
    pgd_attack,
)

# The service layer sits above every verifier, so it imports last.
from repro.service import ServiceConfig, VerificationService

__version__ = "1.0.0"

__all__ = [
    "AbonnConfig",
    "AbonnVerifier",
    "AlphaBetaCrownVerifier",
    "ApproximateVerifier",
    "BaBBaselineVerifier",
    "Budget",
    "InputBox",
    "LinearOutputSpec",
    "MilpVerifier",
    "Network",
    "ServiceConfig",
    "Specification",
    "VerificationResult",
    "VerificationStatus",
    "VerificationService",
    "build_trained_model",
    "counterexample_potentiality",
    "dense_network",
    "load_vnnlib",
    "local_robustness_spec",
    "pgd_attack",
    "save_vnnlib",
    "__version__",
]
