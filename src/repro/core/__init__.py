"""The paper's contribution: counterexample potentiality + MCTS-style BaB (ABONN)."""

from repro.core.abonn import AbonnVerifier
from repro.core.config import DEFAULT_EXPLORATION, DEFAULT_LAMBDA, AbonnConfig
from repro.core.mcts import (
    MctsNode,
    propagate_rewards,
    propagate_sizes,
    select_child,
    ucb1_score,
)
from repro.core.potentiality import PotentialityScorer, counterexample_potentiality

__all__ = [
    "AbonnVerifier",
    "AbonnConfig",
    "DEFAULT_EXPLORATION",
    "DEFAULT_LAMBDA",
    "MctsNode",
    "propagate_rewards",
    "propagate_sizes",
    "select_child",
    "ucb1_score",
    "PotentialityScorer",
    "counterexample_potentiality",
]
