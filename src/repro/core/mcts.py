"""The MCTS tree structure used by ABONN's adaptive exploration.

Alg. 1 maintains, for every node Γ of the BaB tree,

* a reward ``R(Γ)`` — the counterexample potentiality of the best node in
  the subtree rooted at Γ (rewards are back-propagated as the maximum over
  children);
* the node set ``T(Γ)`` of that subtree — only its cardinality matters for
  the UCB1 rule, so this implementation stores the size.

Child selection uses UCB1 (line 13):

``argmax_a  R(Γ·a) + c · sqrt(2 ln |T(Γ)| / |T(Γ·a)|)``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.bounds.splits import ACTIVE, INACTIVE, SplitAssignment
from repro.utils.validation import require
from repro.verifiers.appver import AppVerOutcome


@dataclass
class MctsNode:
    """A node of ABONN's search tree (one BaB sub-problem)."""

    splits: SplitAssignment
    depth: int
    outcome: Optional[AppVerOutcome]
    reward: float = float("-inf")
    subtree_size: int = 1
    parent: Optional["MctsNode"] = None
    #: The ReLU neuron whose two phases produced this node's children.
    branch_neuron: Optional[Tuple[int, int]] = None
    children: Dict[int, "MctsNode"] = field(default_factory=dict)
    #: A real counterexample found in this node's subtree, if any.
    counterexample: Optional[np.ndarray] = None

    @property
    def is_expanded(self) -> bool:
        return bool(self.children)

    @property
    def is_root(self) -> bool:
        return self.parent is None

    @property
    def p_hat(self) -> Optional[float]:
        return None if self.outcome is None else self.outcome.p_hat

    def child(self, phase: int) -> "MctsNode":
        require(phase in (ACTIVE, INACTIVE), "phase must be +1 or -1")
        require(phase in self.children, "child has not been expanded")
        return self.children[phase]

    def refresh_from_children(self) -> None:
        """Back-propagation step: reward becomes the max over the children."""
        if not self.children:
            return
        self.reward = max(child.reward for child in self.children.values())
        for child in self.children.values():
            if child.counterexample is not None:
                self.counterexample = child.counterexample
                break

    def descendants(self) -> List["MctsNode"]:
        """All nodes of this subtree (including the node itself)."""
        nodes = [self]
        stack = list(self.children.values())
        while stack:
            node = stack.pop()
            nodes.append(node)
            stack.extend(node.children.values())
        return nodes


def ucb1_score(child_reward: float, parent_subtree_size: int,
               child_subtree_size: int, exploration: float) -> float:
    """The UCB1 value of one child (Alg. 1 line 13)."""
    require(parent_subtree_size >= 1 and child_subtree_size >= 1,
            "subtree sizes must be positive")
    if child_reward == float("-inf"):
        # A fully verified branch can never yield a counterexample; the
        # exploration bonus must not resurrect it.
        return float("-inf")
    if child_reward == float("inf"):
        return float("inf")
    bonus = exploration * math.sqrt(
        2.0 * math.log(parent_subtree_size) / child_subtree_size)
    return child_reward + bonus


def select_child(node: MctsNode, exploration: float) -> Optional[MctsNode]:
    """Pick the child to descend into, or ``None`` when all are exhausted.

    Ties are broken in favour of the ``r+`` child for determinism.
    """
    require(node.is_expanded, "cannot select a child of an unexpanded node")
    best_child: Optional[MctsNode] = None
    best_score = float("-inf")
    for phase in (ACTIVE, INACTIVE):
        child = node.children.get(phase)
        if child is None:
            continue
        score = ucb1_score(child.reward, node.subtree_size, child.subtree_size,
                           exploration)
        if score > best_score:
            best_score = score
            best_child = child
    if best_score == float("-inf"):
        return None
    return best_child


def descend_to_leaf(node: MctsNode, exploration: float) -> MctsNode:
    """Follow UCB1 selections from ``node`` downwards (Alg. 1 lines 12-14).

    Returns either an unexpanded node (the next node to expand) or an
    *expanded* dead end whose children are all exhausted (reward ``-inf``);
    callers distinguish the two via :attr:`MctsNode.is_expanded` and should
    back-propagate from a dead end.
    """
    current = node
    while current.is_expanded:
        child = select_child(current, exploration)
        if child is None:
            return current
        current = child
    return current


def select_frontier(root: MctsNode, exploration: float,
                    limit: int, redescend: bool = True) -> List[MctsNode]:
    """Select up to ``limit`` *distinct* unexpanded nodes for batched expansion.

    Repeats the UCB1 descent of Alg. 1 with a virtual-loss / exclusion scheme
    so the selections do not collapse onto one path: each selected leaf's
    reward is temporarily forced to ``-inf`` (so no later descent re-enters
    it), one virtual visit is added along its path, and the ancestors'
    rewards are refreshed to steer later descents away from fully excluded
    subtrees.  All virtual state is restored before returning, so the tree
    the caller sees is exactly the tree before the call.

    With ``redescend`` (the default) a descent that dead-ends on an
    *expanded* node whose children are all exhausted does not end the
    gathering: the dead end's reward is back-propagated (refreshing any
    ancestor whose reward had not yet absorbed its exhausted subtree) and
    the descent retried, so sparser trees still fill their frontier.  Each
    distinct dead end is re-propagated at most once per call, which bounds
    the retries by the number of expanded nodes; a repeated dead end means
    every reachable branch is excluded and the gathering stops.  Because
    back-propagating from a dead end is exactly what the sequential loop
    does before its next iteration, re-descending never changes which nodes
    are eventually selected or charged — it only selects them a round
    earlier.

    With ``limit=1`` this is precisely one sequential UCB1 selection.
    """
    require(limit >= 1, "frontier limit must be positive")
    selected: List[MctsNode] = []
    saved_rewards: List[Tuple[MctsNode, float]] = []
    redescended: set = set()  # ids of dead ends already back-propagated
    while len(selected) < limit:
        leaf = descend_to_leaf(root, exploration)
        if leaf.is_expanded:
            # Dead end: all reachable subtrees virtually excluded or
            # exhausted.  Deeper virtual back-propagation re-descends once
            # per distinct dead end; the restoration loop below undoes any
            # virtual component of the refreshed rewards.
            if not redescend or id(leaf) in redescended:
                break
            redescended.add(id(leaf))
            propagate_rewards(leaf)
            continue
        if any(leaf is node for node in selected):
            # An unexpanded root re-selected: stop early.
            break
        selected.append(leaf)
        saved_rewards.append((leaf, leaf.reward))
        leaf.reward = float("-inf")
        propagate_sizes(leaf, 1)
        propagate_rewards(leaf.parent or leaf)
    # Undo the virtual loss: restore leaf rewards, remove virtual visits,
    # then recompute ancestor rewards from the restored children.
    for leaf, reward in saved_rewards:
        leaf.reward = reward
        propagate_sizes(leaf, -1)
    for leaf, _ in saved_rewards:
        propagate_rewards(leaf.parent or leaf)
    return selected


def propagate_sizes(node: MctsNode, added: int) -> None:
    """Add ``added`` new nodes to the subtree sizes of ``node`` and its ancestors."""
    current: Optional[MctsNode] = node
    while current is not None:
        current.subtree_size += added
        current = current.parent


def propagate_rewards(node: MctsNode) -> None:
    """Recompute rewards from ``node`` up to the root (max over children)."""
    current: Optional[MctsNode] = node
    while current is not None:
        current.refresh_from_children()
        current = current.parent
