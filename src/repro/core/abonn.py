"""ABONN: Adaptive BaB with Order for Neural Network verification (Alg. 1).

ABONN explores the BaB sub-problem space in an MCTS style.  Every iteration
descends from the root along UCB1-selected children until it reaches an
unexpanded node, expands that node's two phase-split children with AppVer,
scores them with the counterexample potentiality (Def. 1), and
back-propagates rewards (max over children) and subtree sizes towards the
root.  The run terminates as soon as

* ``R(ε) = +inf`` — a real counterexample was found (verdict ``false``),
* ``R(ε) = -inf`` — every sub-problem is verified (verdict ``true``), or
* the budget is exhausted (verdict ``timeout``).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.bab.heuristics import BranchingContext, BranchingHeuristic, make_heuristic
from repro.bounds.splits import ReluSplit, SplitAssignment
from repro.core.config import AbonnConfig
from repro.core.mcts import (
    MctsNode,
    propagate_rewards,
    propagate_sizes,
    select_child,
)
from repro.core.potentiality import PotentialityScorer
from repro.nn.network import Network
from repro.specs.properties import Specification
from repro.utils.timing import Budget
from repro.verifiers.appver import (
    ApproximateVerifier,
    AppVerOutcome,
    affordable_phases,
)
from repro.verifiers.milp import solve_leaf_lp
from repro.verifiers.result import (
    VerificationResult,
    VerificationStatus,
    Verifier,
    make_budget,
)


class AbonnVerifier(Verifier):
    """The paper's proposed verifier."""

    name = "ABONN"

    def __init__(self, config: Optional[AbonnConfig] = None) -> None:
        self.config = config or AbonnConfig()

    # -- public API -----------------------------------------------------------
    def verify(self, network: Network, spec: Specification,
               budget: Optional[Budget] = None) -> VerificationResult:
        config = self.config
        budget = make_budget(budget)
        appver = ApproximateVerifier(network, spec, config.bound_method,
                                     alpha_config=config.alpha_config,
                                     use_cache=config.use_bound_cache,
                                     cache_size=config.bound_cache_size)
        heuristic = make_heuristic(config.heuristic)
        scorer = PotentialityScorer(max(appver.num_relu_neurons, 1), config.lam)

        # Initialisation (Alg. 1 lines 1-3, 8-9).
        root_outcome = appver.evaluate()
        budget.charge_node()
        scorer.observe(root_outcome.p_hat)
        if root_outcome.verified or root_outcome.report.infeasible:
            return self._finish(VerificationStatus.VERIFIED, appver, budget,
                                bound=root_outcome.p_hat, max_depth=0)
        if root_outcome.falsified:
            return self._finish(VerificationStatus.FALSIFIED, appver, budget,
                                counterexample=root_outcome.candidate,
                                bound=root_outcome.p_hat, max_depth=0)

        root = MctsNode(SplitAssignment.empty(), depth=0, outcome=root_outcome)
        root.reward = scorer.score(root_outcome.p_hat, False, 0)
        self._has_unknown_leaf = False
        self._max_depth = 0
        self._lp_leaves = 0

        # Main loop (Alg. 1 lines 4-7).
        while not budget.exhausted():
            self._mcts_bab(root, appver, heuristic, scorer, spec, budget)
            if root.reward == float("inf"):
                return self._finish(VerificationStatus.FALSIFIED, appver, budget,
                                    counterexample=root.counterexample,
                                    max_depth=self._max_depth)
            if root.reward == float("-inf"):
                status = (VerificationStatus.UNKNOWN if self._has_unknown_leaf
                          else VerificationStatus.VERIFIED)
                return self._finish(status, appver, budget, max_depth=self._max_depth)
        return self._finish(VerificationStatus.TIMEOUT, appver, budget,
                            max_depth=self._max_depth)

    # -- one MCTS-BaB iteration (Alg. 1 lines 10-21) ---------------------------
    def _mcts_bab(self, node: MctsNode, appver: ApproximateVerifier,
                  heuristic: BranchingHeuristic, scorer: PotentialityScorer,
                  spec: Specification, budget: Budget) -> None:
        if node.is_expanded:
            # Selection: descend along UCB1 (Alg. 1 lines 12-14).
            child = select_child(node, self.config.exploration)
            if child is None:
                # Every branch below is verified; back-propagate -inf.
                propagate_rewards(node)
                return
            self._mcts_bab(child, appver, heuristic, scorer, spec, budget)
            return

        # Expansion (Alg. 1 lines 15-21).
        context = BranchingContext(network=appver.lowered, spec=spec.output_spec,
                                   report=node.outcome.report, splits=node.splits,
                                   evaluate_split=self._make_probe(appver, budget))
        neuron = heuristic.select(context)
        if neuron is None:
            budget.charge_node()  # the leaf LP costs about one bound computation
            self._resolve_leaf(node, appver, spec)
            propagate_rewards(node.parent or node)
            return

        node.branch_neuron = neuron
        phases = affordable_phases(budget)
        child_splits = [node.splits.with_split(ReluSplit(neuron[0], neuron[1], phase))
                        for phase in phases]
        # One batched AppVer call bounds both phase-split children together.
        outcomes = appver.evaluate_batch(child_splits)
        added = 0
        for phase, splits, outcome in zip(phases, child_splits, outcomes):
            if added and budget.exhausted():
                break  # the wall clock ran out between the siblings
            budget.charge_node()
            scorer.observe(outcome.p_hat)
            child = self._make_child(node, splits, outcome, scorer)
            node.children[phase] = child
            added += 1
            self._max_depth = max(self._max_depth, child.depth)
        if added:
            propagate_sizes(node, added)
            propagate_rewards(node)

    def _make_child(self, parent: MctsNode, splits: SplitAssignment,
                    outcome: AppVerOutcome, scorer: PotentialityScorer) -> MctsNode:
        child = MctsNode(splits, depth=parent.depth + 1, outcome=outcome, parent=parent)
        child.reward = scorer.score(outcome.p_hat, outcome.falsified, child.depth)
        if outcome.report.infeasible:
            child.reward = float("-inf")
        if outcome.falsified:
            child.counterexample = outcome.candidate
        return child

    def _resolve_leaf(self, node: MctsNode, appver: ApproximateVerifier,
                      spec: Specification) -> None:
        """Exactly resolve a node with no unstable neurons left."""
        if not self.config.lp_leaf_refinement:
            self._has_unknown_leaf = True
            node.reward = float("-inf")
            return
        optimum = solve_leaf_lp(appver.lowered, spec.input_box, spec.output_spec,
                                node.splits, node.outcome.report)
        self._lp_leaves += 1
        if not optimum.feasible or optimum.value >= 0.0:
            node.reward = float("-inf")
            return
        if optimum.minimizer is None:  # pragma: no cover - solver failure
            self._has_unknown_leaf = True
            node.reward = float("-inf")
            return
        point = spec.input_box.clip(optimum.minimizer)
        if spec.is_counterexample(appver.network, point):
            node.reward = float("inf")
            node.counterexample = point
        else:  # pragma: no cover - numerical corner case
            self._has_unknown_leaf = True
            node.reward = float("-inf")

    # -- helpers ----------------------------------------------------------------
    @staticmethod
    def _make_probe(appver: ApproximateVerifier, budget: Budget):
        def probe(splits: SplitAssignment) -> float:
            budget.charge_node()
            return appver.evaluate(splits).p_hat
        return probe

    def _finish(self, status: VerificationStatus, appver: ApproximateVerifier,
                budget: Budget, counterexample: Optional[np.ndarray] = None,
                bound: Optional[float] = None, max_depth: int = 0) -> VerificationResult:
        return VerificationResult(
            status=status,
            verifier=self.name,
            elapsed_seconds=budget.elapsed_seconds,
            nodes_explored=appver.num_calls,
            tree_size=appver.num_calls,
            counterexample=counterexample,
            bound=bound,
            extras={
                "max_depth": max_depth,
                "lambda": self.config.lam,
                "exploration": self.config.exploration,
                "heuristic": self.config.heuristic,
                "lp_leaves_resolved": getattr(self, "_lp_leaves", 0),
                "bound_cache": appver.cache_stats(),
            },
        )
