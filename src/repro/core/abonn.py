"""ABONN: Adaptive BaB with Order for Neural Network verification (Alg. 1).

ABONN explores the BaB sub-problem space in an MCTS style.  Every iteration
selects up to ``frontier_size`` distinct unexpanded nodes by repeated UCB1
descent from the root (with virtual-loss exclusion so the selections spread
over the tree), expands all of their phase-split children through **one**
batched AppVer call, scores the children with the counterexample
potentiality (Def. 1), and back-propagates rewards (max over children) and
subtree sizes towards the root.  With ``frontier_size=1`` (the default)
this is exactly the sequential Alg. 1 loop; larger frontiers feed the
batched bound back-ends realised batch sizes of up to ``2 * frontier_size``
while preserving the sequential per-child budget semantics at node and
wall-clock boundaries (see ``docs/BATCHING.md``).  The run terminates as
soon as

* ``R(ε) = +inf`` — a real counterexample was found (verdict ``false``),
* ``R(ε) = -inf`` — every sub-problem is verified (verdict ``true``), or
* the budget is exhausted (verdict ``timeout``).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.bab.heuristics import BranchingContext, BranchingHeuristic, make_heuristic
from repro.bounds.splits import ReluSplit, SplitAssignment
from repro.core.config import AbonnConfig
from repro.core.mcts import (
    MctsNode,
    descend_to_leaf,
    propagate_rewards,
    propagate_sizes,
    select_frontier,
)
from repro.core.potentiality import PotentialityScorer
from repro.nn.network import Network
from repro.specs.properties import Specification
from repro.utils.timing import Budget
from repro.verifiers.appver import (
    ApproximateVerifier,
    AppVerOutcome,
    affordable_phases,
)
from repro.verifiers.milp import solve_leaf_lp
from repro.verifiers.result import (
    VerificationResult,
    VerificationStatus,
    Verifier,
    make_budget,
)


class AbonnVerifier(Verifier):
    """The paper's proposed verifier."""

    name = "ABONN"

    def __init__(self, config: Optional[AbonnConfig] = None) -> None:
        self.config = config or AbonnConfig()

    # -- public API -----------------------------------------------------------
    def verify(self, network: Network, spec: Specification,
               budget: Optional[Budget] = None) -> VerificationResult:
        config = self.config
        budget = make_budget(budget)
        appver = ApproximateVerifier(network, spec, config.bound_method,
                                     alpha_config=config.alpha_config,
                                     use_cache=config.use_bound_cache,
                                     cache_size=config.bound_cache_size)
        heuristic = make_heuristic(config.heuristic)
        scorer = PotentialityScorer(max(appver.num_relu_neurons, 1), config.lam)

        # Initialisation (Alg. 1 lines 1-3, 8-9).
        root_outcome = appver.evaluate()
        budget.charge_node()
        scorer.observe(root_outcome.p_hat)
        if root_outcome.verified or root_outcome.report.infeasible:
            return self._finish(VerificationStatus.VERIFIED, appver, budget,
                                bound=root_outcome.p_hat, max_depth=0)
        if root_outcome.falsified:
            return self._finish(VerificationStatus.FALSIFIED, appver, budget,
                                counterexample=root_outcome.candidate,
                                bound=root_outcome.p_hat, max_depth=0)

        root = MctsNode(SplitAssignment.empty(), depth=0, outcome=root_outcome)
        root.reward = scorer.score(root_outcome.p_hat, False, 0)
        self._has_unknown_leaf = False
        self._max_depth = 0
        self._lp_leaves = 0

        # Main loop (Alg. 1 lines 4-7), expanding up to ``frontier_size``
        # leaves per iteration through one batched AppVer call.
        while not budget.exhausted():
            self._frontier_step(root, appver, heuristic, scorer, spec, budget)
            if root.reward == float("inf"):
                return self._finish(VerificationStatus.FALSIFIED, appver, budget,
                                    counterexample=root.counterexample,
                                    max_depth=self._max_depth)
            if root.reward == float("-inf"):
                status = (VerificationStatus.UNKNOWN if self._has_unknown_leaf
                          else VerificationStatus.VERIFIED)
                return self._finish(status, appver, budget, max_depth=self._max_depth)
        return self._finish(VerificationStatus.TIMEOUT, appver, budget,
                            max_depth=self._max_depth)

    # -- one frontier-wide MCTS-BaB iteration (Alg. 1 lines 10-21) -------------
    def _frontier_step(self, root: MctsNode, appver: ApproximateVerifier,
                       heuristic: BranchingHeuristic, scorer: PotentialityScorer,
                       spec: Specification, budget: Budget) -> None:
        """Select up to ``frontier_size`` leaves and expand them in one batch.

        With ``frontier_size=1`` this reproduces the sequential iteration
        exactly: one UCB1 descent, one (≤ 2-child) batched expansion, one
        back-propagation, with identical budget charges at identical points.
        """
        # Selection (Alg. 1 lines 12-14), frontier-wide with virtual loss.
        leaves = select_frontier(root, self.config.exploration,
                                 self.config.frontier_size)
        if not leaves:
            # The descent dead-ends: every reachable branch is verified.
            # Back-propagate -inf from the dead end, as the sequential loop
            # does.  The repeated descent is sound because select_frontier
            # restored all virtual state and UCB1 descent is deterministic:
            # it reaches the same dead end select_frontier found.
            propagate_rewards(descend_to_leaf(root, self.config.exploration))
            return

        # Expansion planning (Alg. 1 lines 15-16): pick each leaf's branch
        # neuron; fully phase-decided leaves are resolved exactly right away.
        expansions = []
        planned = 0
        for index, leaf in enumerate(leaves):
            if root.reward == float("inf"):
                return  # a leaf LP just produced a real counterexample
            if index:
                # Sequential iterations re-check the budget before every
                # leaf; charges already committed for earlier expansions
                # (``planned``) count against the node headroom too.
                remaining = budget.remaining_nodes()
                if budget.exhausted() or (remaining is not None
                                          and remaining <= planned):
                    break
            context = BranchingContext(network=appver.lowered, spec=spec.output_spec,
                                       report=leaf.outcome.report, splits=leaf.splits,
                                       evaluate_split=self._make_probe(appver, budget))
            neuron = heuristic.select(context)
            if neuron is None:
                budget.charge_node()  # the leaf LP costs about one bound computation
                self._resolve_leaf(leaf, appver, spec)
                propagate_rewards(leaf.parent or leaf)
                continue
            phases = affordable_phases(budget, planned)
            if not phases:
                break  # the node budget affords no further children
            leaf.branch_neuron = neuron
            child_splits = [leaf.splits.with_split(
                ReluSplit(neuron[0], neuron[1], phase)) for phase in phases]
            expansions.append((leaf, phases, child_splits))
            planned += len(phases)
            if len(phases) < 2:
                break  # only a truncated expansion was affordable
        if root.reward == float("inf"):
            return  # the last leaf's LP falsified; skip the planned expansions
        if not expansions:
            return

        # Expansion (Alg. 1 lines 17-19): one batched AppVer call bounds the
        # phase-split children of the whole frontier together.
        flat_splits = [splits for _, _, child_splits in expansions
                       for splits in child_splits]
        outcomes = appver.evaluate_batch(flat_splits)

        # Attachment and back-propagation (Alg. 1 lines 20-21), preserving
        # the sequential per-child wall-clock checks between siblings and
        # between frontier leaves.
        position = 0
        for index, (leaf, phases, child_splits) in enumerate(expansions):
            if index and budget.exhausted():
                break  # the wall clock ran out between frontier leaves
            added = 0
            for offset, (phase, splits) in enumerate(zip(phases, child_splits)):
                if added and budget.exhausted():
                    break  # the wall clock ran out between the siblings
                outcome = outcomes[position + offset]
                budget.charge_node()
                scorer.observe(outcome.p_hat)
                child = self._make_child(leaf, splits, outcome, scorer)
                leaf.children[phase] = child
                added += 1
                self._max_depth = max(self._max_depth, child.depth)
            position += len(phases)
            if added:
                propagate_sizes(leaf, added)
                propagate_rewards(leaf)
            if root.reward == float("inf"):
                break  # a real counterexample surfaced; stop attaching more

    def _make_child(self, parent: MctsNode, splits: SplitAssignment,
                    outcome: AppVerOutcome, scorer: PotentialityScorer) -> MctsNode:
        child = MctsNode(splits, depth=parent.depth + 1, outcome=outcome, parent=parent)
        child.reward = scorer.score(outcome.p_hat, outcome.falsified, child.depth)
        if outcome.report.infeasible:
            child.reward = float("-inf")
        if outcome.falsified:
            child.counterexample = outcome.candidate
        return child

    def _resolve_leaf(self, node: MctsNode, appver: ApproximateVerifier,
                      spec: Specification) -> None:
        """Exactly resolve a node with no unstable neurons left."""
        if not self.config.lp_leaf_refinement:
            self._has_unknown_leaf = True
            node.reward = float("-inf")
            return
        optimum = solve_leaf_lp(appver.lowered, spec.input_box, spec.output_spec,
                                node.splits, node.outcome.report)
        self._lp_leaves += 1
        if not optimum.feasible or optimum.value >= 0.0:
            node.reward = float("-inf")
            return
        if optimum.minimizer is None:  # pragma: no cover - solver failure
            self._has_unknown_leaf = True
            node.reward = float("-inf")
            return
        point = spec.input_box.clip(optimum.minimizer)
        if spec.is_counterexample(appver.network, point):
            node.reward = float("inf")
            node.counterexample = point
        else:  # pragma: no cover - numerical corner case
            self._has_unknown_leaf = True
            node.reward = float("-inf")

    # -- helpers ----------------------------------------------------------------
    @staticmethod
    def _make_probe(appver: ApproximateVerifier, budget: Budget):
        def probe(splits: SplitAssignment) -> float:
            budget.charge_node()
            return appver.evaluate(splits).p_hat
        return probe

    def _finish(self, status: VerificationStatus, appver: ApproximateVerifier,
                budget: Budget, counterexample: Optional[np.ndarray] = None,
                bound: Optional[float] = None, max_depth: int = 0) -> VerificationResult:
        return VerificationResult(
            status=status,
            verifier=self.name,
            elapsed_seconds=budget.elapsed_seconds,
            nodes_explored=appver.num_calls,
            tree_size=appver.num_calls,
            counterexample=counterexample,
            bound=bound,
            extras={
                "max_depth": max_depth,
                "lambda": self.config.lam,
                "exploration": self.config.exploration,
                "heuristic": self.config.heuristic,
                "frontier_size": self.config.frontier_size,
                "lp_leaves_resolved": getattr(self, "_lp_leaves", 0),
                "bound_cache": appver.cache_stats(),
            },
        )
