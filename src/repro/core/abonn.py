"""ABONN: Adaptive BaB with Order for Neural Network verification (Alg. 1).

ABONN explores the BaB sub-problem space in an MCTS style.  Every iteration
selects up to ``frontier_size`` distinct unexpanded nodes by repeated UCB1
descent from the root (with virtual-loss exclusion so the selections spread
over the tree, and deeper re-descent so dead-ended descents refill the
frontier in sparser trees), expands all of their phase-split children
through **one** batched AppVer call, scores the children with the
counterexample potentiality (Def. 1), and back-propagates rewards (max over
children) and subtree sizes towards the root.  Fully phase-decided leaves
are resolved exactly, one batched (and cached) leaf-LP pass per iteration.

The iteration itself — gathering, budget accounting, batched expansion,
attachment order — is executed by the shared
:class:`~repro.engine.driver.FrontierDriver`; this module contributes the
MCTS work source (selection, potentiality scoring, reward propagation).
With ``frontier_size=1`` (the default) this is exactly the sequential
Alg. 1 loop; larger frontiers feed the batched bound back-ends realised
batch sizes of up to ``2 * frontier_size`` while preserving the sequential
per-child budget semantics at node and wall-clock boundaries (see
``docs/ENGINE.md`` and ``docs/BATCHING.md``).  The run terminates as soon
as

* ``R(ε) = +inf`` — a real counterexample was found (verdict ``false``),
* ``R(ε) = -inf`` — every sub-problem is verified (verdict ``true``), or
* the budget is exhausted (verdict ``timeout``).
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from repro.bab.heuristics import BranchingContext, BranchingHeuristic, make_heuristic
from repro.bounds.cache import LpCache
from repro.bounds.splits import ReluSplit, SplitAssignment
from repro.core.config import AbonnConfig
from repro.core.mcts import (
    MctsNode,
    descend_to_leaf,
    propagate_rewards,
    propagate_sizes,
    select_frontier,
)
from repro.core.potentiality import PotentialityScorer
from repro.engine.driver import DriverVerdict, Neuron, WorkSource, FrontierDriver
from repro.nn.network import Network
from repro.specs.properties import Specification
from repro.utils.timing import Budget
from repro.verifiers.appver import ApproximateVerifier, AppVerOutcome
from repro.verifiers.milp import (
    LEAF_FALSIFIED,
    LEAF_VERIFIED,
    classify_leaf_optimum,
    problem_fingerprint,
    solve_leaf_lp_batch,
)
from repro.verifiers.result import (
    CompletedRun,
    VerificationResult,
    VerificationStatus,
    Verifier,
    VerifierRun,
    make_budget,
)


def _score_child(parent: MctsNode, splits: SplitAssignment,
                 outcome: AppVerOutcome, scorer: PotentialityScorer) -> MctsNode:
    """Create and potentiality-score one freshly bounded child node."""
    child = MctsNode(splits, depth=parent.depth + 1, outcome=outcome, parent=parent)
    child.reward = scorer.score(outcome.p_hat, outcome.falsified, child.depth)
    if outcome.report.infeasible:
        child.reward = float("-inf")
    if outcome.falsified:
        child.counterexample = outcome.candidate
    return child


class MctsFrontierSource(WorkSource):
    """ABONN's MCTS tree as a :class:`~repro.engine.driver.WorkSource`.

    One round gathers a frontier through :func:`select_frontier` (UCB1 with
    virtual-loss exclusion and deeper re-descent), hands unexpanded leaves
    to the driver, and keeps every tree-shaped concern — potentiality
    scoring, reward/size back-propagation, exact LP resolution of decided
    leaves — on this side of the engine contract.  The tree persists across
    rounds, so budget starvation needs no push-back: a starved leaf simply
    stays selectable.
    """

    def __init__(self, root: MctsNode, appver: ApproximateVerifier,
                 heuristic: BranchingHeuristic, scorer: PotentialityScorer,
                 spec: Specification, config: AbonnConfig, budget: Budget,
                 lp_cache: LpCache,
                 lp_fingerprint: Optional[str] = None) -> None:
        self.root = root
        self.appver = appver
        self.heuristic = heuristic
        self.scorer = scorer
        self.spec = spec
        self.config = config
        self.budget = budget
        self.lp_cache = lp_cache
        self.lp_fingerprint = lp_fingerprint
        self.has_unknown_leaf = False
        self.max_depth = 0
        self.lp_leaves = 0
        self._leaves: List[MctsNode] = []
        self._cursor = 0

    # -- gathering -------------------------------------------------------------
    def has_work(self) -> bool:
        """Always true: the tree persists and verdicts surface elsewhere."""
        # The tree always holds the search state; termination surfaces
        # through ``round_complete`` (root reward) or the driver's budget
        # check (timeout).
        return True

    def begin_round(self, budget: Budget) -> bool:
        """Select the round's frontier by repeated virtual-loss UCB1 descent."""
        self._leaves = select_frontier(self.root, self.config.exploration,
                                       self.config.frontier_size,
                                       redescend=self.config.deep_redescent)
        self._cursor = 0
        if not self._leaves:
            # Every reachable branch is verified.  Back-propagate -inf from
            # the dead end, as the sequential loop does; the repeated
            # descent is sound because select_frontier restored all virtual
            # state and UCB1 descent is deterministic.
            propagate_rewards(descend_to_leaf(self.root, self.config.exploration))
            return False
        return True

    def next_item(self, budget: Budget, gathered: int,
                  planned: int) -> Optional[MctsNode]:
        """Yield the next selected leaf, re-checking the node headroom."""
        if self._cursor >= len(self._leaves):
            return None
        if self._cursor:
            # Sequential iterations re-check the budget before every leaf;
            # charges already committed for earlier expansions (``planned``)
            # count against the node headroom too.
            remaining = budget.remaining_nodes()
            if budget.exhausted() or (remaining is not None
                                      and remaining <= planned):
                return None
        leaf = self._leaves[self._cursor]
        self._cursor += 1
        return leaf

    def select_neuron(self, leaf: MctsNode) -> Optional[Neuron]:
        """Pick the leaf's branching neuron with the configured heuristic."""
        context = BranchingContext(network=self.appver.lowered,
                                   spec=self.spec.output_spec,
                                   report=leaf.outcome.report, splits=leaf.splits,
                                   evaluate_split=self._probe)
        return self.heuristic.select(context)

    def child_splits(self, leaf: MctsNode, neuron: Neuron,
                     phases: Sequence[int]) -> List[SplitAssignment]:
        """Record the branch neuron and derive the children's assignments."""
        leaf.branch_neuron = neuron
        return [leaf.splits.with_split(ReluSplit(neuron[0], neuron[1], phase))
                for phase in phases]

    def item_splits(self, leaf: MctsNode) -> SplitAssignment:
        """The leaf's assignment — the parent identity of its children."""
        return leaf.splits

    def push_back(self, leaf: MctsNode, gathered: int) -> Optional[DriverVerdict]:
        """Budget starvation: nothing to do, the leaf stays in the tree."""
        # The leaf was never removed from the tree: it stays selectable, and
        # the main loop re-checks the budget (surfacing TIMEOUT) next round.
        return None

    # -- batched exact leaf resolution -----------------------------------------
    def resolve_leaves(self, leaves: List[MctsNode]) -> Optional[DriverVerdict]:
        """Resolve decided leaves with one batched, cached leaf-LP call."""
        if not self.config.lp_leaf_refinement:
            for leaf in leaves:
                self.has_unknown_leaf = True
                leaf.reward = float("-inf")
                propagate_rewards(leaf.parent or leaf)
            return None
        optima = solve_leaf_lp_batch(
            self.appver.lowered, self.spec.input_box, self.spec.output_spec,
            [(leaf.splits, leaf.outcome.report) for leaf in leaves],
            cache=self.lp_cache, fingerprint=self.lp_fingerprint,
            timings=self.appver.timings)
        for leaf, optimum in zip(leaves, optima):
            self.lp_leaves += 1
            self._apply_leaf_optimum(leaf, optimum)
            propagate_rewards(leaf.parent or leaf)
            if self.root.reward == float("inf"):
                # A leaf LP produced a real counterexample: abandon the rest
                # of the round, exactly as the sequential loop returns.
                return DriverVerdict(VerificationStatus.FALSIFIED,
                                     counterexample=self.root.counterexample)
        return None

    def _apply_leaf_optimum(self, node: MctsNode, optimum) -> None:
        verdict, counterexample = classify_leaf_optimum(optimum, self.spec,
                                                        self.appver.network)
        if verdict == LEAF_FALSIFIED:
            node.reward = float("inf")
            node.counterexample = counterexample
            return
        if verdict != LEAF_VERIFIED:
            self.has_unknown_leaf = True
        node.reward = float("-inf")

    # -- attachment ------------------------------------------------------------
    def attach(self, leaf: MctsNode, phase: int, splits: SplitAssignment,
               outcome: AppVerOutcome) -> Optional[DriverVerdict]:
        """Attach one potentiality-scored child under its frontier leaf."""
        self.scorer.observe(outcome.p_hat)
        child = _score_child(leaf, splits, outcome, self.scorer)
        leaf.children[phase] = child
        self.max_depth = max(self.max_depth, child.depth)
        return None

    def attach_exhausted(self) -> Optional[DriverVerdict]:
        """Wall-clock exhaustion mid-attachment: stop without a verdict."""
        # Stop attaching; the partial expansion stays in the tree and the
        # main loop surfaces TIMEOUT.
        return None

    def leaf_attached(self, leaf: MctsNode, added: int) -> bool:
        """Back-propagate sizes and rewards; stop on a root counterexample."""
        propagate_sizes(leaf, added)
        propagate_rewards(leaf)
        return self.root.reward == float("inf")

    # -- verdicts --------------------------------------------------------------
    def round_complete(self) -> Optional[DriverVerdict]:
        """Map the root reward to a verdict (±inf), or keep searching."""
        if self.root.reward == float("inf"):
            return DriverVerdict(VerificationStatus.FALSIFIED,
                                 counterexample=self.root.counterexample)
        if self.root.reward == float("-inf"):
            status = (VerificationStatus.UNKNOWN if self.has_unknown_leaf
                      else VerificationStatus.VERIFIED)
            return DriverVerdict(status)
        return None

    def timeout(self) -> DriverVerdict:
        """ABONN reports plain TIMEOUT (no bound survives exhaustion)."""
        return DriverVerdict(VerificationStatus.TIMEOUT)

    def drained(self) -> DriverVerdict:  # pragma: no cover - has_work is constant
        """Unreachable (``has_work`` is constant); defensive TIMEOUT."""
        return self.timeout()

    # -- helpers ---------------------------------------------------------------
    def _probe(self, splits: SplitAssignment) -> float:
        self.budget.charge_node()
        return self.appver.evaluate(splits).p_hat


class _AbonnRun(VerifierRun):
    """A resumable ABONN run: one driver round per :meth:`step`.

    Owned by :meth:`AbonnVerifier.start_run`; stepping it to completion is
    byte-identical to :meth:`AbonnVerifier.verify` (which is implemented on
    top of it) — the setup, per-round charges, and the terminal ``_finish``
    mapping all run the same code.
    """

    def __init__(self, verifier: "AbonnVerifier", appver: ApproximateVerifier,
                 source: MctsFrontierSource, driver: FrontierDriver,
                 budget: Budget, lp_cache: LpCache) -> None:
        self.verifier = verifier
        self.appver = appver
        self.source = source
        self.driver = driver
        self.budget = budget
        self.lp_cache = lp_cache
        self._run = driver.start(source, budget)
        self._result: Optional[VerificationResult] = None

    def _finish(self, verdict: DriverVerdict) -> VerificationResult:
        return self.verifier._finish(
            verdict.status, self.appver, self.budget, self.lp_cache,
            counterexample=verdict.counterexample, bound=verdict.bound,
            max_depth=self.source.max_depth, lp_leaves=self.source.lp_leaves,
            attached_by_stage=dict(self.driver.attached_by_stage))

    def step(self) -> Optional[VerificationResult]:
        """Advance one frontier round; the final result once finished."""
        if self._result is not None:
            return self._result
        verdict = self._run.step()
        if verdict is None:
            return None
        self._result = self._finish(verdict)
        return self._result

    def interrupt(self) -> VerificationResult:
        """Finish early with ABONN's budget-exhaustion (TIMEOUT) result."""
        if self._result is None:
            self._result = self._finish(self.source.timeout())
        return self._result


class AbonnVerifier(Verifier):
    """The paper's proposed verifier.

    ``lp_cache`` optionally shares a leaf-LP cache across runs *on the same
    verification problem* (the cache key is the leaf's canonical split
    assignment, which only identifies a sub-problem for a fixed network,
    input box and output spec); by default every run gets a fresh cache.
    ``bound_cache`` likewise shares the split-aware bound cache across runs
    on one problem (the verification service scopes both by the problem
    fingerprint); it only applies while ``config.use_bound_cache`` is on.
    """

    name = "ABONN"

    def __init__(self, config: Optional[AbonnConfig] = None,
                 lp_cache: Optional[LpCache] = None,
                 bound_cache=None) -> None:
        self.config = config or AbonnConfig()
        self.lp_cache = lp_cache
        self.bound_cache = bound_cache

    # -- public API -----------------------------------------------------------
    def start_run(self, network: Network, spec: Specification,
                  budget: Optional[Budget] = None) -> VerifierRun:
        """Set up Alg. 1 and return a run preemptible at round boundaries."""
        config = self.config
        budget = make_budget(budget)
        appver = ApproximateVerifier(network, spec, config.bound_method,
                                     alpha_config=config.alpha_config,
                                     use_cache=config.use_bound_cache,
                                     cache_size=config.bound_cache_size,
                                     incremental=config.incremental,
                                     cascade=config.cascade,
                                     bound_cache=self.bound_cache)
        heuristic = make_heuristic(config.heuristic)
        scorer = PotentialityScorer(max(appver.num_relu_neurons, 1), config.lam)
        lp_cache = self.lp_cache if self.lp_cache is not None else LpCache()

        # Initialisation (Alg. 1 lines 1-3, 8-9).
        root_outcome = appver.evaluate()
        budget.charge_node()
        scorer.observe(root_outcome.p_hat)
        if root_outcome.verified or root_outcome.report.infeasible:
            return CompletedRun(self._finish(
                VerificationStatus.VERIFIED, appver, budget, lp_cache,
                bound=root_outcome.p_hat, max_depth=0))
        if root_outcome.falsified:
            return CompletedRun(self._finish(
                VerificationStatus.FALSIFIED, appver, budget, lp_cache,
                counterexample=root_outcome.candidate,
                bound=root_outcome.p_hat, max_depth=0))

        root = MctsNode(SplitAssignment.empty(), depth=0, outcome=root_outcome)
        root.reward = scorer.score(root_outcome.p_hat, False, 0)

        # Main loop (Alg. 1 lines 4-7) on the shared frontier engine: every
        # round expands up to ``frontier_size`` leaves through one batched
        # AppVer call and resolves the round's decided leaves through one
        # batched, cached leaf-LP call.
        # Fingerprint-scoping only matters for an externally shared cache —
        # a fresh per-run cache never sees another problem's keys, so the
        # weight digest is skipped for it.
        lp_fingerprint = (problem_fingerprint(appver.lowered, spec.input_box,
                                              spec.output_spec)
                          if self.lp_cache is not None else None)
        source = MctsFrontierSource(root, appver, heuristic, scorer, spec,
                                    config, budget, lp_cache,
                                    lp_fingerprint=lp_fingerprint)
        driver = FrontierDriver(appver, config.frontier_size)
        return _AbonnRun(self, appver, source, driver, budget, lp_cache)

    def verify(self, network: Network, spec: Specification,
               budget: Optional[Budget] = None) -> VerificationResult:
        """Run Alg. 1 on the shared frontier engine until verdict or budget."""
        return self.start_run(network, spec, budget).run_to_completion()

    # -- helpers ----------------------------------------------------------------
    def _make_child(self, parent: MctsNode, splits: SplitAssignment,
                    outcome: AppVerOutcome, scorer: PotentialityScorer) -> MctsNode:
        """Create one potentiality-scored child (kept as a testing seam)."""
        return _score_child(parent, splits, outcome, scorer)

    def _finish(self, status: VerificationStatus, appver: ApproximateVerifier,
                budget: Budget, lp_cache: LpCache,
                counterexample: Optional[np.ndarray] = None,
                bound: Optional[float] = None, max_depth: int = 0,
                lp_leaves: int = 0,
                attached_by_stage: Optional[dict] = None) -> VerificationResult:
        """Map a terminal state to the verifier's result format."""
        cascade = appver.cascade_stats()
        cascade["attached_by_stage"] = attached_by_stage or {}
        return VerificationResult(
            status=status,
            verifier=self.name,
            elapsed_seconds=budget.elapsed_seconds,
            nodes_explored=appver.num_calls,
            tree_size=appver.num_calls,
            counterexample=counterexample,
            bound=bound,
            extras={
                "max_depth": max_depth,
                "lambda": self.config.lam,
                "exploration": self.config.exploration,
                "heuristic": self.config.heuristic,
                "frontier_size": self.config.frontier_size,
                "incremental": self.config.incremental,
                "lp_leaves_resolved": lp_leaves,
                "bound_cache": appver.cache_stats(),
                "lp_cache": lp_cache.stats.as_dict(),
                "cascade": cascade,
                "timings": appver.timings.as_dict(),
            },
        )
