"""Counterexample potentiality (Def. 1 of the paper).

The potentiality ``[[Γ]]`` of a BaB node Γ measures how likely the node's
sub-problem is to contain a real counterexample:

* ``-inf`` when the node is verified (``p̂ > 0``) — no counterexample can
  exist below it;
* ``+inf`` when the node's candidate counterexample is valid — a real
  counterexample has been found;
* otherwise a convex combination of two normalised attributes:
  ``λ · depth(Γ)/K  +  (1-λ) · p̂/p̂_min``, where ``K`` is the total number
  of ReLU neurons and ``p̂_min`` a normalisation constant.

The paper leaves the choice of ``p̂_min`` implicit; this implementation uses
the most negative ``p̂`` observed so far in the search (initially the root's
``p̂``), so that the second attribute stays within ``[0, 1]`` exactly as the
depth attribute does.  Both attributes increase with the likelihood of a
counterexample: deeper nodes carry less over-approximation, and more
negative bounds indicate stronger (apparent) violation.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.utils.validation import require


def counterexample_potentiality(p_hat: float, is_valid_counterexample: bool,
                                depth: int, num_relu_neurons: int, lam: float,
                                p_hat_min: float) -> float:
    """Compute ``[[Γ]]`` per Def. 1.

    Parameters
    ----------
    p_hat:
        The AppVer evaluation of the node.
    is_valid_counterexample:
        Whether the candidate counterexample returned with ``p̂ < 0`` is real.
    depth:
        Node depth in the BaB tree (the root has depth 0).
    num_relu_neurons:
        ``K`` — total number of ReLU neurons in the network.
    lam:
        λ ∈ [0, 1], the weight of the depth attribute.
    p_hat_min:
        Normalisation constant for ``p̂`` (the most negative bound observed);
        must be negative whenever ``p_hat`` is negative.
    """
    require(0.0 <= lam <= 1.0, "lam must be in [0, 1]")
    require(num_relu_neurons > 0, "the network must contain at least one ReLU neuron")
    require(depth >= 0, "depth must be non-negative")
    if p_hat > 0.0:
        return float("-inf")
    if p_hat < 0.0 and is_valid_counterexample:
        return float("inf")
    depth_term = min(depth / num_relu_neurons, 1.0)
    if p_hat_min >= 0.0 or p_hat >= 0.0:
        violation_term = 0.0
    else:
        violation_term = min(p_hat / p_hat_min, 1.0)
    return lam * depth_term + (1.0 - lam) * violation_term


@dataclass
class PotentialityScorer:
    """Stateful scorer that tracks the normalisation constant ``p̂_min``.

    The scorer observes every AppVer result produced during a search and
    keeps ``p̂_min`` as the most negative bound seen, so potentiality values
    remain comparable across the whole tree.
    """

    num_relu_neurons: int
    lam: float
    p_hat_min: float = -1e-9

    def observe(self, p_hat: float) -> None:
        """Record a bound so the normalisation constant stays up to date."""
        if p_hat < self.p_hat_min and p_hat != float("-inf"):
            self.p_hat_min = float(p_hat)

    def score(self, p_hat: float, is_valid_counterexample: bool, depth: int) -> float:
        """Potentiality of a node with the current normalisation constant."""
        return counterexample_potentiality(p_hat, is_valid_counterexample, depth,
                                           self.num_relu_neurons, self.lam,
                                           self.p_hat_min)
