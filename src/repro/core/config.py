"""Configuration of the ABONN verifier (the hyperparameters of Alg. 1)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.bounds.alpha_crown import AlphaCrownConfig
from repro.bounds.cache import DEFAULT_CACHE_SIZE
from repro.utils.validation import require
from repro.verifiers.appver import CascadeConfig

#: The paper's default hyperparameters (§V-A): λ = 0.5, c = 0.2.
DEFAULT_LAMBDA = 0.5
DEFAULT_EXPLORATION = 0.2


@dataclass(frozen=True)
class AbonnConfig:
    """Hyperparameters of ABONN (Alg. 1).

    Attributes
    ----------
    lam:
        λ of Def. 1 — the weight of the depth attribute in the
        counterexample potentiality (the remaining ``1 - λ`` weights the
        normalised ``p̂`` attribute).
    exploration:
        ``c`` of the UCB1 rule in Alg. 1 line 13 — the exploration bonus
        weight (0 means pure exploitation).
    heuristic:
        Name of the ReLU branching heuristic ``H`` (see
        :mod:`repro.bab.heuristics`); the paper uses DeepSplit.
    bound_method:
        AppVer back-end: ``"deeppoly"`` (default), ``"alpha-crown"``, ``"ibp"``.
    frontier_size:
        ``K`` — the number of distinct MCTS leaves expanded per iteration.
        Each iteration selects up to ``K`` leaves by repeated UCB1 descent
        (with virtual-loss exclusion so selections spread over the tree) and
        bounds all of their phase-split children through **one**
        ``evaluate_batch`` call of up to ``2K`` sub-problems.  ``K=1``
        (default) reproduces the sequential Alg. 1 loop exactly; larger
        values trade strict selection order for realised AppVer batch sizes
        that actually reach the batched back-end's throughput regime.
        Verdicts remain sound for every ``K``.
    deep_redescent:
        Keep filling the frontier when a UCB1 descent dead-ends: the dead
        end is back-propagated (deeper virtual back-propagation) and the
        descent retried, so sparser trees still realise large batches.  At
        ``K=1`` this only merges the sequential loop's propagate-then-retry
        rounds and changes no charge; disable to reproduce the PR-2
        first-dead-end-stops behaviour exactly.
    lp_leaf_refinement:
        Resolve fully phase-decided leaves exactly with an LP (keeps the
        procedure complete, mirroring the paper's GUROBI back-end).  All
        decided leaves of one frontier round are solved through one
        :func:`~repro.verifiers.milp.solve_leaf_lp_batch` call, memoised in
        an :class:`~repro.bounds.cache.LpCache` keyed by the leaf's
        canonical split assignment.
    use_bound_cache:
        Memoise per-layer pre-activation bounds (and whole reports) in the
        AppVer's split-aware bound cache.  Caching never changes verdicts —
        a hit returns exactly what recomputation would.
    bound_cache_size:
        Maximum number of bound-cache entries (LRU eviction beyond that).
    incremental:
        Thread parent identity into the batched bound calls so phase-split
        children resolve as rank-1 deltas against their parent's memoised
        backward pass (and candidate validation / α-CROWN warm starts reuse
        the parent too).  With the default DeepPoly back-end, results —
        verdicts, node charges, counterexamples — are identical with the
        flag on or off; off reproduces the PR-3 bound path exactly (the
        benchmark baseline).  With ``bound_method="alpha-crown"`` the warm
        start moves where the SPSA ascent *begins*, so the optimised (still
        sound) bounds — and hence trajectories — may differ between the
        modes.
    cascade:
        Optional :class:`~repro.verifiers.appver.CascadeConfig` enabling the
        precision-cascade dispatcher: batched children are routed through
        cheap prefilter stages (IBP, then relaxed-incremental DeepPoly) and
        only the survivors reach the exact back-end.  Prefilter stages only
        ever *verify* (their bounds are sound), so verdicts stay sound;
        ``None`` (default) keeps ``evaluate_batch`` byte-for-byte the
        single-back-end path.  Per-stage decide counts and seconds surface
        in ``extras["cascade"]``.
    """

    lam: float = DEFAULT_LAMBDA
    exploration: float = DEFAULT_EXPLORATION
    heuristic: str = "deepsplit"
    bound_method: str = "deeppoly"
    frontier_size: int = 1
    deep_redescent: bool = True
    lp_leaf_refinement: bool = True
    alpha_config: Optional[AlphaCrownConfig] = None
    use_bound_cache: bool = True
    bound_cache_size: int = DEFAULT_CACHE_SIZE
    incremental: bool = True
    cascade: Optional[CascadeConfig] = None

    def __post_init__(self) -> None:
        require(0.0 <= self.lam <= 1.0, "lam must be in [0, 1]")
        require(self.exploration >= 0.0, "exploration must be non-negative")
        require(self.bound_cache_size >= 1, "bound_cache_size must be positive")
        require(self.frontier_size >= 1, "frontier_size must be positive")
