"""A reader and writer for the VNN-LIB property format (robustness subset).

VNN-COMP (which the paper's benchmarks come from) distributes verification
properties as ``.vnnlib`` files: SMT-LIB-flavoured text that declares input
variables ``X_i`` and output variables ``Y_j``, asserts box constraints on
the inputs, and asserts an *unsafe region* over the outputs (the property is
violated iff some input in the box maps into the unsafe region).

This module supports the subset used by local-robustness benchmarks:

* input constraints ``(assert (<= X_i c))`` and ``(assert (>= X_i c))``;
* output constraints that are either a conjunction of atoms asserted at the
  top level, or a single ``(assert (or (and atom) (and atom) ...))`` whose
  disjuncts each contain one atom (the standard encoding of "some other
  class wins");
* atoms of the form ``(<= a b)`` / ``(>= a b)`` where each side is an output
  variable ``Y_j`` or a numeric constant.

The parsed unsafe region is converted to a :class:`Specification` whose
output property is the *negation* of the unsafe region (a conjunction of
linear constraints), matching the semantics used throughout the library.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.specs.properties import InputBox, LinearOutputSpec, Specification
from repro.utils.validation import require


class VnnLibError(ValueError):
    """Raised when a ``.vnnlib`` file cannot be parsed or converted."""


# ---------------------------------------------------------------------------
# S-expression tokenising / parsing
# ---------------------------------------------------------------------------

def _tokenize(text: str) -> List[str]:
    text = re.sub(r";[^\n]*", "", text)  # strip comments
    text = text.replace("(", " ( ").replace(")", " ) ")
    return text.split()


def _parse_sexprs(tokens: List[str]) -> List[object]:
    """Parse a flat token list into nested lists (one per top-level form)."""
    forms: List[object] = []
    stack: List[List[object]] = []
    for token in tokens:
        if token == "(":
            stack.append([])
        elif token == ")":
            if not stack:
                raise VnnLibError("unbalanced parenthesis in vnnlib file")
            finished = stack.pop()
            if stack:
                stack[-1].append(finished)
            else:
                forms.append(finished)
        else:
            if not stack:
                raise VnnLibError(f"unexpected token {token!r} outside any form")
            stack[-1].append(token)
    if stack:
        raise VnnLibError("unbalanced parenthesis in vnnlib file")
    return forms


# ---------------------------------------------------------------------------
# Atom model
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class LinearAtom:
    """A single linear constraint ``coeffs @ y + offset >= 0`` over outputs."""

    coefficients: np.ndarray
    offset: float

    def negated(self) -> "LinearAtom":
        """Logical negation, treating the boundary as satisfied either way."""
        return LinearAtom(-self.coefficients, -self.offset)


@dataclass
class ParsedVnnLib:
    """Raw contents of a parsed ``.vnnlib`` file."""

    num_inputs: int
    num_outputs: int
    input_lower: np.ndarray
    input_upper: np.ndarray
    #: Unsafe region as a disjunction of conjunctions of atoms.
    unsafe_disjuncts: List[List[LinearAtom]] = field(default_factory=list)

    def to_specification(self, name: str = "vnnlib") -> Specification:
        """Convert to a conjunctive :class:`Specification`.

        Requires every disjunct of the unsafe region to contain exactly one
        atom (the standard robustness encoding); the safe property is then
        the conjunction of the negated atoms.
        """
        if not self.unsafe_disjuncts:
            raise VnnLibError("vnnlib file contains no output constraints")
        rows = []
        offsets = []
        for disjunct in self.unsafe_disjuncts:
            if len(disjunct) != 1:
                raise VnnLibError(
                    "only single-atom disjuncts are supported when converting to a "
                    "conjunctive specification (standard robustness encoding)")
            atom = disjunct[0].negated()
            rows.append(atom.coefficients)
            offsets.append(atom.offset)
        output_spec = LinearOutputSpec(np.vstack(rows), np.asarray(offsets),
                                       description="negation of vnnlib unsafe region")
        input_box = InputBox(self.input_lower, self.input_upper)
        return Specification(input_box, output_spec, name=name,
                             metadata={"kind": "vnnlib"})


# ---------------------------------------------------------------------------
# Parsing
# ---------------------------------------------------------------------------

_VARIABLE_RE = re.compile(r"^([XY])_(\d+)$")


def _variable(token: object) -> Optional[Tuple[str, int]]:
    if not isinstance(token, str):
        return None
    match = _VARIABLE_RE.match(token)
    if match is None:
        return None
    return match.group(1), int(match.group(2))


def _term_to_linear(term: object, num_outputs: int) -> Tuple[np.ndarray, float]:
    """Convert a term (Y variable or constant) to ``(coeffs, constant)``."""
    coefficients = np.zeros(num_outputs)
    variable = _variable(term)
    if variable is not None:
        kind, index = variable
        if kind != "Y":
            raise VnnLibError("input variables are not allowed in output constraints")
        if index >= num_outputs:
            raise VnnLibError(f"output variable Y_{index} out of range")
        coefficients[index] = 1.0
        return coefficients, 0.0
    try:
        return coefficients, float(term)  # type: ignore[arg-type]
    except (TypeError, ValueError) as exc:
        raise VnnLibError(f"unsupported term in output constraint: {term!r}") from exc


def _atom_from_form(form: List[object], num_outputs: int) -> LinearAtom:
    if len(form) != 3 or form[0] not in ("<=", ">="):
        raise VnnLibError(f"unsupported output atom: {form!r}")
    operator, left, right = form
    left_coeffs, left_const = _term_to_linear(left, num_outputs)
    right_coeffs, right_const = _term_to_linear(right, num_outputs)
    if operator == "<=":
        # left <= right  <=>  right - left >= 0
        return LinearAtom(right_coeffs - left_coeffs, right_const - left_const)
    # left >= right  <=>  left - right >= 0
    return LinearAtom(left_coeffs - right_coeffs, left_const - right_const)


def parse_vnnlib(text: str) -> ParsedVnnLib:
    """Parse ``.vnnlib`` text into a :class:`ParsedVnnLib` structure."""
    forms = _parse_sexprs(_tokenize(text))

    input_indices: List[int] = []
    output_indices: List[int] = []
    asserts: List[List[object]] = []
    for form in forms:
        if not isinstance(form, list) or not form:
            continue
        head = form[0]
        if head == "declare-const":
            variable = _variable(form[1])
            if variable is None:
                raise VnnLibError(f"cannot parse declaration {form!r}")
            kind, index = variable
            (input_indices if kind == "X" else output_indices).append(index)
        elif head == "assert":
            if len(form) != 2:
                raise VnnLibError(f"malformed assert {form!r}")
            asserts.append(form[1])

    if not input_indices or not output_indices:
        raise VnnLibError("vnnlib file must declare X_* and Y_* variables")
    num_inputs = max(input_indices) + 1
    num_outputs = max(output_indices) + 1

    lower = np.full(num_inputs, -np.inf)
    upper = np.full(num_inputs, np.inf)
    unsafe_disjuncts: List[List[LinearAtom]] = []
    conjunctive_atoms: List[LinearAtom] = []

    for form in asserts:
        if not isinstance(form, list) or not form:
            raise VnnLibError(f"malformed assertion {form!r}")
        if form[0] in ("<=", ">=") and _is_input_atom(form):
            _apply_input_bound(form, lower, upper)
        elif form[0] in ("<=", ">="):
            conjunctive_atoms.append(_atom_from_form(form, num_outputs))
        elif form[0] == "or":
            for disjunct in form[1:]:
                unsafe_disjuncts.append(_parse_disjunct(disjunct, num_outputs))
        elif form[0] == "and":
            conjunctive_atoms.extend(_atom_from_form(atom, num_outputs)
                                     for atom in form[1:])
        else:
            raise VnnLibError(f"unsupported assertion {form!r}")

    if conjunctive_atoms:
        # Top-level conjunction of output atoms describes a single unsafe region.
        unsafe_disjuncts.append(conjunctive_atoms)

    if np.any(~np.isfinite(lower)) or np.any(~np.isfinite(upper)):
        raise VnnLibError("every input variable needs both a lower and an upper bound")

    return ParsedVnnLib(num_inputs, num_outputs, lower, upper, unsafe_disjuncts)


def _is_input_atom(form: List[object]) -> bool:
    for term in form[1:]:
        variable = _variable(term)
        if variable is not None and variable[0] == "X":
            return True
    return False


def _apply_input_bound(form: List[object], lower: np.ndarray, upper: np.ndarray) -> None:
    operator, left, right = form
    left_var, right_var = _variable(left), _variable(right)
    if left_var is not None and left_var[0] == "X":
        index = left_var[1]
        value = float(right)  # type: ignore[arg-type]
        if operator == "<=":
            upper[index] = min(upper[index], value)
        else:
            lower[index] = max(lower[index], value)
    elif right_var is not None and right_var[0] == "X":
        index = right_var[1]
        value = float(left)  # type: ignore[arg-type]
        if operator == "<=":
            lower[index] = max(lower[index], value)
        else:
            upper[index] = min(upper[index], value)
    else:
        raise VnnLibError(f"cannot interpret input bound {form!r}")


def _parse_disjunct(disjunct: object, num_outputs: int) -> List[LinearAtom]:
    if not isinstance(disjunct, list) or not disjunct:
        raise VnnLibError(f"malformed disjunct {disjunct!r}")
    if disjunct[0] == "and":
        return [_atom_from_form(atom, num_outputs) for atom in disjunct[1:]]
    return [_atom_from_form(disjunct, num_outputs)]


def load_vnnlib(path: Union[str, Path], name: Optional[str] = None) -> Specification:
    """Load a ``.vnnlib`` file and convert it to a :class:`Specification`."""
    path = Path(path)
    parsed = parse_vnnlib(path.read_text())
    return parsed.to_specification(name=name or path.stem)


# ---------------------------------------------------------------------------
# Writing
# ---------------------------------------------------------------------------

def specification_to_vnnlib(spec: Specification) -> str:
    """Serialise a conjunctive specification as a ``.vnnlib`` robustness property.

    Each output constraint ``c @ y + d >= 0`` becomes one disjunct of the
    unsafe region asserting its violation ``c @ y + d <= 0``.  Only
    constraints mentioning at most two outputs with coefficients ±1 and the
    common single-output form are expressible in the standard atom syntax;
    other rows raise :class:`VnnLibError`.
    """
    lines: List[str] = ["; generated by repro.specs.vnnlib"]
    box = spec.input_box
    for index in range(box.dimension):
        lines.append(f"(declare-const X_{index} Real)")
    for index in range(spec.output_spec.output_dim):
        lines.append(f"(declare-const Y_{index} Real)")
    lines.append("")
    for index in range(box.dimension):
        lines.append(f"(assert (>= X_{index} {float(box.lower[index])!r}))")
        lines.append(f"(assert (<= X_{index} {float(box.upper[index])!r}))")
    lines.append("")
    disjuncts = []
    for row, offset in zip(spec.output_spec.coefficients, spec.output_spec.offsets):
        disjuncts.append(f"(and {_atom_text(row, float(offset))})")
    lines.append(f"(assert (or {' '.join(disjuncts)}))")
    lines.append("")
    return "\n".join(lines)


def _atom_text(coefficients: np.ndarray, offset: float) -> str:
    """Render the violation ``c @ y + d <= 0`` of one constraint row as an atom."""
    nonzero = np.nonzero(coefficients)[0]
    if len(nonzero) == 1 and abs(offset) >= 0:
        index = int(nonzero[0])
        coefficient = coefficients[index]
        bound = float(-offset / coefficient)
        operator = "<=" if coefficient > 0 else ">="
        return f"({operator} Y_{index} {bound!r})"
    if len(nonzero) == 2 and offset == 0.0:
        first, second = int(nonzero[0]), int(nonzero[1])
        if np.isclose(coefficients[first], 1.0) and np.isclose(coefficients[second], -1.0):
            return f"(<= Y_{first} Y_{second})"
        if np.isclose(coefficients[first], -1.0) and np.isclose(coefficients[second], 1.0):
            return f"(<= Y_{second} Y_{first})"
    raise VnnLibError("only ±1 pairwise or single-output constraints can be written")


def save_vnnlib(spec: Specification, path: Union[str, Path]) -> None:
    """Write ``spec`` to ``path`` in VNN-LIB syntax."""
    Path(path).write_text(specification_to_vnnlib(spec))
