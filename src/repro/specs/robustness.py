"""Local-robustness specification builders and radius sweeps.

The paper's 552 benchmark problems are all L∞ local-robustness properties:
for a reference input ``x0`` with label ``t``, every input within an L∞
ball of radius ``ε`` must be classified as ``t``.  In the linear form of
:class:`repro.specs.properties.LinearOutputSpec` this is the conjunction of
``y_t - y_j >= 0`` for every other class ``j``.

:func:`robustness_radius_sweep` verifies the same reference at a ladder of
radii while threading **one shared** :class:`~repro.bounds.cache.LpCache`
through every run: the verifiers scope their cache keys by the problem
fingerprint (network ⊕ box ⊕ spec), so a re-visited problem reuses its leaf
solves and nearby radii — whose boxes, and hence optima, differ — can never
collide.  This is the pattern robustness-radius searches (bisection over
ε, certified-accuracy curves) hit constantly: they re-verify the same
network at many nearby epsilons.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence, Tuple

import numpy as np

from repro.bounds.cache import LpCache
from repro.specs.properties import InputBox, LinearOutputSpec, Specification
from repro.utils.validation import require


def robustness_output_spec(num_classes: int, label: int,
                           target: Optional[int] = None) -> LinearOutputSpec:
    """Output property "class ``label`` wins" as linear constraints.

    With ``target`` given, only the single constraint ``y_label - y_target >= 0``
    is produced (a targeted-robustness property); otherwise one constraint per
    competing class.
    """
    require(num_classes >= 2, "need at least two classes")
    require(0 <= label < num_classes, f"label {label} out of range")
    if target is not None:
        require(0 <= target < num_classes and target != label,
                f"target {target} must be a class different from the label")
        competitors: Sequence[int] = [target]
    else:
        competitors = [j for j in range(num_classes) if j != label]
    coefficients = np.zeros((len(competitors), num_classes))
    for row, competitor in enumerate(competitors):
        coefficients[row, label] = 1.0
        coefficients[row, competitor] = -1.0
    description = (f"class {label} beats class {target}" if target is not None
                   else f"class {label} beats all other classes")
    return LinearOutputSpec(coefficients, np.zeros(len(competitors)), description)


def local_robustness_spec(reference: np.ndarray, epsilon: float, label: int,
                          num_classes: int, target: Optional[int] = None,
                          domain_lower: float = 0.0, domain_upper: float = 1.0,
                          name: Optional[str] = None) -> Specification:
    """Build the L∞ local-robustness verification problem around ``reference``."""
    reference = np.asarray(reference, dtype=float).reshape(-1)
    input_box = InputBox.from_linf_ball(reference, epsilon, domain_lower, domain_upper)
    output_spec = robustness_output_spec(num_classes, label, target)
    if name is None:
        name = f"robustness(eps={epsilon:g}, label={label})"
    metadata = {
        "kind": "local_robustness",
        "epsilon": float(epsilon),
        "label": int(label),
        "target": None if target is None else int(target),
        "reference": reference.copy(),
    }
    return Specification(input_box, output_spec, name=name, metadata=metadata)


def robustness_radius_sweep(make_verifier: Callable[[LpCache], object],
                            network, reference: np.ndarray,
                            epsilons: Sequence[float], label: int,
                            num_classes: int,
                            budget=None,
                            shared_lp_cache: Optional[LpCache] = None,
                            target: Optional[int] = None,
                            domain_lower: float = 0.0,
                            domain_upper: float = 1.0
                            ) -> Tuple[List[Tuple[float, object]], LpCache]:
    """Verify one reference at several radii with a shared leaf-LP cache.

    ``make_verifier`` builds a fresh verifier from the shared
    :class:`~repro.bounds.cache.LpCache` (e.g. ``lambda cache:
    AbonnVerifier(lp_cache=cache)``); one verifier instance runs per
    epsilon so per-run state never leaks between radii, while the cache —
    keyed by ``(problem fingerprint, canonical splits)`` — persists across
    the sweep.  ``budget`` (a :class:`~repro.utils.timing.Budget`) is
    copied per run so every radius gets the full allowance.  Returns the
    per-epsilon ``(epsilon, VerificationResult)`` pairs in input order plus
    the cache, whose ``stats`` show the cross-run reuse.
    """
    require(len(epsilons) > 0, "epsilons must be non-empty")
    cache = shared_lp_cache if shared_lp_cache is not None else LpCache()
    results: List[Tuple[float, object]] = []
    for epsilon in epsilons:
        spec = local_robustness_spec(reference, float(epsilon), label,
                                     num_classes, target=target,
                                     domain_lower=domain_lower,
                                     domain_upper=domain_upper)
        verifier = make_verifier(cache)
        # Start the per-run copy explicitly: ``make_verifier`` may build a
        # custom verifier that consumes the budget directly (without the
        # ``make_budget`` copy-and-start), and an unstarted wall clock would
        # otherwise only begin at its first ``exhausted()`` check.
        run_budget = budget.copy().start() if budget is not None else None
        results.append((float(epsilon),
                        verifier.verify(network, spec, run_budget)))
    return results, cache


def robustness_radius_sweep_service(network, reference: np.ndarray,
                                    epsilons: Sequence[float], label: int,
                                    num_classes: int,
                                    budget=None,
                                    service=None,
                                    priority: int = 0,
                                    deadline_seconds: Optional[float] = None,
                                    target: Optional[int] = None,
                                    domain_lower: float = 0.0,
                                    domain_upper: float = 1.0,
                                    transport: str = "cooperative"):
    """Run a radius sweep through the verification service.

    The service generalises :func:`robustness_radius_sweep`: each epsilon
    becomes one job, sharded and cached by problem fingerprint, so repeated
    epsilons (bisection revisits, concurrent sweeps over one model) reuse
    each other's leaf-LP and bound work and the whole sweep shares one
    warm-model digest.  ``service`` accepts an existing
    :class:`~repro.service.scheduler.VerificationService` (jobs join its
    pool and caches); by default a fresh one is built on ``transport``
    (``"cooperative"`` or ``"threaded"`` — a threaded sweep runs the radii
    in parallel across fingerprint shards; the caller owns the returned
    service's ``shutdown()``).  Failed jobs raise — a sweep has no
    meaningful partial answer.  Returns the per-epsilon
    ``(epsilon, VerificationResult)`` pairs in input order plus the
    service, whose ``stats()`` expose the cross-request reuse.
    """
    require(len(epsilons) > 0, "epsilons must be non-empty")
    # Imported lazily: ``repro.service`` sits above the verifiers, which
    # import this module — a top-level import would be circular.
    from repro.service import ServiceConfig, VerificationService

    if service is None:
        service = VerificationService(ServiceConfig(transport=transport))
    job_ids = []
    for epsilon in epsilons:
        spec = local_robustness_spec(reference, float(epsilon), label,
                                     num_classes, target=target,
                                     domain_lower=domain_lower,
                                     domain_upper=domain_upper)
        run_budget = budget.copy().start() if budget is not None else None
        job_ids.append(service.submit(network, spec, budget=run_budget,
                                      priority=priority,
                                      deadline_seconds=deadline_seconds))
    wanted = set(job_ids)
    for job_result in service.as_completed():
        if job_result.job_id in wanted and not job_result.ok:
            raise RuntimeError(
                f"sweep job {job_result.job_id} failed: {job_result.error}")
    results: List[Tuple[float, object]] = []
    for epsilon, job_id in zip(epsilons, job_ids):
        results.append((float(epsilon), service.result(job_id).result))
    return results, service
