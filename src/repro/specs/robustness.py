"""Local-robustness specification builders.

The paper's 552 benchmark problems are all L∞ local-robustness properties:
for a reference input ``x0`` with label ``t``, every input within an L∞
ball of radius ``ε`` must be classified as ``t``.  In the linear form of
:class:`repro.specs.properties.LinearOutputSpec` this is the conjunction of
``y_t - y_j >= 0`` for every other class ``j``.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.specs.properties import InputBox, LinearOutputSpec, Specification
from repro.utils.validation import require


def robustness_output_spec(num_classes: int, label: int,
                           target: Optional[int] = None) -> LinearOutputSpec:
    """Output property "class ``label`` wins" as linear constraints.

    With ``target`` given, only the single constraint ``y_label - y_target >= 0``
    is produced (a targeted-robustness property); otherwise one constraint per
    competing class.
    """
    require(num_classes >= 2, "need at least two classes")
    require(0 <= label < num_classes, f"label {label} out of range")
    if target is not None:
        require(0 <= target < num_classes and target != label,
                f"target {target} must be a class different from the label")
        competitors: Sequence[int] = [target]
    else:
        competitors = [j for j in range(num_classes) if j != label]
    coefficients = np.zeros((len(competitors), num_classes))
    for row, competitor in enumerate(competitors):
        coefficients[row, label] = 1.0
        coefficients[row, competitor] = -1.0
    description = (f"class {label} beats class {target}" if target is not None
                   else f"class {label} beats all other classes")
    return LinearOutputSpec(coefficients, np.zeros(len(competitors)), description)


def local_robustness_spec(reference: np.ndarray, epsilon: float, label: int,
                          num_classes: int, target: Optional[int] = None,
                          domain_lower: float = 0.0, domain_upper: float = 1.0,
                          name: Optional[str] = None) -> Specification:
    """Build the L∞ local-robustness verification problem around ``reference``."""
    reference = np.asarray(reference, dtype=float).reshape(-1)
    input_box = InputBox.from_linf_ball(reference, epsilon, domain_lower, domain_upper)
    output_spec = robustness_output_spec(num_classes, label, target)
    if name is None:
        name = f"robustness(eps={epsilon:g}, label={label})"
    metadata = {
        "kind": "local_robustness",
        "epsilon": float(epsilon),
        "label": int(label),
        "target": None if target is None else int(target),
        "reference": reference.copy(),
    }
    return Specification(input_box, output_spec, name=name, metadata=metadata)
