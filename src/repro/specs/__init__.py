"""Specification substrate: input boxes, linear output properties, VNN-LIB I/O."""

from repro.specs.properties import InputBox, LinearOutputSpec, Specification
from repro.specs.robustness import (
    local_robustness_spec,
    robustness_output_spec,
    robustness_radius_sweep,
    robustness_radius_sweep_service,
)
from repro.specs.vnnlib import (
    ParsedVnnLib,
    VnnLibError,
    load_vnnlib,
    parse_vnnlib,
    save_vnnlib,
    specification_to_vnnlib,
)

__all__ = [
    "InputBox",
    "LinearOutputSpec",
    "Specification",
    "local_robustness_spec",
    "robustness_output_spec",
    "robustness_radius_sweep",
    "robustness_radius_sweep_service",
    "ParsedVnnLib",
    "VnnLibError",
    "load_vnnlib",
    "parse_vnnlib",
    "save_vnnlib",
    "specification_to_vnnlib",
]
