"""Verification specifications: input regions and linear output properties.

A verification problem (§III of the paper) is a pair ``(Φ, Ψ)``:

* ``Φ`` constrains the input — here an axis-aligned box, which covers the
  L∞ local-robustness properties used in the paper's evaluation;
* ``Ψ`` constrains the output — here a conjunction of linear inequalities
  ``C @ y + d >= 0`` over the network output ``y``.  The *margin*
  ``min_i (C_i @ y + d_i)`` plays the role of the paper's satisfaction
  level: the property holds for ``y`` iff the margin is non-negative, and
  the AppVer value ``p̂`` is a lower bound of the margin over the input box.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence, Tuple

import numpy as np

from repro.utils.rng import SeedLike, as_rng
from repro.utils.validation import require, require_finite_array


@dataclass(frozen=True)
class InputBox:
    """An axis-aligned box over the flattened network input."""

    lower: np.ndarray
    upper: np.ndarray

    def __post_init__(self) -> None:
        lower = require_finite_array(self.lower, "lower").reshape(-1)
        upper = require_finite_array(self.upper, "upper").reshape(-1)
        require(lower.shape == upper.shape, "lower and upper must have the same shape")
        require(bool(np.all(lower <= upper)), "lower bound must not exceed upper bound")
        object.__setattr__(self, "lower", lower)
        object.__setattr__(self, "upper", upper)

    @classmethod
    def from_linf_ball(cls, center: np.ndarray, epsilon: float,
                       domain_lower: float = 0.0, domain_upper: float = 1.0) -> "InputBox":
        """The L∞ ball of radius ``epsilon`` around ``center``, clipped to the domain."""
        require(epsilon >= 0.0, "epsilon must be non-negative")
        require(domain_lower <= domain_upper, "invalid domain bounds")
        center = np.asarray(center, dtype=float).reshape(-1)
        lower = np.clip(center - epsilon, domain_lower, domain_upper)
        upper = np.clip(center + epsilon, domain_lower, domain_upper)
        return cls(lower, upper)

    @property
    def dimension(self) -> int:
        return int(self.lower.shape[0])

    @property
    def center(self) -> np.ndarray:
        return 0.5 * (self.lower + self.upper)

    @property
    def radius(self) -> np.ndarray:
        return 0.5 * (self.upper - self.lower)

    @property
    def volume_log(self) -> float:
        """Log-volume of the box (``-inf`` when any side is degenerate)."""
        widths = self.upper - self.lower
        if np.any(widths <= 0.0):
            return float("-inf")
        return float(np.sum(np.log(widths)))

    def contains(self, point: np.ndarray, tolerance: float = 1e-9) -> bool:
        """Whether ``point`` lies inside the box (up to ``tolerance``)."""
        point = np.asarray(point, dtype=float).reshape(-1)
        require(point.shape == self.lower.shape, "point has wrong dimension")
        return bool(np.all(point >= self.lower - tolerance)
                    and np.all(point <= self.upper + tolerance))

    def clip(self, point: np.ndarray) -> np.ndarray:
        """Project ``point`` onto the box."""
        point = np.asarray(point, dtype=float).reshape(-1)
        return np.clip(point, self.lower, self.upper)

    def sample(self, rng: SeedLike = None, count: int = 1) -> np.ndarray:
        """Draw ``count`` uniform samples from the box, shape ``(count, dim)``."""
        rng = as_rng(rng)
        width = self.upper - self.lower
        return self.lower + rng.random((count, self.dimension)) * width

    def corners(self, signs: np.ndarray) -> np.ndarray:
        """Return the corner selected by ``signs`` (>=0 chooses upper, <0 lower)."""
        signs = np.asarray(signs, dtype=float).reshape(-1)
        require(signs.shape == self.lower.shape, "signs has wrong dimension")
        return np.where(signs >= 0, self.upper, self.lower)


@dataclass(frozen=True)
class LinearOutputSpec:
    """A conjunction of linear output constraints ``C @ y + d >= 0``.

    The property is satisfied for an output ``y`` iff every row constraint
    is non-negative; the margin is the minimum row value.
    """

    coefficients: np.ndarray
    offsets: np.ndarray
    description: str = "linear output property"

    def __post_init__(self) -> None:
        coefficients = require_finite_array(self.coefficients, "coefficients")
        offsets = require_finite_array(self.offsets, "offsets").reshape(-1)
        require(coefficients.ndim == 2, "coefficients must be a matrix")
        require(coefficients.shape[0] == offsets.shape[0],
                "coefficients and offsets must have the same number of rows")
        require(coefficients.shape[0] >= 1, "at least one output constraint is required")
        object.__setattr__(self, "coefficients", coefficients)
        object.__setattr__(self, "offsets", offsets)

    @property
    def num_constraints(self) -> int:
        return int(self.coefficients.shape[0])

    @property
    def output_dim(self) -> int:
        return int(self.coefficients.shape[1])

    def constraint_values(self, output: np.ndarray) -> np.ndarray:
        """Per-constraint values ``C @ y + d`` for a single output ``y``."""
        output = np.asarray(output, dtype=float).reshape(-1)
        require(output.shape[0] == self.output_dim,
                f"output has dimension {output.shape[0]}, expected {self.output_dim}")
        return self.coefficients @ output + self.offsets

    def margin(self, output: np.ndarray) -> float:
        """Satisfaction margin: negative iff the property is violated at ``y``."""
        return float(np.min(self.constraint_values(output)))

    def satisfied(self, output: np.ndarray) -> bool:
        return self.margin(output) >= 0.0


@dataclass(frozen=True)
class Specification:
    """A complete verification problem ``(Φ, Ψ)`` plus metadata."""

    input_box: InputBox
    output_spec: LinearOutputSpec
    name: str = "problem"
    metadata: dict = field(default_factory=dict)

    @property
    def input_dim(self) -> int:
        return self.input_box.dimension

    @property
    def output_dim(self) -> int:
        return self.output_spec.output_dim

    def margin(self, network, point: np.ndarray) -> float:
        """Spec margin of ``network`` at a single input ``point``."""
        output = np.asarray(network.forward(point.reshape(1, -1))).reshape(-1)
        return self.output_spec.margin(output)

    def is_counterexample(self, network, point: np.ndarray,
                          tolerance: float = 1e-9) -> bool:
        """True iff ``point`` is inside ``Φ`` and violates ``Ψ`` on ``network``.

        This is the ``valid(x̂)`` predicate of Def. 1 / Alg. 1.
        """
        point = np.asarray(point, dtype=float).reshape(-1)
        if not self.input_box.contains(point, tolerance=tolerance):
            return False
        return self.margin(network, point) < 0.0

    def is_counterexample_batch(self, network, points: np.ndarray,
                                tolerance: float = 1e-9) -> np.ndarray:
        """Vectorised :meth:`is_counterexample` over ``(B, dim)`` points.

        One stacked network forward pass validates the whole batch; the
        containment tolerance and margin formula are the same as the
        scalar predicate (batched GEMMs may differ from single-row
        forwards in the last ulp, which can only matter for margins
        exactly at zero).
        """
        points = np.asarray(points, dtype=float).reshape(-1, self.input_dim)
        inside = np.all((points >= self.input_box.lower - tolerance)
                        & (points <= self.input_box.upper + tolerance), axis=1)
        outputs = np.asarray(network.forward(points))
        values = outputs @ self.output_spec.coefficients.T + self.output_spec.offsets
        return inside & (values.min(axis=1) < 0.0)
