"""Run verifiers over benchmark suites and collect per-instance results."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Sequence

from repro.experiments.suite import BenchmarkSuite, VerificationInstance
from repro.utils.timing import Budget
from repro.verifiers.result import VerificationResult, VerificationStatus, Verifier

#: A factory is used instead of a verifier instance so that stateful verifiers
#: (e.g. those holding RNGs) start fresh on every instance.
VerifierFactory = Callable[[], Verifier]


@dataclass
class InstanceRun:
    """The outcome of one verifier on one benchmark instance."""

    instance: VerificationInstance
    result: VerificationResult

    @property
    def solved(self) -> bool:
        return self.result.solved

    @property
    def time(self) -> float:
        return self.result.elapsed_seconds

    @property
    def nodes(self) -> int:
        return self.result.nodes_explored


@dataclass
class SuiteRunResult:
    """All per-instance results of one verifier over a suite."""

    verifier_name: str
    runs: List[InstanceRun] = field(default_factory=list)

    def by_family(self, family: str) -> List[InstanceRun]:
        return [run for run in self.runs if run.instance.family == family]

    def run_for(self, instance_id: str) -> Optional[InstanceRun]:
        for run in self.runs:
            if run.instance.instance_id == instance_id:
                return run
        return None

    @property
    def solved_count(self) -> int:
        return sum(1 for run in self.runs if run.solved)

    def __len__(self) -> int:
        return len(self.runs)


def run_suite(verifier_factory: VerifierFactory, suite: BenchmarkSuite,
              budget: Budget, instances: Optional[Sequence[VerificationInstance]] = None,
              progress: Optional[Callable[[VerificationInstance, VerificationResult], None]]
              = None) -> SuiteRunResult:
    """Run one verifier over (a subset of) a suite with a per-instance budget.

    ``budget`` is copied for every instance, so the limits apply per problem
    exactly as the paper's per-problem 1000 s timeout does.
    """
    instances = list(instances if instances is not None else suite.instances)
    verifier = verifier_factory()
    outcome = SuiteRunResult(verifier_name=verifier.name)
    for index, instance in enumerate(instances):
        if index > 0:
            verifier = verifier_factory()
        network = suite.network_for(instance)
        result = verifier.verify(network, instance.spec, budget.copy())
        outcome.runs.append(InstanceRun(instance=instance, result=result))
        if progress is not None:
            progress(instance, result)
    return outcome


def run_matrix(verifier_factories: Dict[str, VerifierFactory], suite: BenchmarkSuite,
               budget: Budget,
               instances: Optional[Sequence[VerificationInstance]] = None
               ) -> Dict[str, SuiteRunResult]:
    """Run several verifiers over the same suite (the Table II experiment)."""
    return {name: run_suite(factory, suite, budget, instances=instances)
            for name, factory in verifier_factories.items()}


def ground_truth_statuses(results: Iterable[SuiteRunResult]) -> Dict[str, VerificationStatus]:
    """Best-effort ground truth per instance from a collection of runs.

    An instance is *violated* if any sound verifier falsified it, *certified*
    if any verified it, and unknown otherwise.  Used by the RQ3 figure, which
    groups instances by their true status.
    """
    truth: Dict[str, VerificationStatus] = {}
    for suite_result in results:
        for run in suite_result.runs:
            key = run.instance.instance_id
            status = run.result.status
            if status == VerificationStatus.FALSIFIED:
                truth[key] = VerificationStatus.FALSIFIED
            elif status == VerificationStatus.VERIFIED and key not in truth:
                truth[key] = VerificationStatus.VERIFIED
    return truth
