"""Benchmark-suite generation (the analogue of the paper's 552 problems).

The paper evaluates on L∞ local-robustness problems drawn from VNN-COMP
benchmarks and explicitly selects "meaningful problems that are neither too
easy nor too hard to solve" (§V-A, Fig. 3).  Without the original data we
reproduce that *selection methodology* rather than the exact problems:

for every model family we take correctly-classified reference inputs and
place the perturbation radius ε of each instance inside the interesting
regime, which is bracketed by

* ``eps_root`` — the largest ε the approximated verifier certifies at the
  root (below this the problem is trivially verified, no BaB needed), and
* ``eps_attack`` — the smallest ε at which a PGD attack succeeds (well above
  this the problem is trivially falsified).

Instances are sampled on a grid spanning that bracket, so the suite contains
a mixture of certified, violated and budget-limited problems whose BaB trees
have the non-trivial size distribution reported in Fig. 3.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.datasets.synthetic import Dataset
from repro.nn.network import Network
from repro.nn.zoo import FAMILY_ORDER, build_trained_model, family
from repro.specs.properties import Specification
from repro.specs.robustness import local_robustness_spec
from repro.utils.rng import as_rng, derive_seed
from repro.utils.validation import require
from repro.verifiers.appver import ApproximateVerifier
from repro.verifiers.attack import AttackConfig, empirical_robustness_radius, pgd_attack


@dataclass(frozen=True)
class VerificationInstance:
    """One verification problem of the benchmark suite."""

    instance_id: str
    family: str
    spec: Specification
    epsilon: float
    label: int
    reference_index: int

    def __str__(self) -> str:
        return f"{self.instance_id} (eps={self.epsilon:.4f}, label={self.label})"


@dataclass
class BenchmarkSuite:
    """A set of verification instances over trained model-family networks."""

    instances: List[VerificationInstance]
    networks: Dict[str, Network]
    datasets: Dict[str, Dataset]
    seed: int = 0

    @property
    def families(self) -> Tuple[str, ...]:
        ordered = [name for name in FAMILY_ORDER if name in self.networks]
        extra = sorted(set(self.networks) - set(ordered))
        return tuple(ordered + extra)

    def by_family(self, name: str) -> List[VerificationInstance]:
        return [instance for instance in self.instances if instance.family == name]

    def network_for(self, instance: VerificationInstance) -> Network:
        return self.networks[instance.family]

    def counts(self) -> Dict[str, int]:
        return {name: len(self.by_family(name)) for name in self.families}

    def __len__(self) -> int:
        return len(self.instances)


@dataclass(frozen=True)
class SuiteConfig:
    """Parameters of the suite generator.

    The defaults produce a laptop-scale suite (tens of problems); the paper's
    552-problem scale can be approached by raising ``instances_per_family``.
    """

    families: Tuple[str, ...] = FAMILY_ORDER
    instances_per_family: int = 10
    seed: int = 0
    #: Number of ε values sampled per reference input.
    epsilons_per_reference: int = 2
    #: The sampled ε span, as multiples of the root-certified radius
    #: (lower end) and of the attack radius (upper end).
    lower_margin: float = 1.05
    upper_margin: float = 1.1
    #: Binary-search resolution for the bracketing radii.
    search_steps: int = 10
    attack_config: AttackConfig = field(default_factory=lambda: AttackConfig(steps=20,
                                                                             restarts=2))

    def __post_init__(self) -> None:
        require(self.instances_per_family >= 1, "instances_per_family must be positive")
        require(self.epsilons_per_reference >= 1, "epsilons_per_reference must be positive")
        require(self.search_steps >= 4, "search_steps must be at least 4")


def root_certified_radius(network: Network, reference: np.ndarray, label: int,
                          num_classes: int, upper: float = 0.5,
                          steps: int = 10) -> float:
    """Largest ε (up to ``upper``) certified by the root DeepPoly bound."""
    reference = np.asarray(reference, dtype=float).reshape(-1)
    spec_upper = local_robustness_spec(reference, upper, label, num_classes)
    if ApproximateVerifier(network, spec_upper).evaluate().verified:
        return float(upper)
    low, high = 0.0, float(upper)
    for _ in range(steps):
        mid = 0.5 * (low + high)
        spec = local_robustness_spec(reference, mid, label, num_classes)
        if ApproximateVerifier(network, spec).evaluate().verified:
            low = mid
        else:
            high = mid
    return low


def _instance_epsilons(eps_root: float, eps_attack: float, count: int,
                       config: SuiteConfig, rng: np.random.Generator) -> List[float]:
    """Sample candidate ε values across the interesting bracket of one reference.

    The bracket runs from just above the root-certified radius to just above
    the empirical attack radius.  Candidates are spread over the whole
    bracket (with small jitter); the caller filters out the ones that turn
    out to be trivial (root-verified or root-falsified), so several
    candidates per requested instance are produced.
    """
    lower = max(eps_root * config.lower_margin, 1e-4)
    upper = max(eps_attack * config.upper_margin, lower * 1.25)
    candidates = max(count * 3, 4)
    positions = np.linspace(0.1, 1.02, candidates) + rng.uniform(-0.03, 0.03, candidates)
    positions = np.clip(positions, 0.02, 1.05)
    # Interleave candidates from the two ends of the bracket so the accepted
    # instances mix near-boundary (likely violated) and low-ε (likely
    # certified) problems, mirroring the paper's mixed benchmark selection.
    order: List[int] = []
    left, right = 0, len(positions) - 1
    while left <= right:
        order.append(right)
        if left != right:
            order.append(left)
        left += 1
        right -= 1
    return [float(lower + positions[i] * (upper - lower)) for i in order]


def generate_suite(config: Optional[SuiteConfig] = None) -> BenchmarkSuite:
    """Generate a benchmark suite according to ``config``."""
    config = config or SuiteConfig()
    rng = as_rng(config.seed)
    networks: Dict[str, Network] = {}
    datasets: Dict[str, Dataset] = {}
    instances: List[VerificationInstance] = []

    for family_name in config.families:
        family(family_name)  # validates the name early
        network, dataset = build_trained_model(family_name, seed=config.seed)
        networks[family_name] = network
        datasets[family_name] = dataset
        family_rng = as_rng(derive_seed(config.seed, family_name))
        instances.extend(_family_instances(family_name, network, dataset,
                                           config, family_rng))
    return BenchmarkSuite(instances, networks, datasets, seed=config.seed)


def _family_instances(family_name: str, network: Network, dataset: Dataset,
                      config: SuiteConfig, rng: np.random.Generator
                      ) -> List[VerificationInstance]:
    predictions = network.predict(dataset.inputs)
    correct = np.nonzero(predictions == dataset.labels)[0]
    rng.shuffle(correct)
    instances: List[VerificationInstance] = []

    for reference_index in correct:
        if len(instances) >= config.instances_per_family:
            break
        image, label = dataset.sample(int(reference_index))
        reference = image.reshape(-1)
        eps_root = root_certified_radius(network, reference, label,
                                         dataset.num_classes, steps=config.search_steps)
        eps_attack = empirical_robustness_radius(network, reference, label,
                                                 dataset.num_classes,
                                                 upper=0.5,
                                                 tolerance=0.5 / 2 ** config.search_steps,
                                                 config=config.attack_config)
        remaining = config.instances_per_family - len(instances)
        count = min(config.epsilons_per_reference, remaining)
        accepted_for_reference = 0
        for epsilon in _instance_epsilons(eps_root, eps_attack, count, config, rng):
            instance_id = f"{family_name.lower()}_{reference_index:03d}_{len(instances):03d}"
            spec = local_robustness_spec(reference, epsilon, label, dataset.num_classes,
                                         name=instance_id)
            # The paper keeps "meaningful problems that are neither too easy
            # nor too hard": drop problems the root bound already settles,
            # either by certifying them or with an immediately valid
            # counterexample.
            outcome = ApproximateVerifier(network, spec).evaluate()
            if outcome.verified or outcome.falsified:
                continue
            instances.append(VerificationInstance(instance_id=instance_id,
                                                  family=family_name, spec=spec,
                                                  epsilon=float(epsilon), label=int(label),
                                                  reference_index=int(reference_index)))
            accepted_for_reference += 1
            if len(instances) >= config.instances_per_family:
                break
            if accepted_for_reference >= count:
                break
    return instances


def table1_rows(suite: BenchmarkSuite) -> List[Dict[str, object]]:
    """The rows of Table I: model, dataset, architecture, #neurons, #instances."""
    rows = []
    for family_name in suite.families:
        network = suite.networks[family_name]
        dataset = suite.datasets[family_name]
        rows.append({
            "model": family_name,
            "dataset": dataset.name,
            "architecture": family(family_name).architecture,
            "neurons": network.num_relu_neurons,
            "instances": len(suite.by_family(family_name)),
        })
    return rows
