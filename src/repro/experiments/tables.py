"""Text renderers for the paper's tables (Table I and Table II)."""

from __future__ import annotations

import csv
import io
from typing import Dict, List, Optional, Sequence

from repro.experiments.metrics import average_time, solved_count
from repro.experiments.runner import SuiteRunResult
from repro.experiments.suite import BenchmarkSuite, table1_rows


def render_table(headers: Sequence[str], rows: Sequence[Sequence[object]],
                 title: Optional[str] = None) -> str:
    """Render a simple fixed-width ASCII table."""
    columns = [list(map(str, column)) for column in zip(headers, *rows)] if rows else \
        [[str(h)] for h in headers]
    widths = [max(len(cell) for cell in column) for column in columns]
    lines = []
    if title:
        lines.append(title)
    header_line = " | ".join(str(h).ljust(w) for h, w in zip(headers, widths))
    lines.append(header_line)
    lines.append("-+-".join("-" * w for w in widths))
    for row in rows:
        lines.append(" | ".join(str(cell).ljust(w) for cell, w in zip(row, widths)))
    return "\n".join(lines)


def rows_to_csv(headers: Sequence[str], rows: Sequence[Sequence[object]]) -> str:
    """Serialise table rows as CSV text (used to save experiment outputs)."""
    buffer = io.StringIO()
    writer = csv.writer(buffer)
    writer.writerow(list(headers))
    for row in rows:
        writer.writerow(list(row))
    return buffer.getvalue()


# ---------------------------------------------------------------------------
# Table I — benchmark details
# ---------------------------------------------------------------------------

TABLE1_HEADERS = ("Model", "Dataset", "Architecture", "#Neurons", "#Instances")


def table1(suite: BenchmarkSuite) -> List[List[object]]:
    """Rows of Table I for the generated suite."""
    return [[row["model"], row["dataset"], row["architecture"], row["neurons"],
             row["instances"]] for row in table1_rows(suite)]


def render_table1(suite: BenchmarkSuite) -> str:
    return render_table(TABLE1_HEADERS, table1(suite),
                        title="Table I: Details of the benchmarks")


# ---------------------------------------------------------------------------
# Table II — RQ1 overall comparison
# ---------------------------------------------------------------------------

def table2(suite: BenchmarkSuite, results: Dict[str, SuiteRunResult],
           timeout_seconds: Optional[float] = None) -> List[List[object]]:
    """Rows of Table II: per model family, Solved and Time for each verifier.

    ``results`` maps display names to suite runs; columns follow the mapping
    order (the paper uses BaB-baseline, αβ-CROWN, ABONN).
    """
    rows: List[List[object]] = []
    for family in suite.families:
        row: List[object] = [family]
        for result in results.values():
            family_runs = result.by_family(family)
            row.append(solved_count(family_runs))
            row.append(round(average_time(family_runs, timeout_seconds), 3))
        rows.append(row)
    return rows


def table2_headers(results: Dict[str, SuiteRunResult]) -> List[str]:
    headers = ["Model"]
    for name in results:
        headers.extend([f"{name} Solved", f"{name} Time(s)"])
    return headers


def render_table2(suite: BenchmarkSuite, results: Dict[str, SuiteRunResult],
                  timeout_seconds: Optional[float] = None) -> str:
    return render_table(table2_headers(results), table2(suite, results, timeout_seconds),
                        title="Table II: RQ1 - overall comparison "
                              "(solved instances and average time)")
