"""Data builders and text renderers for the paper's figures (Fig. 3-6).

Each ``figN_*`` function returns plain data structures (dictionaries, lists
of dataclasses) that regenerate the series/points shown in the corresponding
figure; ``render_figN`` turns them into a text report printed by the
benchmark harness.  No plotting library is used — the benchmark outputs are
meant to be diffed against EXPERIMENTS.md.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.experiments.metrics import (
    BoxStatistics,
    SpeedupPoint,
    average_speedup,
    average_time,
    solved_count,
    speedups,
    times_by_group,
)
from repro.experiments.runner import (
    SuiteRunResult,
    VerifierFactory,
    ground_truth_statuses,
    run_suite,
)
from repro.experiments.suite import BenchmarkSuite, VerificationInstance
from repro.experiments.tables import render_table
from repro.utils.timing import Budget
from repro.verifiers.result import VerificationStatus

# ---------------------------------------------------------------------------
# Fig. 3 — distribution of BaB-baseline tree sizes
# ---------------------------------------------------------------------------

#: The paper's histogram bins over the number of nodes in the BaB tree.
TREE_SIZE_BINS: Tuple[Tuple[int, Optional[int]], ...] = (
    (0, 10), (11, 50), (51, 100), (101, 200), (201, 500), (501, 1000), (1001, None))


def bin_label(bin_range: Tuple[int, Optional[int]]) -> str:
    low, high = bin_range
    return f"{low}-{high}" if high is not None else f"{low}-"


def fig3_tree_size_histogram(baseline_result: SuiteRunResult
                             ) -> Dict[str, Dict[str, int]]:
    """Histogram of BaB tree sizes per model family (Fig. 3)."""
    histogram: Dict[str, Dict[str, int]] = {}
    for run in baseline_result.runs:
        family = run.instance.family
        counts = histogram.setdefault(family,
                                      {bin_label(b): 0 for b in TREE_SIZE_BINS})
        size = run.result.tree_size
        for bin_range in TREE_SIZE_BINS:
            low, high = bin_range
            if size >= low and (high is None or size <= high):
                counts[bin_label(bin_range)] += 1
                break
    return histogram


def render_fig3(histogram: Dict[str, Dict[str, int]]) -> str:
    headers = ["Model"] + [bin_label(b) for b in TREE_SIZE_BINS]
    rows = []
    for family, counts in histogram.items():
        rows.append([family] + [counts[bin_label(b)] for b in TREE_SIZE_BINS])
    return render_table(headers, rows,
                        title="Fig. 3: distribution of BaB-baseline tree sizes")


# ---------------------------------------------------------------------------
# Fig. 4 — per-instance speedup scatter (RQ1)
# ---------------------------------------------------------------------------

def fig4_speedup_scatter(abonn_result: SuiteRunResult, baseline_result: SuiteRunResult
                         ) -> Dict[str, List[SpeedupPoint]]:
    """Per-family scatter points ``(ABONN time, speedup over BaB-baseline)``."""
    points = speedups(abonn_result, baseline_result)
    by_family: Dict[str, List[SpeedupPoint]] = {}
    for point in points:
        by_family.setdefault(point.family, []).append(point)
    return by_family


def render_fig4(scatter: Dict[str, List[SpeedupPoint]]) -> str:
    headers = ["Model", "#points", "mean speedup", "median speedup", "max speedup",
               "share > 1x", "mean node speedup"]
    rows = []
    for family, points in scatter.items():
        values = np.asarray([p.speedup for p in points]) if points else np.asarray([1.0])
        rows.append([
            family,
            len(points),
            round(float(values.mean()), 2),
            round(float(np.median(values)), 2),
            round(float(values.max()), 2),
            round(float(np.mean(values > 1.0)), 2),
            round(average_speedup(points, use_nodes=True), 2),
        ])
    return render_table(headers, rows,
                        title="Fig. 4: ABONN speedup over BaB-baseline per instance "
                              "(scatter summary)")


def scatter_points_csv_rows(scatter: Dict[str, List[SpeedupPoint]]
                            ) -> List[List[object]]:
    """Raw scatter points (one row per instance), for external plotting."""
    rows: List[List[object]] = []
    for family, points in scatter.items():
        for point in points:
            rows.append([family, point.instance_id, round(point.time_seconds, 4),
                         round(point.speedup, 4), round(point.node_speedup, 4)])
    return rows


# ---------------------------------------------------------------------------
# Fig. 5 — hyperparameter grid (RQ2)
# ---------------------------------------------------------------------------

@dataclass
class HyperparameterCell:
    """Result of one (λ, c) configuration over the evaluation instances."""

    lam: float
    exploration: float
    average_speedup: float
    average_time: float
    solved: int


@dataclass
class HyperparameterGrid:
    """The three grids of Fig. 5 (speedup, time, solved) over λ × c."""

    lambdas: Tuple[float, ...]
    explorations: Tuple[float, ...]
    cells: List[HyperparameterCell]

    def cell(self, lam: float, exploration: float) -> HyperparameterCell:
        for cell in self.cells:
            if np.isclose(cell.lam, lam) and np.isclose(cell.exploration, exploration):
                return cell
        raise KeyError(f"no cell for lambda={lam}, c={exploration}")

    def matrix(self, attribute: str) -> np.ndarray:
        values = np.zeros((len(self.lambdas), len(self.explorations)))
        for row, lam in enumerate(self.lambdas):
            for column, c in enumerate(self.explorations):
                values[row, column] = getattr(self.cell(lam, c), attribute)
        return values

    def best_cell(self, attribute: str = "average_speedup",
                  maximise: bool = True) -> HyperparameterCell:
        key = (lambda cell: getattr(cell, attribute))
        return max(self.cells, key=key) if maximise else min(self.cells, key=key)


def fig5_hyperparameter_grid(suite: BenchmarkSuite, baseline_result: SuiteRunResult,
                             make_abonn: "callable", budget: Budget,
                             lambdas: Sequence[float] = (0.0, 0.5, 1.0),
                             explorations: Sequence[float] = (0.0, 0.2, 0.4, 0.6, 0.8, 1.0),
                             instances: Optional[Sequence[VerificationInstance]] = None,
                             timeout_seconds: Optional[float] = None
                             ) -> HyperparameterGrid:
    """Run ABONN for every (λ, c) pair and collect the Fig. 5 statistics.

    ``make_abonn(lam, c)`` must return a fresh verifier configured with those
    hyperparameters (kept as a callable so the figure builder does not depend
    on the core package).
    """
    cells: List[HyperparameterCell] = []
    for lam in lambdas:
        for exploration in explorations:
            result = run_suite(lambda lam=lam, c=exploration: make_abonn(lam, c),
                               suite, budget, instances=instances)
            points = speedups(result, baseline_result)
            cells.append(HyperparameterCell(
                lam=float(lam), exploration=float(exploration),
                average_speedup=average_speedup(points),
                average_time=average_time(result.runs, timeout_seconds),
                solved=solved_count(result.runs)))
    return HyperparameterGrid(tuple(float(l) for l in lambdas),
                              tuple(float(c) for c in explorations), cells)


def render_fig5(grid: HyperparameterGrid) -> str:
    sections = []
    titles = {"average_speedup": "Fig. 5a: average speedup (w.r.t. BaB-baseline)",
              "average_time": "Fig. 5b: average time (seconds)",
              "solved": "Fig. 5c: number of solved problems"}
    for attribute, title in titles.items():
        headers = ["lambda \\ c"] + [f"c={c:g}" for c in grid.explorations]
        rows = []
        matrix = grid.matrix(attribute)
        for row_index, lam in enumerate(grid.lambdas):
            rows.append([f"lambda={lam:g}"]
                        + [round(float(v), 3) for v in matrix[row_index]])
        sections.append(render_table(headers, rows, title=title))
    return "\n\n".join(sections)


# ---------------------------------------------------------------------------
# Fig. 6 — violated vs certified breakdown (RQ3)
# ---------------------------------------------------------------------------

@dataclass
class GroupBox:
    """One box of Fig. 6: a verifier's times on one instance group."""

    family: str
    verifier: str
    group: str  # "violated" or "certified"
    statistics: Optional[BoxStatistics]


def fig6_violated_certified(suite: BenchmarkSuite,
                            results: Dict[str, SuiteRunResult],
                            families: Optional[Sequence[str]] = None,
                            timeout_seconds: Optional[float] = None) -> List[GroupBox]:
    """Box statistics of verification time, split by ground-truth status."""
    families = list(families if families is not None else suite.families)
    truth = ground_truth_statuses(results.values())
    violated = [iid for iid, status in truth.items()
                if status == VerificationStatus.FALSIFIED]
    certified = [iid for iid, status in truth.items()
                 if status == VerificationStatus.VERIFIED]
    boxes: List[GroupBox] = []
    for family in families:
        family_ids = {instance.instance_id for instance in suite.by_family(family)}
        for verifier_name, result in results.items():
            for group_name, group_ids in (("violated", violated), ("certified", certified)):
                ids = [iid for iid in group_ids if iid in family_ids]
                times = times_by_group(result.by_family(family), ids, timeout_seconds)
                statistics = BoxStatistics.from_values(times) if times else None
                boxes.append(GroupBox(family=family, verifier=verifier_name,
                                      group=group_name, statistics=statistics))
    return boxes


def render_fig6(boxes: List[GroupBox]) -> str:
    headers = ["Model", "Verifier", "Group", "n", "min", "q1", "median", "q3", "max"]
    rows = []
    for box in boxes:
        if box.statistics is None:
            rows.append([box.family, box.verifier, box.group, 0, "-", "-", "-", "-", "-"])
            continue
        stats = box.statistics
        rows.append([box.family, box.verifier, box.group, stats.count,
                     round(stats.minimum, 3), round(stats.first_quartile, 3),
                     round(stats.median, 3), round(stats.third_quartile, 3),
                     round(stats.maximum, 3)])
    return render_table(headers, rows,
                        title="Fig. 6: verification time, violated vs certified instances")
