"""Evaluation metrics: solved counts, average times, speedups, box statistics."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.experiments.runner import InstanceRun, SuiteRunResult
from repro.utils.validation import require


def solved_count(runs: Sequence[InstanceRun]) -> int:
    """Number of conclusively solved instances (the paper's "Solved" column)."""
    return sum(1 for run in runs if run.solved)


def average_time(runs: Sequence[InstanceRun],
                 timeout_seconds: Optional[float] = None) -> float:
    """Average wall-clock time per instance (the paper's "Time" column).

    Unsolved instances are charged ``timeout_seconds`` when given (matching
    the paper's fixed per-problem budget), otherwise their measured time.
    """
    if not runs:
        return 0.0
    times = []
    for run in runs:
        if not run.solved and timeout_seconds is not None:
            times.append(float(timeout_seconds))
        else:
            times.append(run.time)
    return float(np.mean(times))


def average_nodes(runs: Sequence[InstanceRun]) -> float:
    """Average number of explored sub-problems per instance."""
    if not runs:
        return 0.0
    return float(np.mean([run.nodes for run in runs]))


@dataclass(frozen=True)
class SpeedupPoint:
    """One point of the Fig. 4 scatter: an instance's time and speedup."""

    instance_id: str
    family: str
    time_seconds: float
    speedup: float
    #: Node-count based speedup (machine independent), reported alongside.
    node_speedup: float


def speedups(treatment: SuiteRunResult, baseline: SuiteRunResult,
             use_nodes_for_unsolved: bool = True) -> List[SpeedupPoint]:
    """Per-instance speedup of ``treatment`` over ``baseline``.

    ``speedup = T_baseline / T_treatment`` (Fig. 4's y-axis).  Instances
    missing from either run are skipped.  Zero times are clamped to a small
    positive value so ratios stay finite.
    """
    points: List[SpeedupPoint] = []
    baseline_by_id = {run.instance.instance_id: run for run in baseline.runs}
    for run in treatment.runs:
        other = baseline_by_id.get(run.instance.instance_id)
        if other is None:
            continue
        time_ratio = _ratio(other.time, run.time)
        node_ratio = _ratio(other.nodes, run.nodes)
        points.append(SpeedupPoint(instance_id=run.instance.instance_id,
                                   family=run.instance.family,
                                   time_seconds=run.time,
                                   speedup=time_ratio,
                                   node_speedup=node_ratio))
    return points


def _ratio(numerator: float, denominator: float, minimum: float = 1e-9) -> float:
    return float(max(numerator, minimum) / max(denominator, minimum))


def average_speedup(points: Sequence[SpeedupPoint], use_nodes: bool = False) -> float:
    """Mean speedup over a set of scatter points (Fig. 5a's cell metric)."""
    if not points:
        return 0.0
    values = [p.node_speedup if use_nodes else p.speedup for p in points]
    return float(np.mean(values))


@dataclass(frozen=True)
class BoxStatistics:
    """Five-number summary used by the Fig. 6 box plots."""

    minimum: float
    first_quartile: float
    median: float
    third_quartile: float
    maximum: float
    count: int

    @classmethod
    def from_values(cls, values: Sequence[float]) -> "BoxStatistics":
        require(len(values) > 0, "cannot summarise an empty sample")
        data = np.asarray(values, dtype=float)
        return cls(minimum=float(data.min()),
                   first_quartile=float(np.percentile(data, 25)),
                   median=float(np.percentile(data, 50)),
                   third_quartile=float(np.percentile(data, 75)),
                   maximum=float(data.max()),
                   count=int(data.size))

    @property
    def interquartile_range(self) -> float:
        return self.third_quartile - self.first_quartile

    def as_dict(self) -> Dict[str, float]:
        return {"min": self.minimum, "q1": self.first_quartile, "median": self.median,
                "q3": self.third_quartile, "max": self.maximum, "count": self.count}


def times_by_group(runs: Sequence[InstanceRun], instance_ids: Sequence[str],
                   timeout_seconds: Optional[float] = None) -> List[float]:
    """Times of the runs whose instance is in ``instance_ids``."""
    wanted = set(instance_ids)
    times = []
    for run in runs:
        if run.instance.instance_id not in wanted:
            continue
        if not run.solved and timeout_seconds is not None:
            times.append(float(timeout_seconds))
        else:
            times.append(run.time)
    return times
