"""The naive BaB verifier the paper uses as ``BaB-baseline``.

It explores the sub-problem space breadth-first ("first come, first served",
§IV): whenever a sub-problem's bound raises a false alarm, both children are
created, bounded, and appended to a FIFO queue.  A depth-first variant is
also provided because it is a useful ablation point.

``frontier_size`` pops up to ``K`` queued sub-problems per round and bounds
all of their phase-split children through one batched AppVer call (realised
batch up to ``2K``), preserving the sequential per-child budget semantics;
``K=1`` (default) is exactly the sequential loop.

Completeness: when a sub-problem has no unstable neuron left but its bound
is still negative (an artefact of the linear relaxation not feeding the
split constraints back into the input region), the sub-problem is resolved
exactly with the leaf LP of :mod:`repro.verifiers.milp` — the same role the
paper's GUROBI back-end plays.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Optional

import numpy as np

from repro.bab.domain import BaBNode, BaBStatistics
from repro.bab.heuristics import BranchingContext, BranchingHeuristic, make_heuristic
from repro.bounds.alpha_crown import AlphaCrownConfig
from repro.bounds.splits import ReluSplit, SplitAssignment
from repro.nn.network import Network
from repro.specs.properties import Specification
from repro.utils.timing import Budget
from repro.utils.validation import require
from repro.verifiers.appver import ApproximateVerifier, affordable_phases
from repro.verifiers.milp import solve_leaf_lp
from repro.verifiers.result import (
    VerificationResult,
    VerificationStatus,
    Verifier,
    make_budget,
)


class BaBBaselineVerifier(Verifier):
    """Breadth-first (or depth-first) branch-and-bound verification."""

    name = "BaB-baseline"

    def __init__(self, heuristic: str = "deepsplit", bound_method: str = "deeppoly",
                 exploration: str = "bfs", lp_leaf_refinement: bool = True,
                 alpha_config: Optional[AlphaCrownConfig] = None,
                 frontier_size: int = 1) -> None:
        require(exploration in ("bfs", "dfs"),
                f"exploration must be 'bfs' or 'dfs', got {exploration!r}")
        require(frontier_size >= 1, "frontier_size must be positive")
        self.heuristic_name = heuristic
        self.bound_method = bound_method
        self.exploration = exploration
        self.lp_leaf_refinement = lp_leaf_refinement
        self.alpha_config = alpha_config
        self.frontier_size = frontier_size
        if exploration == "dfs":
            self.name = "BaB-dfs"

    def _make_heuristic(self) -> BranchingHeuristic:
        return make_heuristic(self.heuristic_name)

    def verify(self, network: Network, spec: Specification,
               budget: Optional[Budget] = None) -> VerificationResult:
        budget = make_budget(budget)
        appver = ApproximateVerifier(network, spec, self.bound_method,
                                     alpha_config=self.alpha_config)
        heuristic = self._make_heuristic()
        statistics = BaBStatistics()

        root_outcome = appver.evaluate()
        budget.charge_node()
        if root_outcome.verified or root_outcome.report.infeasible:
            return self._finish(VerificationStatus.VERIFIED, budget, appver, statistics,
                                bound=root_outcome.p_hat)
        if root_outcome.falsified:
            return self._finish(VerificationStatus.FALSIFIED, budget, appver, statistics,
                                counterexample=root_outcome.candidate,
                                bound=root_outcome.p_hat)

        root = BaBNode(SplitAssignment.empty(), depth=0, outcome=root_outcome)
        queue: Deque[BaBNode] = deque([root])
        has_unknown_leaf = False

        while queue:
            if budget.exhausted():
                return self._finish(VerificationStatus.TIMEOUT, budget, appver, statistics,
                                    bound=root_outcome.p_hat)
            # Gather up to ``frontier_size`` queued nodes to expand together;
            # fully phase-decided leaves are resolved exactly as they pop.
            batch = []  # (node, phases, child splits)
            planned = 0
            truncated = False
            while queue and len(batch) < self.frontier_size and not truncated:
                if budget.exhausted():
                    if batch:
                        break  # charge the gathered batch; TIMEOUT surfaces next round
                    return self._finish(VerificationStatus.TIMEOUT, budget, appver,
                                        statistics, bound=root_outcome.p_hat)
                node = queue.popleft() if self.exploration == "bfs" else queue.pop()
                statistics.nodes_expanded += 1
                statistics.record_depth(node.depth)

                context = BranchingContext(network=appver.lowered, spec=spec.output_spec,
                                           report=node.outcome.report, splits=node.splits,
                                           evaluate_split=self._make_probe(appver, budget))
                neuron = heuristic.select(context)
                if neuron is None:
                    budget.charge_node()  # the leaf LP costs about one bound computation
                    resolved, counterexample = self._resolve_leaf(appver, spec, node,
                                                                  statistics)
                    if counterexample is not None:
                        return self._finish(VerificationStatus.FALSIFIED, budget, appver,
                                            statistics, counterexample=counterexample)
                    if not resolved:
                        has_unknown_leaf = True
                    continue

                node.branch_neuron = neuron
                statistics.nodes_split += 1
                phases = affordable_phases(budget, planned)
                if not phases:
                    if not batch:
                        return self._finish(VerificationStatus.TIMEOUT, budget, appver,
                                            statistics, bound=root_outcome.p_hat)
                    # No budget left for this node's children: undo the pop.
                    # The node stays queued so the unresolved sub-problem
                    # keeps the loop alive and exhaustion surfaces as TIMEOUT
                    # — never as a spurious VERIFIED from an emptied queue.
                    statistics.nodes_expanded -= 1
                    statistics.nodes_split -= 1
                    if self.exploration == "bfs":
                        queue.appendleft(node)
                    else:
                        queue.append(node)
                    break
                truncated = len(phases) < 2
                batch.append((node, phases,
                              [node.child_splits(ReluSplit(neuron[0], neuron[1], phase))
                               for phase in phases]))
                planned += len(phases)
            if not batch:
                continue  # this round only resolved leaves

            # One batched AppVer call bounds the children of the whole frontier.
            flat_splits = [splits for _, _, child_splits in batch
                           for splits in child_splits]
            outcomes = appver.evaluate_batch(flat_splits)
            position = 0
            first_child = True
            for node, phases, child_splits in batch:
                for offset, splits in enumerate(child_splits):
                    if not first_child and budget.exhausted():
                        return self._finish(VerificationStatus.TIMEOUT, budget, appver,
                                            statistics, bound=root_outcome.p_hat)
                    outcome = outcomes[position + offset]
                    budget.charge_node()
                    first_child = False
                    child = BaBNode(splits, depth=node.depth + 1, outcome=outcome,
                                    parent=node)
                    node.children.append(child)
                    if outcome.falsified:
                        return self._finish(VerificationStatus.FALSIFIED, budget, appver,
                                            statistics, counterexample=outcome.candidate,
                                            bound=outcome.p_hat)
                    if outcome.verified or outcome.report.infeasible:
                        statistics.nodes_verified += 1
                        continue
                    queue.append(child)
                position += len(child_splits)
            if truncated:
                return self._finish(VerificationStatus.TIMEOUT, budget, appver,
                                    statistics, bound=root_outcome.p_hat)

        status = (VerificationStatus.UNKNOWN if has_unknown_leaf
                  else VerificationStatus.VERIFIED)
        return self._finish(status, budget, appver, statistics)

    # -- helpers --------------------------------------------------------------
    @staticmethod
    def _make_probe(appver: ApproximateVerifier, budget: Budget):
        def probe(splits: SplitAssignment) -> float:
            budget.charge_node()
            return appver.evaluate(splits).p_hat
        return probe

    def _resolve_leaf(self, appver: ApproximateVerifier, spec: Specification,
                      node: BaBNode, statistics: BaBStatistics):
        """Resolve a fully phase-decided leaf; returns (resolved, counterexample)."""
        if not self.lp_leaf_refinement:
            return False, None
        optimum = solve_leaf_lp(appver.lowered, spec.input_box, spec.output_spec,
                                node.splits, node.outcome.report)
        statistics.leaves_lp_resolved += 1
        if not optimum.feasible or optimum.value >= 0.0:
            statistics.nodes_verified += 1
            return True, None
        if optimum.minimizer is None:  # pragma: no cover - solver failure
            return False, None
        point = spec.input_box.clip(optimum.minimizer)
        if spec.is_counterexample(appver.network, point):
            return True, point
        return False, None

    def _finish(self, status: VerificationStatus, budget: Budget,
                appver: ApproximateVerifier, statistics: BaBStatistics,
                counterexample: Optional[np.ndarray] = None,
                bound: Optional[float] = None) -> VerificationResult:
        statistics.tree_size = appver.num_calls
        extras = statistics.as_dict()
        extras["frontier_size"] = self.frontier_size
        extras["bound_cache"] = appver.cache_stats()
        return VerificationResult(
            status=status,
            verifier=self.name,
            elapsed_seconds=budget.elapsed_seconds,
            nodes_explored=appver.num_calls,
            tree_size=appver.num_calls,
            counterexample=counterexample,
            bound=bound,
            extras=extras,
        )
