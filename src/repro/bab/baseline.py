"""The naive BaB verifier the paper uses as ``BaB-baseline``.

It explores the sub-problem space breadth-first ("first come, first served",
§IV): whenever a sub-problem's bound raises a false alarm, both children are
created, bounded, and appended to a FIFO queue.  A depth-first variant is
also provided because it is a useful ablation point.

The frontier loop itself runs on the shared
:class:`~repro.engine.driver.FrontierDriver`: this module contributes a thin
queue work source that pops up to ``frontier_size`` sub-problems per round
(FIFO or LIFO) and pushes starved sub-problems back so budget exhaustion
surfaces as TIMEOUT — never as a spurious VERIFIED from an emptied queue.
``frontier_size=1`` (the default) reproduces the sequential loop's
verdicts, counterexamples and charges (one deferred-leaf-LP caveat in the
terminal round when a leaf LP falsifies — see the engine's docstring).

Completeness: when a sub-problem has no unstable neuron left but its bound
is still negative (an artefact of the linear relaxation not feeding the
split constraints back into the input region), the sub-problem is resolved
exactly with the leaf LP of :mod:`repro.verifiers.milp` — the same role the
paper's GUROBI back-end plays.  All decided leaves of one round are solved
through one batched, cached :func:`~repro.verifiers.milp.solve_leaf_lp_batch`
call.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, List, Optional, Sequence

import numpy as np

from repro.bab.domain import BaBNode, BaBStatistics
from repro.bab.heuristics import BranchingContext, BranchingHeuristic, make_heuristic
from repro.bounds.alpha_crown import AlphaCrownConfig
from repro.bounds.cache import LpCache
from repro.bounds.splits import ReluSplit, SplitAssignment
from repro.engine.driver import DriverVerdict, FrontierDriver, \
    LinearWorkSource, Neuron
from repro.nn.network import Network
from repro.specs.properties import Specification
from repro.utils.timing import Budget
from repro.utils.validation import require
from repro.verifiers.appver import ApproximateVerifier, AppVerOutcome, CascadeConfig
from repro.verifiers.milp import (
    LEAF_FALSIFIED,
    LEAF_VERIFIED,
    classify_leaf_optimum,
    problem_fingerprint,
    solve_leaf_lp_batch,
)
from repro.verifiers.result import (
    CompletedRun,
    VerificationResult,
    VerificationStatus,
    Verifier,
    VerifierRun,
    make_budget,
)


class QueueFrontierSource(LinearWorkSource):
    """A FIFO/LIFO queue of BaB sub-problems as a work source.

    Pops record expansion statistics; budget starvation pushes the popped
    node back to the *front* of its exploration order (undoing the pop's
    statistics) so the unresolved sub-problem keeps the queue alive — the
    TIMEOUT-not-VERIFIED invariants live in
    :class:`~repro.engine.driver.LinearWorkSource`.
    """

    def __init__(self, root: BaBNode, exploration: str,
                 appver: ApproximateVerifier, heuristic: BranchingHeuristic,
                 spec: Specification, statistics: BaBStatistics, budget: Budget,
                 lp_cache: LpCache, lp_leaf_refinement: bool,
                 root_bound: float,
                 lp_fingerprint: Optional[str] = None) -> None:
        super().__init__(root_bound)
        self.queue: Deque[BaBNode] = deque([root])
        self.exploration = exploration
        self.appver = appver
        self.heuristic = heuristic
        self.spec = spec
        self.statistics = statistics
        self.budget = budget
        self.lp_cache = lp_cache
        self.lp_fingerprint = lp_fingerprint
        self.lp_leaf_refinement = lp_leaf_refinement

    # -- gathering -------------------------------------------------------------
    def has_work(self) -> bool:
        """Whether any unresolved sub-problem is still queued."""
        return bool(self.queue)

    def _pop(self) -> BaBNode:
        """Pop in exploration order, recording expansion statistics."""
        node = self.queue.popleft() if self.exploration == "bfs" else self.queue.pop()
        self.statistics.nodes_expanded += 1
        self.statistics.record_depth(node.depth)
        return node

    def _reinsert(self, node: BaBNode) -> None:
        """Undo a pop: restore the statistics and the exploration order."""
        self.statistics.nodes_expanded -= 1
        self.statistics.nodes_split -= 1
        if self.exploration == "bfs":
            self.queue.appendleft(node)
        else:
            self.queue.append(node)

    def select_neuron(self, node: BaBNode) -> Optional[Neuron]:
        """Pick the node's branching neuron and record split statistics."""
        context = BranchingContext(network=self.appver.lowered,
                                   spec=self.spec.output_spec,
                                   report=node.outcome.report, splits=node.splits,
                                   evaluate_split=self._probe)
        neuron = self.heuristic.select(context)
        if neuron is not None:
            node.branch_neuron = neuron
            self.statistics.nodes_split += 1
        return neuron

    def child_splits(self, node: BaBNode, neuron: Neuron,
                     phases: Sequence[int]) -> List[SplitAssignment]:
        """The children's split assignments for the chosen neuron."""
        return [node.child_splits(ReluSplit(neuron[0], neuron[1], phase))
                for phase in phases]

    def item_splits(self, node: BaBNode) -> SplitAssignment:
        """The node's assignment — the parent identity of its children."""
        return node.splits

    # -- batched exact leaf resolution -----------------------------------------
    def resolve_leaves(self, nodes: List[BaBNode]) -> Optional[DriverVerdict]:
        """Resolve decided leaves with one batched, cached leaf-LP call."""
        if not self.lp_leaf_refinement:
            self.has_unknown_leaf = True
            return None
        optima = solve_leaf_lp_batch(
            self.appver.lowered, self.spec.input_box, self.spec.output_spec,
            [(node.splits, node.outcome.report) for node in nodes],
            cache=self.lp_cache, fingerprint=self.lp_fingerprint,
            timings=self.appver.timings)
        for optimum in optima:
            self.statistics.leaves_lp_resolved += 1
            verdict, counterexample = classify_leaf_optimum(optimum, self.spec,
                                                            self.appver.network)
            if verdict == LEAF_VERIFIED:
                self.statistics.nodes_verified += 1
            elif verdict == LEAF_FALSIFIED:
                return DriverVerdict(VerificationStatus.FALSIFIED,
                                     counterexample=counterexample)
            else:
                self.has_unknown_leaf = True
        return None

    # -- attachment ------------------------------------------------------------
    def attach(self, node: BaBNode, phase: int, splits: SplitAssignment,
               outcome: AppVerOutcome) -> Optional[DriverVerdict]:
        """Attach one bounded child; queue it unless settled by its bound."""
        child = BaBNode(splits, depth=node.depth + 1, outcome=outcome, parent=node)
        node.children.append(child)
        if outcome.falsified:
            return DriverVerdict(VerificationStatus.FALSIFIED,
                                 counterexample=outcome.candidate,
                                 bound=outcome.p_hat)
        if outcome.verified or outcome.report.infeasible:
            self.statistics.nodes_verified += 1
            return None
        self.queue.append(child)
        return None

    # -- helpers ---------------------------------------------------------------
    def _probe(self, splits: SplitAssignment) -> float:
        self.budget.charge_node()
        return self.appver.evaluate(splits).p_hat


class _BaselineRun(VerifierRun):
    """A resumable BaB-baseline run: one driver round per :meth:`step`."""

    def __init__(self, verifier: "BaBBaselineVerifier", budget: Budget,
                 appver: ApproximateVerifier, statistics: BaBStatistics,
                 lp_cache: LpCache, source: QueueFrontierSource,
                 driver: FrontierDriver) -> None:
        self.verifier = verifier
        self.budget = budget
        self.appver = appver
        self.statistics = statistics
        self.lp_cache = lp_cache
        self.source = source
        self.driver = driver
        self._run = driver.start(source, budget)
        self._result: Optional[VerificationResult] = None

    def _finish(self, verdict: DriverVerdict) -> VerificationResult:
        return self.verifier._finish(
            verdict.status, self.budget, self.appver, self.statistics,
            self.lp_cache, counterexample=verdict.counterexample,
            bound=verdict.bound,
            attached_by_stage=dict(self.driver.attached_by_stage))

    def step(self) -> Optional[VerificationResult]:
        """Advance one frontier round; the final result once finished."""
        if self._result is not None:
            return self._result
        verdict = self._run.step()
        if verdict is None:
            return None
        self._result = self._finish(verdict)
        return self._result

    def interrupt(self) -> VerificationResult:
        """Finish early with the queue source's TIMEOUT (root bound kept)."""
        if self._result is None:
            self._result = self._finish(self.source.timeout())
        return self._result


class BaBBaselineVerifier(Verifier):
    """Breadth-first (or depth-first) branch-and-bound verification.

    ``lp_cache`` optionally shares a leaf-LP cache across runs on the same
    verification problem (see :class:`~repro.bounds.cache.LpCache`);
    ``bound_cache`` does the same for the split-aware bound cache (the
    verification service scopes both by the problem fingerprint).
    """

    name = "BaB-baseline"

    def __init__(self, heuristic: str = "deepsplit", bound_method: str = "deeppoly",
                 exploration: str = "bfs", lp_leaf_refinement: bool = True,
                 alpha_config: Optional[AlphaCrownConfig] = None,
                 frontier_size: int = 1,
                 lp_cache: Optional[LpCache] = None,
                 incremental: bool = True,
                 cascade: Optional[CascadeConfig] = None,
                 bound_cache=None) -> None:
        require(exploration in ("bfs", "dfs"),
                f"exploration must be 'bfs' or 'dfs', got {exploration!r}")
        require(frontier_size >= 1, "frontier_size must be positive")
        self.heuristic_name = heuristic
        self.bound_method = bound_method
        self.exploration = exploration
        self.lp_leaf_refinement = lp_leaf_refinement
        self.alpha_config = alpha_config
        self.frontier_size = frontier_size
        self.lp_cache = lp_cache
        self.incremental = incremental
        self.cascade = cascade
        self.bound_cache = bound_cache
        if exploration == "dfs":
            self.name = "BaB-dfs"

    def _make_heuristic(self) -> BranchingHeuristic:
        return make_heuristic(self.heuristic_name)

    def start_run(self, network: Network, spec: Specification,
                  budget: Optional[Budget] = None) -> VerifierRun:
        """Set up BaB and return a run preemptible at round boundaries."""
        budget = make_budget(budget)
        appver = ApproximateVerifier(network, spec, self.bound_method,
                                     alpha_config=self.alpha_config,
                                     incremental=self.incremental,
                                     cascade=self.cascade,
                                     bound_cache=self.bound_cache)
        heuristic = self._make_heuristic()
        statistics = BaBStatistics()
        lp_cache = self.lp_cache if self.lp_cache is not None else LpCache()

        root_outcome = appver.evaluate()
        budget.charge_node()
        if root_outcome.verified or root_outcome.report.infeasible:
            return CompletedRun(self._finish(
                VerificationStatus.VERIFIED, budget, appver, statistics,
                lp_cache, bound=root_outcome.p_hat))
        if root_outcome.falsified:
            return CompletedRun(self._finish(
                VerificationStatus.FALSIFIED, budget, appver, statistics,
                lp_cache, counterexample=root_outcome.candidate,
                bound=root_outcome.p_hat))

        root = BaBNode(SplitAssignment.empty(), depth=0, outcome=root_outcome)
        # Fingerprint-scoping only matters for an externally shared cache.
        lp_fingerprint = (problem_fingerprint(appver.lowered, spec.input_box,
                                              spec.output_spec)
                          if self.lp_cache is not None else None)
        source = QueueFrontierSource(root, self.exploration, appver, heuristic,
                                     spec, statistics, budget, lp_cache,
                                     self.lp_leaf_refinement, root_outcome.p_hat,
                                     lp_fingerprint=lp_fingerprint)
        driver = FrontierDriver(appver, self.frontier_size)
        return _BaselineRun(self, budget, appver, statistics, lp_cache,
                            source, driver)

    def verify(self, network: Network, spec: Specification,
               budget: Optional[Budget] = None) -> VerificationResult:
        """Run breadth/depth-first BaB on the shared frontier engine."""
        return self.start_run(network, spec, budget).run_to_completion()

    # -- helpers --------------------------------------------------------------
    def _finish(self, status: VerificationStatus, budget: Budget,
                appver: ApproximateVerifier, statistics: BaBStatistics,
                lp_cache: LpCache,
                counterexample: Optional[np.ndarray] = None,
                bound: Optional[float] = None,
                attached_by_stage: Optional[dict] = None) -> VerificationResult:
        statistics.tree_size = appver.num_calls
        extras = statistics.as_dict()
        extras["frontier_size"] = self.frontier_size
        extras["incremental"] = self.incremental
        extras["bound_cache"] = appver.cache_stats()
        extras["lp_cache"] = lp_cache.stats.as_dict()
        extras["cascade"] = appver.cascade_stats()
        extras["cascade"]["attached_by_stage"] = attached_by_stage or {}
        extras["timings"] = appver.timings.as_dict()
        return VerificationResult(
            status=status,
            verifier=self.name,
            elapsed_seconds=budget.elapsed_seconds,
            nodes_explored=appver.num_calls,
            tree_size=appver.num_calls,
            counterexample=counterexample,
            bound=bound,
            extras=extras,
        )
