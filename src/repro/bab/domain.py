"""BaB tree nodes (sub-problems) shared by the baseline BaB verifier.

Each node corresponds to a sub-problem Γ of the original verification
problem: the conjunction of the original input box with a sequence of ReLU
phase constraints.  The node stores the AppVer outcome obtained when it was
created, which is all that later exploration decisions need.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

import numpy as np

from repro.bounds.splits import ReluSplit, SplitAssignment
from repro.verifiers.appver import AppVerOutcome


@dataclass
class BaBNode:
    """One sub-problem in the BaB tree."""

    splits: SplitAssignment
    depth: int
    outcome: AppVerOutcome
    parent: Optional["BaBNode"] = None
    #: The ReLU neuron this node's children were split on (set at expansion).
    branch_neuron: Optional[Tuple[int, int]] = None
    children: List["BaBNode"] = field(default_factory=list)

    @property
    def p_hat(self) -> float:
        return self.outcome.p_hat

    @property
    def is_root(self) -> bool:
        return self.parent is None

    @property
    def verified(self) -> bool:
        return self.outcome.verified or self.outcome.report.infeasible

    @property
    def falsified(self) -> bool:
        return self.outcome.falsified

    def child_splits(self, split: ReluSplit) -> SplitAssignment:
        """The split assignment of the child produced by ``split``."""
        return self.splits.with_split(split)

    def path_from_root(self) -> List["BaBNode"]:
        """Nodes from the root down to (and including) this node."""
        path: List[BaBNode] = []
        node: Optional[BaBNode] = self
        while node is not None:
            path.append(node)
            node = node.parent
        return list(reversed(path))

    def __repr__(self) -> str:
        return (f"BaBNode(depth={self.depth}, p_hat={self.p_hat:.4f}, "
                f"splits={len(self.splits)})")


@dataclass
class BaBStatistics:
    """Aggregate statistics of one BaB run (used by figures and tests)."""

    nodes_expanded: int = 0
    nodes_verified: int = 0
    nodes_split: int = 0
    leaves_lp_resolved: int = 0
    max_depth: int = 0
    tree_size: int = 1

    def record_depth(self, depth: int) -> None:
        self.max_depth = max(self.max_depth, depth)

    def as_dict(self) -> dict:
        return {
            "nodes_expanded": self.nodes_expanded,
            "nodes_verified": self.nodes_verified,
            "nodes_split": self.nodes_split,
            "leaves_lp_resolved": self.leaves_lp_resolved,
            "max_depth": self.max_depth,
            "tree_size": self.tree_size,
        }
