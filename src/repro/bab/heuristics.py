"""ReLU branching heuristics (the heuristic ``H`` of Alg. 1).

Given a sub-problem whose AppVer bound raised a false alarm, the heuristic
selects the unstable ReLU neuron to split on.  The paper is orthogonal to
this choice (§III, §VI) and simply adopts a state-of-the-art heuristic
(DeepSplit) for both ABONN and the BaB baseline; this module provides that
heuristic along with the classical alternatives used in the ablation
benchmarks:

* ``widest``   — split the neuron with the widest pre-activation interval;
* ``babsr``    — BaB-SR (Bunel et al.): relaxation-gap × output-sensitivity;
* ``deepsplit``— DeepSplit-like indirect-effect score: BaB-SR's direct term
  plus the neuron's estimated effect on downstream unstable relaxations;
* ``fsb``      — filtered smart branching: shortlist by BaB-SR, then score
  each shortlisted neuron by the actual bound improvement of its two
  children (costs extra AppVer calls);
* ``random``   — uniform choice among unstable neurons.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.bounds.report import BoundReport
from repro.bounds.splits import ACTIVE, INACTIVE, ReluSplit, SplitAssignment
from repro.nn.network import LoweredNetwork
from repro.specs.properties import LinearOutputSpec
from repro.utils.rng import SeedLike, as_rng
from repro.utils.validation import require

Neuron = Tuple[int, int]


@dataclass
class BranchingContext:
    """Everything a heuristic may inspect when choosing a split neuron."""

    network: LoweredNetwork
    spec: LinearOutputSpec
    report: BoundReport
    splits: SplitAssignment
    #: Optional callback evaluating a hypothetical child sub-problem and
    #: returning its ``p̂`` (used by look-ahead heuristics such as FSB; the
    #: caller is responsible for charging any budget).
    evaluate_split: Optional[Callable[[SplitAssignment], float]] = None

    def unstable_neurons(self) -> List[Neuron]:
        return self.report.unstable_neurons(self.splits)


class BranchingHeuristic:
    """Base class: pick one unstable neuron to split (or ``None`` at a leaf)."""

    name = "heuristic"

    def select(self, context: BranchingContext) -> Optional[Neuron]:
        unstable = context.unstable_neurons()
        if not unstable:
            return None
        scores = self.scores(context, unstable)
        require(len(scores) == len(unstable), "heuristic returned wrong number of scores")
        return unstable[int(np.argmax(scores))]

    def scores(self, context: BranchingContext,
               unstable: Sequence[Neuron]) -> np.ndarray:
        raise NotImplementedError


# ---------------------------------------------------------------------------
# Shared sensitivity machinery
# ---------------------------------------------------------------------------

def _relaxation_slopes(report: BoundReport) -> List[np.ndarray]:
    """Per-layer upper-relaxation slopes implied by the report's bounds."""
    slopes = []
    for bounds in report.pre_activation_bounds:
        lower, upper = bounds.lower, bounds.upper
        slope = np.ones_like(lower)
        inactive = upper <= 0.0
        unstable = (lower < 0.0) & (upper > 0.0)
        slope[inactive] = 0.0
        denominator = np.where(unstable, upper - lower, 1.0)
        slope[unstable] = (upper / denominator)[unstable]
        slopes.append(slope)
    return slopes


def _relaxation_gap(report: BoundReport, layer: int) -> np.ndarray:
    """Per-neuron area/intercept of the triangle relaxation (0 when stable)."""
    bounds = report.pre_activation_bounds[layer]
    lower, upper = bounds.lower, bounds.upper
    unstable = (lower < 0.0) & (upper > 0.0)
    gap = np.zeros_like(lower)
    denominator = np.where(unstable, upper - lower, 1.0)
    gap[unstable] = (upper * (-lower) / denominator)[unstable]
    return gap


def output_sensitivities(network: LoweredNetwork, spec: LinearOutputSpec,
                         report: BoundReport) -> List[np.ndarray]:
    """Estimated |d margin / d h_layer| for every hidden layer.

    Propagates the specification coefficients backwards through the affine
    layers, passing ReLU layers with their upper-relaxation slope, and
    aggregates absolute values over the specification rows.
    """
    slopes = _relaxation_slopes(report)
    coefficients = spec.coefficients @ network.weights[-1]
    sensitivities: List[np.ndarray] = [np.abs(coefficients).max(axis=0)]
    for layer in range(network.num_relu_layers - 1, 0, -1):
        coefficients = (coefficients * slopes[layer]) @ network.weights[layer]
        sensitivities.append(np.abs(coefficients).max(axis=0))
    sensitivities.reverse()
    return sensitivities


def _pre_activation_sensitivity(network: LoweredNetwork, slopes: List[np.ndarray],
                                target_layer: int, source_layer: int) -> np.ndarray:
    """|d z_target / d h_source| matrix estimate for ``source_layer < target_layer``."""
    coefficients = network.weights[target_layer]
    for layer in range(target_layer - 1, source_layer, -1):
        coefficients = (np.abs(coefficients) * slopes[layer]) @ np.abs(network.weights[layer])
    return np.abs(coefficients)


# ---------------------------------------------------------------------------
# Concrete heuristics
# ---------------------------------------------------------------------------

class WidestHeuristic(BranchingHeuristic):
    """Split the unstable neuron with the widest pre-activation interval."""

    name = "widest"

    def scores(self, context: BranchingContext,
               unstable: Sequence[Neuron]) -> np.ndarray:
        scores = np.empty(len(unstable))
        for index, (layer, unit) in enumerate(unstable):
            bounds = context.report.pre_activation_bounds[layer]
            scores[index] = bounds.upper[unit] - bounds.lower[unit]
        return scores


class BaBSRHeuristic(BranchingHeuristic):
    """BaB-SR: relaxation gap weighted by estimated output sensitivity."""

    name = "babsr"

    def scores(self, context: BranchingContext,
               unstable: Sequence[Neuron]) -> np.ndarray:
        sensitivities = output_sensitivities(context.network, context.spec, context.report)
        scores = np.empty(len(unstable))
        for index, (layer, unit) in enumerate(unstable):
            gap = _relaxation_gap(context.report, layer)[unit]
            scores[index] = gap * sensitivities[layer][unit]
        return scores


class DeepSplitHeuristic(BranchingHeuristic):
    """DeepSplit-like indirect-effect analysis.

    The score of a neuron combines the *direct* effect of removing its
    relaxation gap on the output bound (the BaB-SR term) with an *indirect*
    effect: tightening this neuron also tightens the pre-activation bounds of
    downstream unstable neurons, weighted by their own output sensitivity.
    """

    name = "deepsplit"

    def __init__(self, indirect_weight: float = 0.5) -> None:
        require(indirect_weight >= 0.0, "indirect_weight must be non-negative")
        self.indirect_weight = indirect_weight

    def scores(self, context: BranchingContext,
               unstable: Sequence[Neuron]) -> np.ndarray:
        network = context.network
        report = context.report
        slopes = _relaxation_slopes(report)
        sensitivities = output_sensitivities(network, context.spec, report)
        gaps = [_relaxation_gap(report, layer)
                for layer in range(network.num_relu_layers)]

        # Downstream influence: for every later layer with unstable neurons,
        # how much does each earlier neuron feed into those relaxation gaps?
        scores = np.empty(len(unstable))
        for index, (layer, unit) in enumerate(unstable):
            direct = gaps[layer][unit] * sensitivities[layer][unit]
            indirect = 0.0
            for later in range(layer + 1, network.num_relu_layers):
                later_gap_weight = gaps[later] * sensitivities[later]
                if not np.any(later_gap_weight):
                    continue
                influence = _pre_activation_sensitivity(network, slopes, later, layer)
                indirect += float(later_gap_weight @ influence[:, unit])
            scores[index] = direct + self.indirect_weight * indirect
        return scores


class FSBHeuristic(BranchingHeuristic):
    """Filtered smart branching: BaB-SR shortlist + exact look-ahead scoring."""

    name = "fsb"

    def __init__(self, shortlist_size: int = 3) -> None:
        require(shortlist_size >= 1, "shortlist_size must be positive")
        self.shortlist_size = shortlist_size
        self._fallback = BaBSRHeuristic()

    def select(self, context: BranchingContext) -> Optional[Neuron]:
        unstable = context.unstable_neurons()
        if not unstable:
            return None
        babsr_scores = self._fallback.scores(context, unstable)
        order = np.argsort(babsr_scores)[::-1][:self.shortlist_size]
        shortlist = [unstable[int(i)] for i in order]
        if context.evaluate_split is None or len(shortlist) == 1:
            return shortlist[0]
        best_neuron = shortlist[0]
        best_score = -np.inf
        for layer, unit in shortlist:
            improvements = []
            for phase in (ACTIVE, INACTIVE):
                child = context.splits.with_split(ReluSplit(layer, unit, phase))
                improvements.append(context.evaluate_split(child))
            score = min(improvements)
            if score > best_score:
                best_score = score
                best_neuron = (layer, unit)
        return best_neuron

    def scores(self, context: BranchingContext,
               unstable: Sequence[Neuron]) -> np.ndarray:  # pragma: no cover
        return self._fallback.scores(context, unstable)


class RandomHeuristic(BranchingHeuristic):
    """Uniformly random choice among unstable neurons (ablation baseline)."""

    name = "random"

    def __init__(self, seed: SeedLike = 0) -> None:
        self._rng = as_rng(seed)

    def scores(self, context: BranchingContext,
               unstable: Sequence[Neuron]) -> np.ndarray:
        return self._rng.random(len(unstable))


_HEURISTICS: Dict[str, Callable[[], BranchingHeuristic]] = {
    "widest": WidestHeuristic,
    "babsr": BaBSRHeuristic,
    "deepsplit": DeepSplitHeuristic,
    "fsb": FSBHeuristic,
    "random": RandomHeuristic,
}


def make_heuristic(name: str) -> BranchingHeuristic:
    """Instantiate a branching heuristic by name."""
    require(name in _HEURISTICS,
            f"unknown branching heuristic {name!r}; available: {sorted(_HEURISTICS)}")
    return _HEURISTICS[name]()


def available_heuristics() -> Tuple[str, ...]:
    return tuple(sorted(_HEURISTICS))
