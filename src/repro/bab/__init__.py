"""Branch-and-bound substrate: tree nodes, branching heuristics, naive BaB."""

from repro.bab.baseline import BaBBaselineVerifier
from repro.bab.domain import BaBNode, BaBStatistics
from repro.bab.heuristics import (
    BaBSRHeuristic,
    BranchingContext,
    BranchingHeuristic,
    DeepSplitHeuristic,
    FSBHeuristic,
    RandomHeuristic,
    WidestHeuristic,
    available_heuristics,
    make_heuristic,
    output_sensitivities,
)

__all__ = [
    "BaBBaselineVerifier",
    "BaBNode",
    "BaBStatistics",
    "BaBSRHeuristic",
    "BranchingContext",
    "BranchingHeuristic",
    "DeepSplitHeuristic",
    "FSBHeuristic",
    "RandomHeuristic",
    "WidestHeuristic",
    "available_heuristics",
    "make_heuristic",
    "output_sensitivities",
]
