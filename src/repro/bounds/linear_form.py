"""Symbolic linear forms over the network input and their concretisation.

The DeepPoly/CROWN backward substitution expresses bounds on network
quantities as affine functions of the (flattened) input,

``f(x) = A @ x + c``.

Concretising such a form over an axis-aligned input box gives scalar bounds;
the minimising / maximising *corner* of the box is also the candidate
counterexample ``x̂`` that AppVer reports alongside a negative ``p̂``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from repro.specs.properties import InputBox
from repro.utils.validation import require


@dataclass(frozen=True)
class LinearForm:
    """A batch of affine functions of the input: ``A @ x + c`` (row per function)."""

    coefficients: np.ndarray
    constants: np.ndarray

    def __post_init__(self) -> None:
        coefficients = np.asarray(self.coefficients, dtype=float)
        constants = np.asarray(self.constants, dtype=float).reshape(-1)
        require(coefficients.ndim == 2, "coefficients must be a matrix")
        require(coefficients.shape[0] == constants.shape[0],
                "coefficients and constants must agree on the number of rows")
        object.__setattr__(self, "coefficients", coefficients)
        object.__setattr__(self, "constants", constants)

    @property
    def num_rows(self) -> int:
        return int(self.coefficients.shape[0])

    @property
    def input_dim(self) -> int:
        return int(self.coefficients.shape[1])

    def evaluate(self, x: np.ndarray) -> np.ndarray:
        """Evaluate every row at a single input ``x``."""
        x = np.asarray(x, dtype=float).reshape(-1)
        require(x.shape[0] == self.input_dim, "input has wrong dimension")
        return self.coefficients @ x + self.constants

    def lower_bound(self, box: InputBox) -> np.ndarray:
        """Per-row minimum over the box."""
        return concretize_lower(self.coefficients, self.constants, box)

    def upper_bound(self, box: InputBox) -> np.ndarray:
        """Per-row maximum over the box."""
        return concretize_upper(self.coefficients, self.constants, box)

    def minimizer(self, box: InputBox, row: int) -> np.ndarray:
        """The box corner minimising the given row."""
        require(0 <= row < self.num_rows, f"row {row} out of range")
        return minimizing_corner(self.coefficients[row], box)

    def maximizer(self, box: InputBox, row: int) -> np.ndarray:
        """The box corner maximising the given row."""
        require(0 <= row < self.num_rows, f"row {row} out of range")
        return minimizing_corner(-self.coefficients[row], box)


def concretize_lower(coefficients: np.ndarray, constants: np.ndarray,
                     box: InputBox) -> np.ndarray:
    """Minimum of ``A @ x + c`` over the box, per row."""
    coefficients = np.asarray(coefficients, dtype=float)
    constants = np.asarray(constants, dtype=float)
    positive = np.clip(coefficients, 0.0, None)
    negative = np.clip(coefficients, None, 0.0)
    return positive @ box.lower + negative @ box.upper + constants


def concretize_upper(coefficients: np.ndarray, constants: np.ndarray,
                     box: InputBox) -> np.ndarray:
    """Maximum of ``A @ x + c`` over the box, per row."""
    coefficients = np.asarray(coefficients, dtype=float)
    constants = np.asarray(constants, dtype=float)
    positive = np.clip(coefficients, 0.0, None)
    negative = np.clip(coefficients, None, 0.0)
    return positive @ box.upper + negative @ box.lower + constants


def minimizing_corner(coefficients: np.ndarray, box: InputBox) -> np.ndarray:
    """The box corner minimising ``coefficients @ x`` (lower where coeff > 0)."""
    coefficients = np.asarray(coefficients, dtype=float).reshape(-1)
    require(coefficients.shape[0] == box.dimension, "coefficient vector has wrong dimension")
    return np.where(coefficients > 0, box.lower, box.upper)


def concretize_lower_batch(coefficients: np.ndarray, constants: np.ndarray,
                           box: InputBox) -> np.ndarray:
    """Batched :func:`concretize_lower`: ``(B, R, D)`` coefficients, ``(B, R)`` constants."""
    coefficients = np.asarray(coefficients, dtype=float)
    constants = np.asarray(constants, dtype=float)
    require(coefficients.ndim == 3, "batched coefficients must be (batch, rows, dim)")
    batch, rows, dim = coefficients.shape
    flat = coefficients.reshape(batch * rows, dim)
    positive = np.clip(flat, 0.0, None)
    negative = np.clip(flat, None, 0.0)
    values = positive @ box.lower + negative @ box.upper
    return values.reshape(batch, rows) + constants


def concretize_upper_batch(coefficients: np.ndarray, constants: np.ndarray,
                           box: InputBox) -> np.ndarray:
    """Batched :func:`concretize_upper`: ``(B, R, D)`` coefficients, ``(B, R)`` constants."""
    coefficients = np.asarray(coefficients, dtype=float)
    constants = np.asarray(constants, dtype=float)
    require(coefficients.ndim == 3, "batched coefficients must be (batch, rows, dim)")
    batch, rows, dim = coefficients.shape
    flat = coefficients.reshape(batch * rows, dim)
    positive = np.clip(flat, 0.0, None)
    negative = np.clip(flat, None, 0.0)
    values = positive @ box.upper + negative @ box.lower
    return values.reshape(batch, rows) + constants


def minimizing_corner_batch(coefficients: np.ndarray, box: InputBox) -> np.ndarray:
    """Batched :func:`minimizing_corner`: one ``(B, D)`` corner per coefficient row."""
    coefficients = np.asarray(coefficients, dtype=float)
    require(coefficients.ndim == 2 and coefficients.shape[1] == box.dimension,
            "batched coefficient rows must be (batch, dim)")
    return np.where(coefficients > 0, box.lower, box.upper)


@dataclass(frozen=True)
class BatchedLinearForm:
    """A leading-batch-axis stack of linear forms: ``A[b] @ x + c[b]``.

    ``coefficients`` has shape ``(batch, rows, input_dim)`` and ``constants``
    shape ``(batch, rows)``; element ``b`` is the :class:`LinearForm` of the
    b-th sub-problem of a batched bound computation.
    """

    coefficients: np.ndarray
    constants: np.ndarray

    def __post_init__(self) -> None:
        coefficients = np.asarray(self.coefficients, dtype=float)
        constants = np.asarray(self.constants, dtype=float)
        require(coefficients.ndim == 3, "coefficients must be (batch, rows, dim)")
        require(constants.shape == coefficients.shape[:2],
                "constants must be (batch, rows)")
        object.__setattr__(self, "coefficients", coefficients)
        object.__setattr__(self, "constants", constants)

    @property
    def batch_size(self) -> int:
        return int(self.coefficients.shape[0])

    @property
    def num_rows(self) -> int:
        return int(self.coefficients.shape[1])

    @property
    def input_dim(self) -> int:
        return int(self.coefficients.shape[2])

    def select(self, index: int) -> LinearForm:
        """The unbatched linear form of one batch element."""
        require(0 <= index < self.batch_size, f"batch index {index} out of range")
        return LinearForm(self.coefficients[index], self.constants[index])

    def evaluate(self, x: np.ndarray) -> np.ndarray:
        """Evaluate every batch element's rows at one input: ``(batch, rows)``."""
        x = np.asarray(x, dtype=float).reshape(-1)
        require(x.shape[0] == self.input_dim, "input has wrong dimension")
        return self.coefficients @ x + self.constants

    def lower_bound(self, box: InputBox) -> np.ndarray:
        """Per-element per-row minimum over the box: ``(batch, rows)``."""
        return concretize_lower_batch(self.coefficients, self.constants, box)

    def upper_bound(self, box: InputBox) -> np.ndarray:
        """Per-element per-row maximum over the box: ``(batch, rows)``."""
        return concretize_upper_batch(self.coefficients, self.constants, box)

    def minimizers(self, box: InputBox, rows: np.ndarray) -> np.ndarray:
        """Per batch element, the corner minimising the selected row."""
        rows = np.asarray(rows, dtype=int).reshape(-1)
        require(rows.shape[0] == self.batch_size, "need one row index per batch element")
        selected = self.coefficients[np.arange(self.batch_size), rows]
        return minimizing_corner_batch(selected, box)


@dataclass(frozen=True)
class AffineForms:
    """Paired input-level lower/upper linear forms of one vector quantity.

    The backward substitution bounds an expression twice — once
    under-approximating (``lower_A @ x + lower_c`` is a sound lower bound)
    and once over-approximating.  This pair is what
    :class:`~repro.bounds.cache.SubstitutionEntry` memoises per layer: the
    *accumulated* forms of a finished backward pass, valid for every
    sub-problem sharing the pass's relaxations.  A phase-split child whose
    relaxations below the layer are unchanged inherits the parent's forms
    verbatim (the rank-1 split correction only clips the concretised
    bounds), which is what makes the incremental path exact.
    """

    lower_A: np.ndarray
    lower_c: np.ndarray
    upper_A: np.ndarray
    upper_c: np.ndarray

    @property
    def num_rows(self) -> int:
        return int(np.asarray(self.lower_A).shape[0])

    def concretize(self, box: InputBox) -> "ScalarBounds":
        """Scalar bounds of the forms over the box (pre-clip)."""
        return ScalarBounds(concretize_lower(self.lower_A, self.lower_c, box),
                            concretize_upper(self.upper_A, self.upper_c, box))

    def minimizer(self, box: InputBox, row: int) -> np.ndarray:
        """The box corner minimising one row of the lower form."""
        require(0 <= row < self.num_rows, f"row {row} out of range")
        return minimizing_corner(self.lower_A[row], box)


@dataclass(frozen=True)
class BatchedAffineForms:
    """A leading-batch-axis stack of :class:`AffineForms`.

    ``lower_A``/``upper_A`` have shape ``(batch, rows, input_dim)`` and the
    constants ``(batch, rows)``; :meth:`select` yields one batch element's
    forms as *views* (no copies — the batched substitution arrays are never
    mutated after construction, so sharing them is safe and keeps the
    per-layer memoisation allocation-free).
    """

    lower_A: np.ndarray
    lower_c: np.ndarray
    upper_A: np.ndarray
    upper_c: np.ndarray

    @property
    def batch_size(self) -> int:
        return int(np.asarray(self.lower_A).shape[0])

    def select(self, index: int) -> AffineForms:
        """The forms of one batch element (views into the stacked arrays)."""
        require(0 <= index < self.batch_size, f"batch index {index} out of range")
        return AffineForms(self.lower_A[index], self.lower_c[index],
                           self.upper_A[index], self.upper_c[index])

    def minimizers(self, box: InputBox, rows: np.ndarray) -> np.ndarray:
        """Per batch element, the corner minimising the selected lower row."""
        rows = np.asarray(rows, dtype=int).reshape(-1)
        require(rows.shape[0] == self.batch_size,
                "need one row index per batch element")
        selected = self.lower_A[np.arange(self.batch_size), rows]
        return minimizing_corner_batch(selected, box)


@dataclass(frozen=True)
class ScalarBounds:
    """Elementwise scalar lower/upper bounds on a vector-valued quantity."""

    lower: np.ndarray
    upper: np.ndarray

    def __post_init__(self) -> None:
        lower = np.asarray(self.lower, dtype=float).reshape(-1)
        upper = np.asarray(self.upper, dtype=float).reshape(-1)
        require(lower.shape == upper.shape, "lower and upper must have the same shape")
        object.__setattr__(self, "lower", lower)
        object.__setattr__(self, "upper", upper)

    @classmethod
    def wrap(cls, lower: np.ndarray, upper: np.ndarray) -> "ScalarBounds":
        """Trusted constructor for internal hot paths.

        Skips the coercion/validation of ``__post_init__``; callers must
        pass equal-shape 1-D float arrays (e.g. rows of a batched analysis).
        A bound analysis builds five-plus instances per sub-problem, so the
        constructor overhead is measurable on the per-child hot path.
        """
        bounds = object.__new__(cls)
        object.__setattr__(bounds, "lower", lower)
        object.__setattr__(bounds, "upper", upper)
        return bounds

    @property
    def size(self) -> int:
        return int(self.lower.shape[0])

    @property
    def width(self) -> np.ndarray:
        return self.upper - self.lower

    def is_consistent(self) -> bool:
        """True when every lower bound is at most its upper bound."""
        return bool(np.all(self.lower <= self.upper + 1e-12))

    def intersect(self, other: "ScalarBounds") -> "ScalarBounds":
        """Elementwise intersection (may produce inconsistent bounds)."""
        require(self.size == other.size, "bounds have different sizes")
        return ScalarBounds(np.maximum(self.lower, other.lower),
                            np.minimum(self.upper, other.upper))

    def contains(self, values: np.ndarray, tolerance: float = 1e-7) -> bool:
        """Whether a concrete vector lies within the bounds."""
        values = np.asarray(values, dtype=float).reshape(-1)
        require(values.shape[0] == self.size, "value vector has wrong size")
        return bool(np.all(values >= self.lower - tolerance)
                    and np.all(values <= self.upper + tolerance))
