"""DeepPoly / CROWN backward bound propagation with ReLU split constraints.

This is the library's main approximated verifier (the ``AppVer`` of the
paper).  For every hidden layer it derives sound lower/upper bounds on the
pre-activations by substituting linear ReLU relaxations backwards down to
the input box, then bounds the output specification the same way.  The
minimum specification-row lower bound is the paper's ``p̂``; the box corner
minimising that row's input-level linear form is the candidate
counterexample ``x̂``.

Split constraints (``r+`` / ``r-`` decisions of a BaB sub-problem) tighten
the analysis in two ways:

* the decided neuron's relaxation becomes exact (identity or zero);
* its pre-activation bounds are intersected with ``[0, ∞)`` / ``(-∞, 0]``.

If an intersection becomes empty the sub-problem region is empty and the
report is flagged ``infeasible`` (vacuously verified).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.bounds.linear_form import (
    LinearForm,
    ScalarBounds,
    concretize_lower,
    concretize_upper,
    minimizing_corner,
)
from repro.bounds.report import BoundReport
from repro.bounds.splits import ACTIVE, INACTIVE, SplitAssignment
from repro.nn.network import LoweredNetwork
from repro.specs.properties import InputBox, LinearOutputSpec
from repro.utils.validation import require


@dataclass
class _ReluRelaxation:
    """Per-neuron linear relaxation of one hidden ReLU layer.

    ``lower_slope * z <= ReLU(z) <= upper_slope * z + upper_intercept``
    holds for every ``z`` within the layer's (split-clipped) bounds.
    """

    lower_slope: np.ndarray
    upper_slope: np.ndarray
    upper_intercept: np.ndarray


def default_lower_slope(lower: np.ndarray, upper: np.ndarray) -> np.ndarray:
    """DeepPoly's area-minimising choice of the unstable lower slope."""
    return (upper > -lower).astype(float)


def _build_relaxation(bounds: ScalarBounds, layer: int, splits: SplitAssignment,
                      lower_slopes: Optional[np.ndarray]) -> _ReluRelaxation:
    size = bounds.size
    lower = bounds.lower
    upper = bounds.upper
    lower_slope = np.zeros(size)
    upper_slope = np.zeros(size)
    upper_intercept = np.zeros(size)

    decided = splits.layer_phases(layer, size)
    if lower_slopes is None:
        unstable_lower_slope = default_lower_slope(lower, upper)
    else:
        unstable_lower_slope = np.clip(np.asarray(lower_slopes, dtype=float), 0.0, 1.0)
        require(unstable_lower_slope.shape == (size,),
                f"lower_slopes for layer {layer} must have shape {(size,)}")

    for unit in range(size):
        phase = decided.get(unit, 0)
        l, u = lower[unit], upper[unit]
        if phase == ACTIVE or l >= 0.0:
            lower_slope[unit] = 1.0
            upper_slope[unit] = 1.0
        elif phase == INACTIVE or u <= 0.0:
            lower_slope[unit] = 0.0
            upper_slope[unit] = 0.0
        else:
            # Unstable neuron: triangle relaxation.
            slope = u / (u - l)
            upper_slope[unit] = slope
            upper_intercept[unit] = -slope * l
            lower_slope[unit] = unstable_lower_slope[unit]
    return _ReluRelaxation(lower_slope, upper_slope, upper_intercept)


class DeepPolyAnalyzer:
    """Backward-substitution bound analyser for a lowered network."""

    def __init__(self, network: LoweredNetwork) -> None:
        self.network = network

    # -- backward substitution ------------------------------------------------
    def _substitute_to_input(self, coefficients: np.ndarray, constants: np.ndarray,
                             last_hidden: int, relaxations: Sequence[_ReluRelaxation],
                             minimize: bool) -> Tuple[np.ndarray, np.ndarray]:
        """Rewrite ``A @ h_last_hidden + c`` as a linear form over the input.

        ``last_hidden = -1`` means the expression is already over the input.
        When ``minimize`` is True the rewriting under-approximates the
        expression (suitable for lower bounds); otherwise it over-approximates.
        """
        A = np.asarray(coefficients, dtype=float)
        c = np.asarray(constants, dtype=float).copy()
        for layer in range(last_hidden, -1, -1):
            relax = relaxations[layer]
            positive = np.clip(A, 0.0, None)
            negative = np.clip(A, None, 0.0)
            if minimize:
                # h >= lower_slope * z and h <= upper_slope * z + upper_intercept
                new_A = positive * relax.lower_slope + negative * relax.upper_slope
                c = c + negative @ relax.upper_intercept
            else:
                new_A = positive * relax.upper_slope + negative * relax.lower_slope
                c = c + positive @ relax.upper_intercept
            A = new_A
            # Substitute z = W h_{layer-1} + b.
            weight = self.network.weights[layer]
            bias = self.network.biases[layer]
            c = c + A @ bias
            A = A @ weight
        return A, c

    def _bound_expression(self, coefficients: np.ndarray, constants: np.ndarray,
                          last_hidden: int, relaxations: Sequence[_ReluRelaxation],
                          box: InputBox) -> Tuple[ScalarBounds, LinearForm]:
        """Scalar bounds of ``A @ h_last_hidden + c`` over the box.

        Also returns the input-level linear form used for the *lower* bound,
        whose minimising corner is the counterexample candidate.
        """
        lower_A, lower_c = self._substitute_to_input(coefficients, constants,
                                                     last_hidden, relaxations, minimize=True)
        upper_A, upper_c = self._substitute_to_input(coefficients, constants,
                                                     last_hidden, relaxations, minimize=False)
        lower = concretize_lower(lower_A, lower_c, box)
        upper = concretize_upper(upper_A, upper_c, box)
        return ScalarBounds(lower, upper), LinearForm(lower_A, lower_c)

    # -- public API -------------------------------------------------------------
    def analyze(self, box: InputBox, splits: Optional[SplitAssignment] = None,
                spec: Optional[LinearOutputSpec] = None,
                lower_slopes: Optional[Sequence[np.ndarray]] = None) -> BoundReport:
        """Run the full analysis over ``box`` under ``splits``.

        Parameters
        ----------
        lower_slopes:
            Optional per-hidden-layer arrays of unstable lower-relaxation
            slopes in ``[0, 1]`` (used by the α-CROWN optimiser); ``None``
            selects DeepPoly's default slope heuristic.
        """
        network = self.network
        require(box.dimension == network.input_dim,
                "input box dimension does not match the network")
        splits = splits or SplitAssignment.empty()
        if lower_slopes is not None:
            require(len(lower_slopes) == network.num_relu_layers,
                    "lower_slopes must provide one array per hidden layer")

        relaxations: List[_ReluRelaxation] = []
        pre_activation_bounds: List[ScalarBounds] = []
        infeasible = False

        for layer in range(network.num_relu_layers):
            weight = network.weights[layer]
            bias = network.biases[layer]
            bounds, _ = self._bound_expression(weight, bias, layer - 1, relaxations, box)
            bounds = self._clip_with_splits(bounds, layer, splits)
            if not bounds.is_consistent():
                infeasible = True
                bounds = ScalarBounds(np.minimum(bounds.lower, bounds.upper),
                                      np.maximum(bounds.lower, bounds.upper))
            pre_activation_bounds.append(bounds)
            layer_slopes = None if lower_slopes is None else lower_slopes[layer]
            relaxations.append(_build_relaxation(bounds, layer, splits, layer_slopes))

        last_hidden = network.num_relu_layers - 1
        output_bounds, _ = self._bound_expression(network.weights[-1], network.biases[-1],
                                                  last_hidden, relaxations, box)

        spec_row_lower = None
        p_hat = None
        candidate = None
        if spec is not None:
            require(spec.output_dim == network.output_dim,
                    "specification output dimension does not match the network")
            coefficients = spec.coefficients @ network.weights[-1]
            constants = spec.coefficients @ network.biases[-1] + spec.offsets
            spec_bounds, lower_form = self._bound_expression(coefficients, constants,
                                                             last_hidden, relaxations, box)
            spec_row_lower = spec_bounds.lower
            worst_row = int(np.argmin(spec_row_lower))
            candidate = lower_form.minimizer(box, worst_row)
            p_hat = float("inf") if infeasible else float(spec_row_lower[worst_row])

        return BoundReport(pre_activation_bounds=pre_activation_bounds,
                           output_bounds=output_bounds,
                           spec_row_lower=spec_row_lower,
                           p_hat=p_hat,
                           candidate_input=candidate,
                           infeasible=infeasible,
                           method="deeppoly")

    @staticmethod
    def _clip_with_splits(bounds: ScalarBounds, layer: int,
                          splits: SplitAssignment) -> ScalarBounds:
        lower = bounds.lower.copy()
        upper = bounds.upper.copy()
        for unit, phase in splits.layer_phases(layer, bounds.size).items():
            if phase == ACTIVE:
                lower[unit] = max(lower[unit], 0.0)
            elif phase == INACTIVE:
                upper[unit] = min(upper[unit], 0.0)
        return ScalarBounds(lower, upper)


def deeppoly_bounds(network: LoweredNetwork, box: InputBox,
                    splits: Optional[SplitAssignment] = None,
                    spec: Optional[LinearOutputSpec] = None,
                    lower_slopes: Optional[Sequence[np.ndarray]] = None) -> BoundReport:
    """Convenience wrapper around :class:`DeepPolyAnalyzer`."""
    return DeepPolyAnalyzer(network).analyze(box, splits=splits, spec=spec,
                                             lower_slopes=lower_slopes)
