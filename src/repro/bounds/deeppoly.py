"""DeepPoly / CROWN backward bound propagation with ReLU split constraints.

This is the library's main approximated verifier (the ``AppVer`` of the
paper).  For every hidden layer it derives sound lower/upper bounds on the
pre-activations by substituting linear ReLU relaxations backwards down to
the input box, then bounds the output specification the same way.  The
minimum specification-row lower bound is the paper's ``p̂``; the box corner
minimising that row's input-level linear form is the candidate
counterexample ``x̂``.

Split constraints (``r+`` / ``r-`` decisions of a BaB sub-problem) tighten
the analysis in two ways:

* the decided neuron's relaxation becomes exact (identity or zero);
* its pre-activation bounds are intersected with ``[0, ∞)`` / ``(-∞, 0]``.

If an intersection becomes empty the sub-problem region is empty and the
report is flagged ``infeasible`` (vacuously verified).

Two execution modes are provided:

* :meth:`DeepPolyAnalyzer.analyze` — one sub-problem at a time;
* :meth:`DeepPolyAnalyzer.analyze_batch` — ``B`` sub-problems in one pass,
  carrying a leading batch axis through the backward substitution (stacked
  relaxation slopes/intercepts, batched matmuls against the shared weights,
  vectorised concretisation over the shared input box).

Both modes accept a :class:`~repro.bounds.cache.BoundCache` that memoises
per-layer results keyed by the split-assignment *prefix* relevant to that
layer, so a child sub-problem only recomputes layers at-or-below its newly
decided neuron.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.bounds.cache import BoundCache, LayerEntry
from repro.bounds.linear_form import (
    BatchedLinearForm,
    LinearForm,
    ScalarBounds,
    concretize_lower,
    concretize_lower_batch,
    concretize_upper,
    concretize_upper_batch,
    minimizing_corner,
)
from repro.bounds.report import BoundReport
from repro.bounds.splits import (
    ACTIVE,
    INACTIVE,
    SplitAssignment,
    clip_bounds_with_phases,
    stacked_phase_array,
)
from repro.nn.network import LoweredNetwork
from repro.specs.properties import InputBox, LinearOutputSpec
from repro.utils.validation import require


@dataclass
class _ReluRelaxation:
    """Per-neuron linear relaxation of one hidden ReLU layer.

    ``lower_slope * z <= ReLU(z) <= upper_slope * z + upper_intercept``
    holds for every ``z`` within the layer's (split-clipped) bounds.
    """

    lower_slope: np.ndarray
    upper_slope: np.ndarray
    upper_intercept: np.ndarray


def default_lower_slope(lower: np.ndarray, upper: np.ndarray) -> np.ndarray:
    """DeepPoly's area-minimising choice of the unstable lower slope."""
    return (upper > -lower).astype(float)


def _relaxation_arrays(lower: np.ndarray, upper: np.ndarray, phases: np.ndarray,
                       unstable_lower_slope: Optional[np.ndarray]
                       ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Vectorised triangle relaxation; works on 1-D and batched 2-D arrays.

    A neuron is exact-identity when split ACTIVE or provably non-negative,
    exact-zero when split INACTIVE or provably non-positive, and otherwise
    gets the triangle upper relaxation with the supplied (or default) lower
    slope.
    """
    active = (phases == ACTIVE) | (lower >= 0.0)
    inactive = ~active & ((phases == INACTIVE) | (upper <= 0.0))
    unstable = ~active & ~inactive
    if unstable_lower_slope is None:
        unstable_lower_slope = default_lower_slope(lower, upper)
    denominator = np.where(unstable, upper - lower, 1.0)
    slope = np.where(unstable, upper / denominator, 0.0)
    lower_slope = np.where(active, 1.0,
                           np.where(unstable, unstable_lower_slope, 0.0))
    upper_slope = np.where(active, 1.0, slope)
    upper_intercept = np.where(unstable, -slope * lower, 0.0)
    return lower_slope, upper_slope, upper_intercept


def _build_relaxation(bounds: ScalarBounds, layer: int, splits: SplitAssignment,
                      lower_slopes: Optional[np.ndarray]) -> _ReluRelaxation:
    size = bounds.size
    if lower_slopes is None:
        unstable_lower_slope = None
    else:
        unstable_lower_slope = np.clip(np.asarray(lower_slopes, dtype=float), 0.0, 1.0)
        require(unstable_lower_slope.shape == (size,),
                f"lower_slopes for layer {layer} must have shape {(size,)}")
    phases = splits.layer_phase_array(layer, size)
    lower_slope, upper_slope, upper_intercept = _relaxation_arrays(
        bounds.lower, bounds.upper, phases, unstable_lower_slope)
    return _ReluRelaxation(lower_slope, upper_slope, upper_intercept)


def _copy_report(report: BoundReport) -> BoundReport:
    """A shallow copy safe to hand out from the cache (arrays are shared)."""
    return replace(report, pre_activation_bounds=list(report.pre_activation_bounds))


class DeepPolyAnalyzer:
    """Backward-substitution bound analyser for a lowered network."""

    def __init__(self, network: LoweredNetwork) -> None:
        self.network = network

    # -- backward substitution ------------------------------------------------
    def _substitute_to_input(self, coefficients: np.ndarray, constants: np.ndarray,
                             last_hidden: int, relaxations: Sequence[_ReluRelaxation],
                             minimize: bool) -> Tuple[np.ndarray, np.ndarray]:
        """Rewrite ``A @ h_last_hidden + c`` as a linear form over the input.

        ``last_hidden = -1`` means the expression is already over the input.
        When ``minimize`` is True the rewriting under-approximates the
        expression (suitable for lower bounds); otherwise it over-approximates.
        """
        A = np.asarray(coefficients, dtype=float)
        c = np.asarray(constants, dtype=float).copy()
        for layer in range(last_hidden, -1, -1):
            relax = relaxations[layer]
            positive = np.clip(A, 0.0, None)
            negative = np.clip(A, None, 0.0)
            if minimize:
                # h >= lower_slope * z and h <= upper_slope * z + upper_intercept
                new_A = positive * relax.lower_slope + negative * relax.upper_slope
                c = c + negative @ relax.upper_intercept
            else:
                new_A = positive * relax.upper_slope + negative * relax.lower_slope
                c = c + positive @ relax.upper_intercept
            A = new_A
            # Substitute z = W h_{layer-1} + b.
            weight = self.network.weights[layer]
            bias = self.network.biases[layer]
            c = c + A @ bias
            A = A @ weight
        return A, c

    def _bound_expression(self, coefficients: np.ndarray, constants: np.ndarray,
                          last_hidden: int, relaxations: Sequence[_ReluRelaxation],
                          box: InputBox) -> Tuple[ScalarBounds, LinearForm]:
        """Scalar bounds of ``A @ h_last_hidden + c`` over the box.

        Also returns the input-level linear form used for the *lower* bound,
        whose minimising corner is the counterexample candidate.
        """
        lower_A, lower_c = self._substitute_to_input(coefficients, constants,
                                                     last_hidden, relaxations, minimize=True)
        upper_A, upper_c = self._substitute_to_input(coefficients, constants,
                                                     last_hidden, relaxations, minimize=False)
        lower = concretize_lower(lower_A, lower_c, box)
        upper = concretize_upper(upper_A, upper_c, box)
        return ScalarBounds(lower, upper), LinearForm(lower_A, lower_c)

    # -- batched backward substitution ----------------------------------------
    def _substitute_to_input_batch(self, coefficients: np.ndarray, constants: np.ndarray,
                                   last_hidden: int,
                                   lower_slopes: Sequence[np.ndarray],
                                   upper_slopes: Sequence[np.ndarray],
                                   upper_intercepts: Sequence[np.ndarray],
                                   minimize: bool) -> Tuple[np.ndarray, np.ndarray]:
        """Batched :meth:`_substitute_to_input`.

        ``coefficients`` has shape ``(B, rows, width)`` and ``constants``
        ``(B, rows)``; the relaxation sequences hold one ``(B, width_layer)``
        array per hidden layer up to ``last_hidden``.
        """
        A = np.asarray(coefficients, dtype=float)
        c = np.asarray(constants, dtype=float)
        batch, rows = A.shape[0], A.shape[1]
        for layer in range(last_hidden, -1, -1):
            ls = lower_slopes[layer][:, None, :]
            us = upper_slopes[layer][:, None, :]
            ui = upper_intercepts[layer]
            positive = np.clip(A, 0.0, None)
            negative = np.clip(A, None, 0.0)
            if minimize:
                new_A = positive * ls + negative * us
                c = c + np.matmul(negative, ui[:, :, None])[..., 0]
            else:
                new_A = positive * us + negative * ls
                c = c + np.matmul(positive, ui[:, :, None])[..., 0]
            A = new_A
            weight = self.network.weights[layer]
            bias = self.network.biases[layer]
            # Flatten the batch axis so the whole batch runs through one GEMM
            # instead of a C-level loop of per-element matmuls.
            flat = A.reshape(batch * rows, A.shape[2])
            c = c + (flat @ bias).reshape(batch, rows)
            A = (flat @ weight).reshape(batch, rows, weight.shape[1])
        return A, c

    def _bound_expression_batch(self, coefficients: np.ndarray, constants: np.ndarray,
                                last_hidden: int,
                                lower_slopes: Sequence[np.ndarray],
                                upper_slopes: Sequence[np.ndarray],
                                upper_intercepts: Sequence[np.ndarray],
                                box: InputBox
                                ) -> Tuple[np.ndarray, np.ndarray, BatchedLinearForm]:
        """Batched :meth:`_bound_expression`; returns ``(B, rows)`` bound arrays."""
        lower_A, lower_c = self._substitute_to_input_batch(
            coefficients, constants, last_hidden,
            lower_slopes, upper_slopes, upper_intercepts, minimize=True)
        upper_A, upper_c = self._substitute_to_input_batch(
            coefficients, constants, last_hidden,
            lower_slopes, upper_slopes, upper_intercepts, minimize=False)
        lower = concretize_lower_batch(lower_A, lower_c, box)
        upper = concretize_upper_batch(upper_A, upper_c, box)
        return lower, upper, BatchedLinearForm(lower_A, lower_c)

    # -- public API -------------------------------------------------------------
    def analyze(self, box: InputBox, splits: Optional[SplitAssignment] = None,
                spec: Optional[LinearOutputSpec] = None,
                lower_slopes: Optional[Sequence[np.ndarray]] = None,
                cache: Optional[BoundCache] = None) -> BoundReport:
        """Run the full analysis over ``box`` under ``splits``.

        Parameters
        ----------
        lower_slopes:
            Optional per-hidden-layer arrays of unstable lower-relaxation
            slopes in ``[0, 1]`` (used by the α-CROWN optimiser); ``None``
            selects DeepPoly's default slope heuristic.
        cache:
            Optional split-aware bound cache.  Only consulted with the
            default slopes; the cache must be dedicated to this network,
            box and spec.
        """
        network = self.network
        require(box.dimension == network.input_dim,
                "input box dimension does not match the network")
        splits = splits or SplitAssignment.empty()
        if lower_slopes is not None:
            require(len(lower_slopes) == network.num_relu_layers,
                    "lower_slopes must provide one array per hidden layer")
        use_cache = cache is not None and lower_slopes is None
        if use_cache:
            cached = cache.get_report(splits.canonical_key(), spec is not None)
            if cached is not None:
                return _copy_report(cached)

        relaxations: List[_ReluRelaxation] = []
        pre_activation_bounds: List[ScalarBounds] = []
        infeasible = False

        for layer in range(network.num_relu_layers):
            entry = None
            key = None
            if use_cache:
                key = splits.prefix_key(layer)
                entry = cache.get_layer(layer, key)
            if entry is not None:
                bounds = ScalarBounds(entry.lower, entry.upper)
                relaxation = _ReluRelaxation(entry.lower_slope, entry.upper_slope,
                                             entry.upper_intercept)
                layer_infeasible = entry.infeasible
            else:
                weight = network.weights[layer]
                bias = network.biases[layer]
                bounds, _ = self._bound_expression(weight, bias, layer - 1,
                                                   relaxations, box)
                bounds = self._clip_with_splits(bounds, layer, splits)
                layer_infeasible = not bounds.is_consistent()
                if layer_infeasible:
                    bounds = ScalarBounds(np.minimum(bounds.lower, bounds.upper),
                                          np.maximum(bounds.lower, bounds.upper))
                layer_slopes = None if lower_slopes is None else lower_slopes[layer]
                relaxation = _build_relaxation(bounds, layer, splits, layer_slopes)
                if use_cache:
                    cache.put_layer(layer, key, LayerEntry(
                        bounds.lower.copy(), bounds.upper.copy(),
                        relaxation.lower_slope.copy(),
                        relaxation.upper_slope.copy(),
                        relaxation.upper_intercept.copy(), layer_infeasible))
            infeasible = infeasible or layer_infeasible
            pre_activation_bounds.append(bounds)
            relaxations.append(relaxation)

        last_hidden = network.num_relu_layers - 1
        output_bounds, _ = self._bound_expression(network.weights[-1], network.biases[-1],
                                                  last_hidden, relaxations, box)

        spec_row_lower = None
        p_hat = None
        candidate = None
        if spec is not None:
            require(spec.output_dim == network.output_dim,
                    "specification output dimension does not match the network")
            coefficients = spec.coefficients @ network.weights[-1]
            constants = spec.coefficients @ network.biases[-1] + spec.offsets
            spec_bounds, lower_form = self._bound_expression(coefficients, constants,
                                                             last_hidden, relaxations, box)
            spec_row_lower = spec_bounds.lower
            worst_row = int(np.argmin(spec_row_lower))
            candidate = lower_form.minimizer(box, worst_row)
            p_hat = float("inf") if infeasible else float(spec_row_lower[worst_row])

        report = BoundReport(pre_activation_bounds=pre_activation_bounds,
                             output_bounds=output_bounds,
                             spec_row_lower=spec_row_lower,
                             p_hat=p_hat,
                             candidate_input=candidate,
                             infeasible=infeasible,
                             method="deeppoly")
        if use_cache:
            cache.put_report(splits.canonical_key(), spec is not None,
                             _copy_report(report))
        return report

    def analyze_batch(self, box: InputBox,
                      splits_list: Sequence[Optional[SplitAssignment]],
                      spec: Optional[LinearOutputSpec] = None,
                      cache: Optional[BoundCache] = None,
                      lower_slopes: Optional[Sequence[np.ndarray]] = None
                      ) -> List[BoundReport]:
        """Analyse ``B`` sub-problems of the same box in one batched pass.

        Semantically equivalent to ``[self.analyze(box, s, spec) for s in
        splits_list]`` (up to floating-point reassociation well below 1e-9 on
        the networks used here), but the backward substitution of all
        sub-problems runs through shared, stacked matmuls.  With a ``cache``,
        sub-problems whose layer prefixes (or whole assignment) were seen
        before skip straight past the memoised layers.

        ``lower_slopes`` optionally supplies one ``(B, width_layer)`` array
        per hidden layer of unstable lower-relaxation slopes in ``[0, 1]``
        (row ``b`` applies to ``splits_list[b]``) — the batched counterpart
        of :meth:`analyze`'s ``lower_slopes``, used by the batched α-CROWN
        optimiser.  As in the sequential path, supplying slopes bypasses the
        cache entirely.
        """
        network = self.network
        require(box.dimension == network.input_dim,
                "input box dimension does not match the network")
        splits_list = [s or SplitAssignment.empty() for s in splits_list]
        batch_size = len(splits_list)
        if batch_size == 0:
            return []
        if lower_slopes is not None:
            require(len(lower_slopes) == network.num_relu_layers,
                    "lower_slopes must provide one array per hidden layer")
        use_cache = cache is not None and lower_slopes is None

        reports: List[Optional[BoundReport]] = [None] * batch_size
        if use_cache:
            for index, splits in enumerate(splits_list):
                cached = cache.get_report(splits.canonical_key(), spec is not None)
                if cached is not None:
                    reports[index] = _copy_report(cached)
        pending = [index for index in range(batch_size) if reports[index] is None]
        if not pending:
            return reports
        sub = [splits_list[index] for index in pending]
        count = len(sub)

        # Per layer, stacked (count, width) relaxation state of every pending
        # sub-problem (named ``relax_*`` to keep them distinct from the
        # ``lower_slopes`` override parameter).
        relax_lower_slopes: List[np.ndarray] = []
        relax_upper_slopes: List[np.ndarray] = []
        relax_upper_intercepts: List[np.ndarray] = []
        lower_layers: List[np.ndarray] = []
        upper_layers: List[np.ndarray] = []
        infeasible = np.zeros(count, dtype=bool)

        for layer in range(network.num_relu_layers):
            weight = network.weights[layer]
            bias = network.biases[layer]
            width = weight.shape[0]
            lower = np.empty((count, width))
            upper = np.empty((count, width))
            ls = np.empty((count, width))
            us = np.empty((count, width))
            ui = np.empty((count, width))
            layer_infeasible = np.zeros(count, dtype=bool)

            keys = None
            miss = list(range(count))
            if use_cache:
                keys = [splits.prefix_key(layer) for splits in sub]
                miss = []
                for row in range(count):
                    entry = cache.get_layer(layer, keys[row])
                    if entry is None:
                        miss.append(row)
                        continue
                    lower[row] = entry.lower
                    upper[row] = entry.upper
                    ls[row] = entry.lower_slope
                    us[row] = entry.upper_slope
                    ui[row] = entry.upper_intercept
                    layer_infeasible[row] = entry.infeasible

            if miss:
                idx = np.asarray(miss, dtype=int)
                coefficients = np.broadcast_to(weight, (len(miss),) + weight.shape)
                constants = np.broadcast_to(bias, (len(miss), bias.shape[0]))
                miss_lower, miss_upper, _ = self._bound_expression_batch(
                    coefficients, constants, layer - 1,
                    [a[idx] for a in relax_lower_slopes],
                    [a[idx] for a in relax_upper_slopes],
                    [a[idx] for a in relax_upper_intercepts], box)
                phases = stacked_phase_array([sub[row] for row in miss],
                                             layer, width)
                miss_lower, miss_upper, inconsistent = clip_bounds_with_phases(
                    miss_lower, miss_upper, phases)
                miss_slopes = None
                if lower_slopes is not None:
                    layer_slopes = np.clip(
                        np.asarray(lower_slopes[layer], dtype=float), 0.0, 1.0)
                    require(layer_slopes.shape == (batch_size, width),
                            f"lower_slopes for layer {layer} must have shape "
                            f"{(batch_size, width)}")
                    miss_slopes = layer_slopes[
                        np.asarray([pending[row] for row in miss], dtype=int)]
                miss_ls, miss_us, miss_ui = _relaxation_arrays(
                    miss_lower, miss_upper, phases, miss_slopes)
                lower[idx] = miss_lower
                upper[idx] = miss_upper
                ls[idx] = miss_ls
                us[idx] = miss_us
                ui[idx] = miss_ui
                layer_infeasible[idx] = inconsistent
                if use_cache:
                    for position, row in enumerate(miss):
                        cache.put_layer(layer, keys[row], LayerEntry(
                            miss_lower[position].copy(), miss_upper[position].copy(),
                            miss_ls[position].copy(), miss_us[position].copy(),
                            miss_ui[position].copy(), bool(inconsistent[position])))

            infeasible |= layer_infeasible
            lower_layers.append(lower)
            upper_layers.append(upper)
            relax_lower_slopes.append(ls)
            relax_upper_slopes.append(us)
            relax_upper_intercepts.append(ui)

        last_hidden = network.num_relu_layers - 1
        output_coefficients = np.broadcast_to(
            network.weights[-1], (count,) + network.weights[-1].shape)
        output_constants = np.broadcast_to(
            network.biases[-1], (count, network.biases[-1].shape[0]))
        output_lower, output_upper, _ = self._bound_expression_batch(
            output_coefficients, output_constants, last_hidden,
            relax_lower_slopes, relax_upper_slopes, relax_upper_intercepts, box)

        spec_lower = None
        candidates = None
        worst_rows = None
        if spec is not None:
            require(spec.output_dim == network.output_dim,
                    "specification output dimension does not match the network")
            coefficients = spec.coefficients @ network.weights[-1]
            constants = spec.coefficients @ network.biases[-1] + spec.offsets
            spec_lower, _, lower_form = self._bound_expression_batch(
                np.broadcast_to(coefficients, (count,) + coefficients.shape),
                np.broadcast_to(constants, (count,) + constants.shape),
                last_hidden, relax_lower_slopes, relax_upper_slopes,
                relax_upper_intercepts, box)
            worst_rows = np.argmin(spec_lower, axis=1)
            candidates = lower_form.minimizers(box, worst_rows)

        for position, index in enumerate(pending):
            pre_bounds = [ScalarBounds(lower_layers[layer][position],
                                       upper_layers[layer][position])
                          for layer in range(network.num_relu_layers)]
            spec_row_lower = None
            p_hat = None
            candidate = None
            if spec is not None:
                spec_row_lower = spec_lower[position]
                candidate = candidates[position]
                p_hat = (float("inf") if infeasible[position]
                         else float(spec_row_lower[worst_rows[position]]))
            report = BoundReport(pre_activation_bounds=pre_bounds,
                                 output_bounds=ScalarBounds(output_lower[position],
                                                            output_upper[position]),
                                 spec_row_lower=spec_row_lower,
                                 p_hat=p_hat,
                                 candidate_input=candidate,
                                 infeasible=bool(infeasible[position]),
                                 method="deeppoly")
            if use_cache:
                cache.put_report(sub[position].canonical_key(), spec is not None,
                                 _copy_report(report))
            reports[index] = report
        return reports

    @staticmethod
    def _clip_with_splits(bounds: ScalarBounds, layer: int,
                          splits: SplitAssignment) -> ScalarBounds:
        lower = bounds.lower.copy()
        upper = bounds.upper.copy()
        for unit, phase in splits.layer_phases(layer, bounds.size).items():
            if phase == ACTIVE:
                lower[unit] = max(lower[unit], 0.0)
            elif phase == INACTIVE:
                upper[unit] = min(upper[unit], 0.0)
        return ScalarBounds(lower, upper)


def deeppoly_bounds(network: LoweredNetwork, box: InputBox,
                    splits: Optional[SplitAssignment] = None,
                    spec: Optional[LinearOutputSpec] = None,
                    lower_slopes: Optional[Sequence[np.ndarray]] = None) -> BoundReport:
    """Convenience wrapper around :class:`DeepPolyAnalyzer`."""
    return DeepPolyAnalyzer(network).analyze(box, splits=splits, spec=spec,
                                             lower_slopes=lower_slopes)


def deeppoly_bounds_batch(network: LoweredNetwork, box: InputBox,
                          splits_list: Sequence[Optional[SplitAssignment]],
                          spec: Optional[LinearOutputSpec] = None,
                          cache: Optional[BoundCache] = None) -> List[BoundReport]:
    """Convenience wrapper around :meth:`DeepPolyAnalyzer.analyze_batch`."""
    return DeepPolyAnalyzer(network).analyze_batch(box, splits_list, spec=spec,
                                                   cache=cache)
