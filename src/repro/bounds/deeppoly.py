"""DeepPoly / CROWN backward bound propagation with ReLU split constraints.

This is the library's main approximated verifier (the ``AppVer`` of the
paper).  For every hidden layer it derives sound lower/upper bounds on the
pre-activations by substituting linear ReLU relaxations backwards down to
the input box, then bounds the output specification the same way.  The
minimum specification-row lower bound is the paper's ``p̂``; the box corner
minimising that row's input-level linear form is the candidate
counterexample ``x̂``.

Split constraints (``r+`` / ``r-`` decisions of a BaB sub-problem) tighten
the analysis in two ways:

* the decided neuron's relaxation becomes exact (identity or zero);
* its pre-activation bounds are intersected with ``[0, ∞)`` / ``(-∞, 0]``.

If an intersection becomes empty the sub-problem region is empty and the
report is flagged ``infeasible`` (vacuously verified).

Two execution modes are provided:

* :meth:`DeepPolyAnalyzer.analyze` — one sub-problem at a time;
* :meth:`DeepPolyAnalyzer.analyze_batch` — ``B`` sub-problems in one pass,
  carrying a leading batch axis through the backward substitution (stacked
  relaxation slopes/intercepts, batched matmuls against the shared weights,
  vectorised concretisation over the shared input box).

A third, *relaxed* mode (:meth:`DeepPolyAnalyzer.analyze_batch_relaxed`)
backs the precision cascade's prefilter stage: it freezes the parent's
cached relaxations at every layer (correcting only the decided neuron's
row) and runs a single fused top-level pass — sound but slightly looser
than the exact modes, at a fraction of their cost.

Both modes accept a :class:`~repro.bounds.cache.BoundCache` that memoises
per-layer results keyed by the split-assignment *prefix* relevant to that
layer, so a child sub-problem only recomputes layers at-or-below its newly
decided neuron.

**Incremental parent-pass reuse.**  When the caller additionally supplies
the *parent* assignment of a sub-problem (``parent=`` / ``parents=``) and
the child extends the parent by exactly one split at layer ``l*``, the
analysis reuses the parent's memoised pass further: the child's layer-``l*``
state is derived from the parent's :class:`~repro.bounds.cache.SubstitutionEntry`
by a **rank-1 correction** — clip the decided neuron's pre-activation
bounds with its phase and swap that single relaxation row to the exact
identity/zero form — instead of re-substituting the whole layer through
every layer below.  The correction reproduces the full recomputation
bit-for-bit (clipping is per-neuron independent and the relaxation rebuild
is element-wise on identical inputs), so in the sequential mode incremental
results are *numerically identical* to a from-scratch analysis; in the
batched mode they are identical up to the same sub-1e-9 GEMM-reassociation
noise that already separates ``analyze_batch`` from ``analyze``.  Layers
above ``l*`` genuinely change (the tightened relaxation propagates) and are
recomputed exactly as the non-incremental path would — which is what keeps
verdicts, node charges and counterexamples identical whether the
incremental path is on or off (see ``docs/BATCHING.md``).
"""

from __future__ import annotations

from contextlib import nullcontext
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.bounds.cache import BoundCache, SubstitutionEntry
from repro.bounds.linear_form import (
    AffineForms,
    BatchedAffineForms,
    ScalarBounds,
    concretize_lower,
    concretize_lower_batch,
    concretize_upper,
    concretize_upper_batch,
)
from repro.bounds.report import BoundReport
from repro.bounds.splits import (
    ACTIVE,
    INACTIVE,
    ReluSplit,
    SplitAssignment,
    clip_bounds_with_phases,
    insert_into_canonical,
    prefix_counts,
    split_delta,
    stacked_phase_array,
)
from repro.nn.network import LoweredNetwork
from repro.specs.properties import InputBox, LinearOutputSpec
from repro.utils.timing import PhaseTimings
from repro.utils.validation import require


def _measure(timings: Optional[PhaseTimings], phase: str):
    """A ``timings.measure(phase)`` context, or a no-op without timings."""
    return timings.measure(phase) if timings is not None else nullcontext()


@dataclass
class _ReluRelaxation:
    """Per-neuron linear relaxation of one hidden ReLU layer.

    ``lower_slope * z <= ReLU(z) <= upper_slope * z + upper_intercept``
    holds for every ``z`` within the layer's (split-clipped) bounds.
    """

    lower_slope: np.ndarray
    upper_slope: np.ndarray
    upper_intercept: np.ndarray


def default_lower_slope(lower: np.ndarray, upper: np.ndarray) -> np.ndarray:
    """DeepPoly's area-minimising choice of the unstable lower slope."""
    return (upper > -lower).astype(float)


def _relaxation_arrays(lower: np.ndarray, upper: np.ndarray, phases: np.ndarray,
                       unstable_lower_slope: Optional[np.ndarray]
                       ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Vectorised triangle relaxation; works on 1-D and batched 2-D arrays.

    A neuron is exact-identity when split ACTIVE or provably non-negative,
    exact-zero when split INACTIVE or provably non-positive, and otherwise
    gets the triangle upper relaxation with the supplied (or default) lower
    slope.
    """
    active = (phases == ACTIVE) | (lower >= 0.0)
    inactive = ~active & ((phases == INACTIVE) | (upper <= 0.0))
    unstable = ~active & ~inactive
    if unstable_lower_slope is None:
        unstable_lower_slope = default_lower_slope(lower, upper)
    denominator = np.where(unstable, upper - lower, 1.0)
    slope = np.where(unstable, upper / denominator, 0.0)
    lower_slope = np.where(active, 1.0,
                           np.where(unstable, unstable_lower_slope, 0.0))
    upper_slope = np.where(active, 1.0, slope)
    upper_intercept = np.where(unstable, -slope * lower, 0.0)
    return lower_slope, upper_slope, upper_intercept


def _build_relaxation(bounds: ScalarBounds, layer: int, splits: SplitAssignment,
                      lower_slopes: Optional[np.ndarray]) -> _ReluRelaxation:
    size = bounds.size
    if lower_slopes is None:
        unstable_lower_slope = None
    else:
        unstable_lower_slope = np.clip(np.asarray(lower_slopes, dtype=float), 0.0, 1.0)
        require(unstable_lower_slope.shape == (size,),
                f"lower_slopes for layer {layer} must have shape {(size,)}")
    phases = splits.layer_phase_array(layer, size)
    lower_slope, upper_slope, upper_intercept = _relaxation_arrays(
        bounds.lower, bounds.upper, phases, unstable_lower_slope)
    return _ReluRelaxation(lower_slope, upper_slope, upper_intercept)


def _copy_report(report: BoundReport) -> BoundReport:
    """A shallow copy safe to hand out from the cache (arrays are shared)."""
    return report.shallow_copy()


class DeepPolyAnalyzer:
    """Backward-substitution bound analyser for a lowered network."""

    def __init__(self, network: LoweredNetwork) -> None:
        self.network = network

    # -- backward substitution ------------------------------------------------
    def _substitute_to_input(self, coefficients: np.ndarray, constants: np.ndarray,
                             last_hidden: int, relaxations: Sequence[_ReluRelaxation],
                             minimize: bool) -> Tuple[np.ndarray, np.ndarray]:
        """Rewrite ``A @ h_last_hidden + c`` as a linear form over the input.

        ``last_hidden = -1`` means the expression is already over the input.
        When ``minimize`` is True the rewriting under-approximates the
        expression (suitable for lower bounds); otherwise it over-approximates.
        """
        A = np.asarray(coefficients, dtype=float)
        c = np.asarray(constants, dtype=float).copy()
        for layer in range(last_hidden, -1, -1):
            relax = relaxations[layer]
            positive = np.clip(A, 0.0, None)
            negative = np.clip(A, None, 0.0)
            if minimize:
                # h >= lower_slope * z and h <= upper_slope * z + upper_intercept
                new_A = positive * relax.lower_slope + negative * relax.upper_slope
                c = c + negative @ relax.upper_intercept
            else:
                new_A = positive * relax.upper_slope + negative * relax.lower_slope
                c = c + positive @ relax.upper_intercept
            A = new_A
            # Substitute z = W h_{layer-1} + b.
            weight = self.network.weights[layer]
            bias = self.network.biases[layer]
            c = c + A @ bias
            A = A @ weight
        return A, c

    def _bound_expression(self, coefficients: np.ndarray, constants: np.ndarray,
                          last_hidden: int, relaxations: Sequence[_ReluRelaxation],
                          box: InputBox, timings: Optional[PhaseTimings] = None
                          ) -> Tuple[ScalarBounds, AffineForms]:
        """Scalar bounds of ``A @ h_last_hidden + c`` over the box.

        Also returns the accumulated input-level linear forms of both
        directions; the lower form's minimising corner is the counterexample
        candidate, and the pair is what the substitution cache memoises.
        """
        with _measure(timings, "substitute"):
            lower_A, lower_c = self._substitute_to_input(
                coefficients, constants, last_hidden, relaxations, minimize=True)
            upper_A, upper_c = self._substitute_to_input(
                coefficients, constants, last_hidden, relaxations, minimize=False)
        with _measure(timings, "concretize"):
            lower = concretize_lower(lower_A, lower_c, box)
            upper = concretize_upper(upper_A, upper_c, box)
        return (ScalarBounds.wrap(lower, upper),
                AffineForms(lower_A, lower_c, upper_A, upper_c))

    # -- batched backward substitution ----------------------------------------
    def _substitute_to_input_batch(self, coefficients: np.ndarray, constants: np.ndarray,
                                   last_hidden: int,
                                   lower_slopes: Sequence[np.ndarray],
                                   upper_slopes: Sequence[np.ndarray],
                                   upper_intercepts: Sequence[np.ndarray],
                                   minimize: bool) -> Tuple[np.ndarray, np.ndarray]:
        """Batched :meth:`_substitute_to_input`.

        ``coefficients`` has shape ``(B, rows, width)`` and ``constants``
        ``(B, rows)``; the relaxation sequences hold one ``(B, width_layer)``
        array per hidden layer up to ``last_hidden``.
        """
        A = np.asarray(coefficients, dtype=float)
        c = np.asarray(constants, dtype=float)
        batch, rows = A.shape[0], A.shape[1]
        for layer in range(last_hidden, -1, -1):
            ls = lower_slopes[layer][:, None, :]
            us = upper_slopes[layer][:, None, :]
            ui = upper_intercepts[layer]
            positive = np.clip(A, 0.0, None)
            negative = np.clip(A, None, 0.0)
            if minimize:
                new_A = positive * ls + negative * us
                c = c + np.matmul(negative, ui[:, :, None])[..., 0]
            else:
                new_A = positive * us + negative * ls
                c = c + np.matmul(positive, ui[:, :, None])[..., 0]
            A = new_A
            weight = self.network.weights[layer]
            bias = self.network.biases[layer]
            # Flatten the batch axis so the whole batch runs through one GEMM
            # instead of a C-level loop of per-element matmuls.
            flat = A.reshape(batch * rows, A.shape[2])
            c = c + (flat @ bias).reshape(batch, rows)
            A = (flat @ weight).reshape(batch, rows, weight.shape[1])
        return A, c

    def _bound_expression_batch(self, coefficients: np.ndarray, constants: np.ndarray,
                                last_hidden: int,
                                lower_slopes: Sequence[np.ndarray],
                                upper_slopes: Sequence[np.ndarray],
                                upper_intercepts: Sequence[np.ndarray],
                                box: InputBox,
                                timings: Optional[PhaseTimings] = None
                                ) -> Tuple[np.ndarray, np.ndarray, BatchedAffineForms]:
        """Batched :meth:`_bound_expression`; returns ``(B, rows)`` bound arrays."""
        with _measure(timings, "substitute"):
            lower_A, lower_c = self._substitute_to_input_batch(
                coefficients, constants, last_hidden,
                lower_slopes, upper_slopes, upper_intercepts, minimize=True)
            upper_A, upper_c = self._substitute_to_input_batch(
                coefficients, constants, last_hidden,
                lower_slopes, upper_slopes, upper_intercepts, minimize=False)
        with _measure(timings, "concretize"):
            lower = concretize_lower_batch(lower_A, lower_c, box)
            upper = concretize_upper_batch(upper_A, upper_c, box)
        return lower, upper, BatchedAffineForms(lower_A, lower_c, upper_A, upper_c)

    # -- incremental rank-1 split correction -----------------------------------
    def _apply_split_correction(self, entry: SubstitutionEntry, delta: ReluSplit
                                ) -> Tuple[ScalarBounds, _ReluRelaxation, bool]:
        """Derive a child's layer state from the parent's entry.

        The child extends the parent by the single decision ``delta`` at
        this layer, so its pre-activation bounds are the parent's post-clip
        bounds additionally clipped at the decided neuron, and only that
        neuron's relaxation row changes (to the exact identity/zero form).
        Per-neuron clipping is independent and every untouched column's
        relaxation inputs equal the parent's, so inheriting the parent's
        arrays and rewriting the single column reproduces the full backward
        substitution bit-for-bit — at the cost of one scalar clip instead
        of a whole-layer substitution.
        """
        unit = delta.unit
        lower = entry.lower.copy()
        upper = entry.upper.copy()
        lower_slope = entry.lower_slope.copy()
        upper_slope = entry.upper_slope.copy()
        upper_intercept = entry.upper_intercept.copy()
        (lower[unit], upper[unit], layer_infeasible, lower_slope[unit],
         upper_slope[unit], upper_intercept[unit]) = self._correct_neuron(
            lower[unit], upper[unit], delta.phase)
        return (ScalarBounds.wrap(lower, upper),
                _ReluRelaxation(lower_slope, upper_slope, upper_intercept),
                layer_infeasible)

    @staticmethod
    def _scalar_relaxation(lower: float, upper: float,
                           phase: int) -> Tuple[float, float, float]:
        """The triangle relaxation of one neuron — the rank-1 payload.

        Scalar mirror of :func:`_relaxation_arrays` for a single element
        (identical operations in identical order, so the result is
        bit-identical to the vectorised rebuild).
        """
        active = (phase == ACTIVE) or (lower >= 0.0)
        inactive = (not active) and ((phase == INACTIVE) or (upper <= 0.0))
        if active:
            return 1.0, 1.0, 0.0
        if inactive:
            return 0.0, 0.0, 0.0
        unstable_lower_slope = 1.0 if upper > -lower else 0.0
        slope = upper / (upper - lower)
        return unstable_lower_slope, slope, (-slope) * lower

    @classmethod
    def _correct_neuron(cls, low, high, phase: int):
        """Clip one neuron by its decided phase and re-derive its relaxation.

        The single shared implementation behind both correction paths
        (sequential and batched), so the clip, the ``1e-12`` consistency
        slack, the swap and the relaxation rebuild can never drift apart.
        Only the clipped neuron can break consistency — the parent's row was
        consistent and the other entries are untouched.  Returns
        ``(low, high, infeasible, lower_slope, upper_slope, intercept)``.
        """
        if phase == ACTIVE:
            low = max(low, 0.0)
        else:
            high = min(high, 0.0)
        infeasible = not low <= high + 1e-12
        if infeasible:
            low, high = min(low, high), max(low, high)
        return (low, high, infeasible) + cls._scalar_relaxation(low, high, phase)

    def _apply_split_corrections_batch(self, corrected, layer: int,
                                       deltas, cache, keys,
                                       lower, upper, ls, us, ui,
                                       layer_infeasible) -> None:
        """Rank-1 split corrections for one layer's stacked rows.

        ``corrected`` pairs stacked-row indices with their parents'
        substitution entries.  Each child inherits the parent's bounds and
        relaxation rows wholesale and only the decided neuron's column is
        rewritten through :meth:`_correct_neuron`.  Every untouched column's
        relaxation inputs are identical to the parent's, so inheriting its
        stored values *is* the full elementwise rebuild, bit for bit.
        """
        for row, entry in corrected:
            delta = deltas[row]
            unit = delta.unit
            lower[row] = entry.lower
            upper[row] = entry.upper
            ls[row] = entry.lower_slope
            us[row] = entry.upper_slope
            ui[row] = entry.upper_intercept
            (lower[row, unit], upper[row, unit], row_infeasible,
             ls[row, unit], us[row, unit], ui[row, unit]) = \
                self._correct_neuron(lower[row, unit], upper[row, unit],
                                     delta.phase)
            layer_infeasible[row] = row_infeasible
            # The stacked rows are written exactly once per layer, so views
            # of them are safe to memoise.
            cache.put_layer(layer, keys[row], SubstitutionEntry(
                lower[row], upper[row], ls[row], us[row], ui[row],
                row_infeasible, entry.forms))
        cache.record_delta_corrections(len(corrected))

    @staticmethod
    def _usable_delta(parent: Optional[SplitAssignment], splits: SplitAssignment,
                      num_relu_layers: int) -> Optional[ReluSplit]:
        """The one-split extension of ``parent``, when usable for reuse."""
        delta = split_delta(parent, splits)
        if delta is not None and delta.layer < num_relu_layers:
            return delta
        return None

    # -- public API -------------------------------------------------------------
    def analyze(self, box: InputBox, splits: Optional[SplitAssignment] = None,
                spec: Optional[LinearOutputSpec] = None,
                lower_slopes: Optional[Sequence[np.ndarray]] = None,
                cache: Optional[BoundCache] = None,
                parent: Optional[SplitAssignment] = None,
                timings: Optional[PhaseTimings] = None) -> BoundReport:
        """Run the full analysis over ``box`` under ``splits``.

        Parameters
        ----------
        lower_slopes:
            Optional per-hidden-layer arrays of unstable lower-relaxation
            slopes in ``[0, 1]`` (used by the α-CROWN optimiser); ``None``
            selects DeepPoly's default slope heuristic.
        cache:
            Optional split-aware bound cache.  Only consulted with the
            default slopes; the cache must be dedicated to this network,
            box and spec.
        parent:
            Optional assignment of the sub-problem's BaB parent.  When
            ``splits`` extends it by exactly one neuron and the parent's
            substitution entry at that layer is cached, the split layer is
            derived by the rank-1 correction instead of re-substituted;
            results are identical either way.
        timings:
            Optional :class:`~repro.utils.timing.PhaseTimings` receiving the
            ``substitute`` / ``correct`` / ``concretize`` breakdown.
        """
        network = self.network
        require(box.dimension == network.input_dim,
                "input box dimension does not match the network")
        splits = splits or SplitAssignment.empty()
        if lower_slopes is not None:
            require(len(lower_slopes) == network.num_relu_layers,
                    "lower_slopes must provide one array per hidden layer")
        use_cache = cache is not None and lower_slopes is None
        if use_cache:
            cached = cache.get_report(splits.canonical_key(), spec is not None)
            if cached is not None:
                return _copy_report(cached)
        delta = (self._usable_delta(parent, splits, network.num_relu_layers)
                 if use_cache else None)

        relaxations: List[_ReluRelaxation] = []
        pre_activation_bounds: List[ScalarBounds] = []
        infeasible = False

        for layer in range(network.num_relu_layers):
            entry = None
            key = None
            if use_cache:
                key = splits.prefix_key(layer)
                entry = cache.get_layer(layer, key)
            if entry is not None:
                bounds = ScalarBounds.wrap(entry.lower, entry.upper)
                relaxation = _ReluRelaxation(entry.lower_slope, entry.upper_slope,
                                             entry.upper_intercept)
                layer_infeasible = entry.infeasible
            else:
                corrected = False
                if delta is not None and delta.layer == layer:
                    parent_entry = cache.peek_layer(layer, parent.prefix_key(layer))
                    if parent_entry is not None and not parent_entry.infeasible:
                        with _measure(timings, "correct"):
                            bounds, relaxation, layer_infeasible = \
                                self._apply_split_correction(parent_entry, delta)
                        cache.put_layer(layer, key, SubstitutionEntry(
                            bounds.lower, bounds.upper,
                            relaxation.lower_slope, relaxation.upper_slope,
                            relaxation.upper_intercept, layer_infeasible,
                            parent_entry.forms))
                        cache.record_delta_corrections()
                        corrected = True
                if not corrected:
                    weight = network.weights[layer]
                    bias = network.biases[layer]
                    bounds, forms = self._bound_expression(weight, bias, layer - 1,
                                                           relaxations, box,
                                                           timings=timings)
                    bounds = self._clip_with_splits(bounds, layer, splits)
                    layer_infeasible = not bounds.is_consistent()
                    if layer_infeasible:
                        bounds = ScalarBounds(np.minimum(bounds.lower, bounds.upper),
                                              np.maximum(bounds.lower, bounds.upper))
                    layer_slopes = None if lower_slopes is None else lower_slopes[layer]
                    relaxation = _build_relaxation(bounds, layer, splits, layer_slopes)
                    if use_cache:
                        cache.put_layer(layer, key, SubstitutionEntry(
                            bounds.lower.copy(), bounds.upper.copy(),
                            relaxation.lower_slope.copy(),
                            relaxation.upper_slope.copy(),
                            relaxation.upper_intercept.copy(), layer_infeasible,
                            forms))
            infeasible = infeasible or layer_infeasible
            pre_activation_bounds.append(bounds)
            relaxations.append(relaxation)

        last_hidden = network.num_relu_layers - 1
        output_bounds, _ = self._bound_expression(network.weights[-1], network.biases[-1],
                                                  last_hidden, relaxations, box,
                                                  timings=timings)

        spec_row_lower = None
        p_hat = None
        candidate = None
        if spec is not None:
            require(spec.output_dim == network.output_dim,
                    "specification output dimension does not match the network")
            coefficients = spec.coefficients @ network.weights[-1]
            constants = spec.coefficients @ network.biases[-1] + spec.offsets
            spec_bounds, spec_forms = self._bound_expression(coefficients, constants,
                                                             last_hidden, relaxations,
                                                             box, timings=timings)
            spec_row_lower = spec_bounds.lower
            worst_row = int(np.argmin(spec_row_lower))
            candidate = spec_forms.minimizer(box, worst_row)
            p_hat = float("inf") if infeasible else float(spec_row_lower[worst_row])

        report = BoundReport(pre_activation_bounds=pre_activation_bounds,
                             output_bounds=output_bounds,
                             spec_row_lower=spec_row_lower,
                             p_hat=p_hat,
                             candidate_input=candidate,
                             infeasible=infeasible,
                             method="deeppoly")
        if use_cache:
            cache.put_report(splits.canonical_key(), spec is not None,
                             _copy_report(report))
        return report

    def analyze_batch(self, box: InputBox,
                      splits_list: Sequence[Optional[SplitAssignment]],
                      spec: Optional[LinearOutputSpec] = None,
                      cache: Optional[BoundCache] = None,
                      lower_slopes: Optional[Sequence[np.ndarray]] = None,
                      parents: Optional[Sequence[Optional[SplitAssignment]]] = None,
                      timings: Optional[PhaseTimings] = None
                      ) -> List[BoundReport]:
        """Analyse ``B`` sub-problems of the same box in one batched pass.

        Semantically equivalent to ``[self.analyze(box, s, spec) for s in
        splits_list]`` (up to floating-point reassociation well below 1e-9 on
        the networks used here), but the backward substitution of all
        sub-problems runs through shared, stacked matmuls.  With a ``cache``,
        sub-problems whose layer prefixes (or whole assignment) were seen
        before skip straight past the memoised layers.

        ``lower_slopes`` optionally supplies one ``(B, width_layer)`` array
        per hidden layer of unstable lower-relaxation slopes in ``[0, 1]``
        (row ``b`` applies to ``splits_list[b]``) — the batched counterpart
        of :meth:`analyze`'s ``lower_slopes``, used by the batched α-CROWN
        optimiser.  As in the sequential path, supplying slopes bypasses the
        cache entirely.

        ``parents`` optionally supplies the BaB parent of each sub-problem
        (index-aligned with ``splits_list``, ``None`` entries allowed); a
        sub-problem extending its parent by one split resolves its split
        layer through the rank-1 correction against the parent's cached
        substitution entry instead of a fresh backward substitution.
        """
        network = self.network
        require(box.dimension == network.input_dim,
                "input box dimension does not match the network")
        splits_list = [s or SplitAssignment.empty() for s in splits_list]
        batch_size = len(splits_list)
        if batch_size == 0:
            return []
        if lower_slopes is not None:
            require(len(lower_slopes) == network.num_relu_layers,
                    "lower_slopes must provide one array per hidden layer")
        if parents is not None:
            require(len(parents) == batch_size,
                    "parents must be index-aligned with splits_list")
        use_cache = cache is not None and lower_slopes is None
        incremental = use_cache and parents is not None
        num_layers = network.num_relu_layers

        # Canonical keys: in incremental mode a one-split child's key is
        # derived from its parent's by a sorted insertion (the parent's key
        # is sorted once per round, not once per child per layer).
        canonical_keys: List[Tuple] = [None] * batch_size
        all_deltas: List[Optional[ReluSplit]] = [None] * batch_size
        if use_cache:
            if incremental:
                parent_canonicals = {}
                for index, splits in enumerate(splits_list):
                    delta = self._usable_delta(parents[index], splits, num_layers)
                    if delta is None:
                        canonical_keys[index] = splits.canonical_key()
                        continue
                    parent = parents[index]
                    parent_canonical = parent_canonicals.get(id(parent))
                    if parent_canonical is None:
                        parent_canonical = parent.canonical_key()
                        parent_canonicals[id(parent)] = parent_canonical
                    canonical_keys[index] = insert_into_canonical(parent_canonical,
                                                                  delta)
                    all_deltas[index] = delta
            else:
                for index, splits in enumerate(splits_list):
                    canonical_keys[index] = splits.canonical_key()

        reports: List[Optional[BoundReport]] = [None] * batch_size
        if use_cache:
            for index in range(batch_size):
                cached = cache.get_report(canonical_keys[index], spec is not None)
                if cached is not None:
                    reports[index] = _copy_report(cached)
        pending = [index for index in range(batch_size) if reports[index] is None]
        if not pending:
            return reports
        sub = [splits_list[index] for index in pending]
        count = len(sub)

        # Per pending sub-problem: the parent assignment and single-split
        # delta when the incremental rank-1 correction applies, plus the
        # per-layer prefix-slice boundaries of the derived canonical key.
        deltas: List[Optional[ReluSplit]] = [None] * count
        parent_of: List[Optional[SplitAssignment]] = [None] * count
        sub_canonicals: List[Tuple] = [None] * count
        sub_counts: List[Tuple[int, ...]] = [None] * count
        parent_phase_memo = {}
        if use_cache:
            for position, index in enumerate(pending):
                sub_canonicals[position] = canonical_keys[index]
                if incremental:
                    sub_counts[position] = prefix_counts(canonical_keys[index],
                                                         num_layers)
                    deltas[position] = all_deltas[index]
                    if all_deltas[index] is not None:
                        parent_of[position] = parents[index]

        def _parent_phases(position: int, layer: int, width: int) -> np.ndarray:
            """The parent's decided-phase row for one layer, memoised per
            round.  Valid for the child too at every layer except the
            split layer (the delta adds the only new decision)."""
            parent = parent_of[position]
            memo_key = (id(parent), layer)
            phases = parent_phase_memo.get(memo_key)
            if phases is None:
                phases = parent.layer_phase_array(layer, width)
                parent_phase_memo[memo_key] = phases
            return phases

        parent_key_memo = {}

        def _parent_prefix(position: int, layer: int) -> Tuple:
            """The parent's prefix key at one layer, memoised per round
            (both phase-split siblings probe the same parent entry)."""
            parent = parent_of[position]
            memo_key = (id(parent), layer)
            key = parent_key_memo.get(memo_key)
            if key is None:
                key = parent.prefix_key(layer)
                parent_key_memo[memo_key] = key
            return key

        # Per layer, stacked (count, width) relaxation state of every pending
        # sub-problem (named ``relax_*`` to keep them distinct from the
        # ``lower_slopes`` override parameter).
        relax_lower_slopes: List[np.ndarray] = []
        relax_upper_slopes: List[np.ndarray] = []
        relax_upper_intercepts: List[np.ndarray] = []
        lower_layers: List[np.ndarray] = []
        upper_layers: List[np.ndarray] = []
        infeasible = np.zeros(count, dtype=bool)

        for layer in range(network.num_relu_layers):
            weight = network.weights[layer]
            bias = network.biases[layer]
            width = weight.shape[0]
            lower = np.empty((count, width))
            upper = np.empty((count, width))
            ls = np.empty((count, width))
            us = np.empty((count, width))
            ui = np.empty((count, width))
            layer_infeasible = np.zeros(count, dtype=bool)

            keys = None
            miss = list(range(count))
            if use_cache:
                if incremental:
                    keys = [sub_canonicals[row][:sub_counts[row][layer]]
                            for row in range(count)]
                else:
                    keys = [splits.prefix_key(layer) for splits in sub]
                miss = []
                corrected: List[Tuple[int, SubstitutionEntry]] = []
                for row in range(count):
                    entry = cache.get_layer(layer, keys[row])
                    if entry is not None:
                        lower[row] = entry.lower
                        upper[row] = entry.upper
                        ls[row] = entry.lower_slope
                        us[row] = entry.upper_slope
                        ui[row] = entry.upper_intercept
                        layer_infeasible[row] = entry.infeasible
                        continue
                    delta = deltas[row]
                    if delta is not None and delta.layer == layer:
                        parent_entry = cache.peek_layer(
                            layer, _parent_prefix(row, layer))
                        if parent_entry is not None and not parent_entry.infeasible:
                            corrected.append((row, parent_entry))
                            continue
                    miss.append(row)
                if corrected:
                    with _measure(timings, "correct"):
                        self._apply_split_corrections_batch(
                            corrected, layer, deltas, cache, keys,
                            lower, upper, ls, us, ui, layer_infeasible)

            if miss:
                idx = np.asarray(miss, dtype=int)
                coefficients = np.broadcast_to(weight, (len(miss),) + weight.shape)
                constants = np.broadcast_to(bias, (len(miss), bias.shape[0]))
                miss_lower, miss_upper, _ = self._bound_expression_batch(
                    coefficients, constants, layer - 1,
                    [a[idx] for a in relax_lower_slopes],
                    [a[idx] for a in relax_upper_slopes],
                    [a[idx] for a in relax_upper_intercepts], box,
                    timings=timings)
                if incremental:
                    # Away from its split layer a child's decided phases are
                    # exactly its parent's, so the rows of the clip mask can
                    # be memoised per parent instead of rebuilt per child.
                    phases = np.stack([
                        (_parent_phases(row, layer, width)
                         if parent_of[row] is not None
                         and deltas[row].layer != layer
                         else sub[row].layer_phase_array(layer, width))
                        for row in miss])
                else:
                    phases = stacked_phase_array([sub[row] for row in miss],
                                                 layer, width)
                miss_lower, miss_upper, inconsistent = clip_bounds_with_phases(
                    miss_lower, miss_upper, phases)
                miss_slopes = None
                if lower_slopes is not None:
                    layer_slopes = np.clip(
                        np.asarray(lower_slopes[layer], dtype=float), 0.0, 1.0)
                    require(layer_slopes.shape == (batch_size, width),
                            f"lower_slopes for layer {layer} must have shape "
                            f"{(batch_size, width)}")
                    miss_slopes = layer_slopes[
                        np.asarray([pending[row] for row in miss], dtype=int)]
                miss_ls, miss_us, miss_ui = _relaxation_arrays(
                    miss_lower, miss_upper, phases, miss_slopes)
                lower[idx] = miss_lower
                upper[idx] = miss_upper
                ls[idx] = miss_ls
                us[idx] = miss_us
                ui[idx] = miss_ui
                layer_infeasible[idx] = inconsistent
                if use_cache:
                    # The batched pass stores no forms: a per-row view would
                    # pin the whole round's stacked (miss, rows, input_dim)
                    # substitution arrays in the LRU for the entry's
                    # lifetime, and a per-row copy would put two
                    # (width, input_dim) allocations on the hot path.  The
                    # sequential path, whose form arrays are exclusively
                    # owned, keeps capturing them (``forms`` is Optional).
                    for position, row in enumerate(miss):
                        cache.put_layer(layer, keys[row], SubstitutionEntry(
                            miss_lower[position].copy(), miss_upper[position].copy(),
                            miss_ls[position].copy(), miss_us[position].copy(),
                            miss_ui[position].copy(), bool(inconsistent[position]),
                            None))

            infeasible |= layer_infeasible
            lower_layers.append(lower)
            upper_layers.append(upper)
            relax_lower_slopes.append(ls)
            relax_upper_slopes.append(us)
            relax_upper_intercepts.append(ui)

        # The output-bound and specification rows share every relaxation, so
        # one fused backward pass bounds both (the spec rows are sliced off
        # the stacked result afterwards).
        last_hidden = network.num_relu_layers - 1
        num_outputs = network.biases[-1].shape[0]
        top_coefficients = network.weights[-1]
        top_constants = network.biases[-1]
        if spec is not None:
            require(spec.output_dim == network.output_dim,
                    "specification output dimension does not match the network")
            top_coefficients = np.vstack([top_coefficients,
                                          spec.coefficients @ network.weights[-1]])
            top_constants = np.concatenate([
                top_constants,
                spec.coefficients @ network.biases[-1] + spec.offsets])
        top_lower, top_upper, top_forms = self._bound_expression_batch(
            np.broadcast_to(top_coefficients, (count,) + top_coefficients.shape),
            np.broadcast_to(top_constants, (count,) + top_constants.shape),
            last_hidden, relax_lower_slopes, relax_upper_slopes,
            relax_upper_intercepts, box, timings=timings)
        output_lower = top_lower[:, :num_outputs]
        output_upper = top_upper[:, :num_outputs]

        spec_lower = None
        candidates = None
        worst_rows = None
        if spec is not None:
            spec_lower = top_lower[:, num_outputs:]
            worst_rows = np.argmin(spec_lower, axis=1)
            candidates = BatchedAffineForms(
                top_forms.lower_A[:, num_outputs:, :],
                top_forms.lower_c[:, num_outputs:],
                top_forms.upper_A[:, num_outputs:, :],
                top_forms.upper_c[:, num_outputs:]).minimizers(box, worst_rows)

        for position, index in enumerate(pending):
            pre_bounds = [ScalarBounds.wrap(lower_layers[layer][position],
                                            upper_layers[layer][position])
                          for layer in range(network.num_relu_layers)]
            spec_row_lower = None
            p_hat = None
            candidate = None
            if spec is not None:
                spec_row_lower = spec_lower[position]
                candidate = candidates[position]
                p_hat = (float("inf") if infeasible[position]
                         else float(spec_row_lower[worst_rows[position]]))
            report = BoundReport(pre_activation_bounds=pre_bounds,
                                 output_bounds=ScalarBounds.wrap(output_lower[position],
                                                                 output_upper[position]),
                                 spec_row_lower=spec_row_lower,
                                 p_hat=p_hat,
                                 candidate_input=candidate,
                                 infeasible=bool(infeasible[position]),
                                 method="deeppoly")
            # Report entries are stored for every child, including those
            # resolved through the parent delta: within one run the
            # substitution entries subsume report reuse (a frontier never
            # re-bounds a child it already expanded), but a *shared* cache
            # outlives the run — the verification service replays identical
            # jobs against it, and their children are report hits only if
            # the first run stored them.
            if use_cache:
                cache.put_report(sub_canonicals[position], spec is not None,
                                 _copy_report(report))
            reports[index] = report
        return reports

    def analyze_batch_relaxed(self, box: InputBox,
                              splits_list: Sequence[Optional[SplitAssignment]],
                              spec: Optional[LinearOutputSpec] = None,
                              cache: Optional[BoundCache] = None,
                              parents: Optional[Sequence[Optional[SplitAssignment]]] = None,
                              timings: Optional[PhaseTimings] = None
                              ) -> List[Optional[BoundReport]]:
        """Relaxed-incremental pass: freeze the parent's relaxations.

        For every sub-problem that extends its BaB parent by exactly one
        split and whose parent has a cached substitution entry at *every*
        hidden layer, this derives output/spec bounds from the parent's
        **frozen** relaxation stacks: only the decided neuron's bounds are
        clipped and its relaxation row swapped to the exact identity/zero
        form (the same rank-1 payload as the exact incremental path), and no
        layer is re-substituted — the whole batch costs one fused top-level
        backward pass.

        *Soundness.*  Each parent relaxation row satisfies
        ``lower_slope·z <= ReLU(z) <= upper_slope·z + upper_intercept`` for
        every ``z`` within the parent's post-clip pre-activation bounds.
        The child's region is a subset of the parent's, so every
        pre-activation attainable on the child lies within those same
        bounds and the frozen rows remain valid; at the split layer the
        decided neuron's corrected row is valid on its clipped range.  The
        resulting bounds are therefore sound for the child — but layers
        above the split are *not* re-tightened, so they are at most as
        tight as :meth:`analyze_batch`'s (``p̂`` typically slightly
        smaller).  Reports carry ``method="deeppoly-relaxed"``.

        Returns one report per sub-problem, ``None`` where the mode does not
        apply (no usable one-split delta, or a missing parent entry).  Parent
        entries are read via :meth:`~repro.bounds.cache.BoundCache.peek_layer`
        only and the cache is **never written**: the frozen-relaxation
        results are looser than what the exact path memoises and must not
        shadow it.
        """
        network = self.network
        require(box.dimension == network.input_dim,
                "input box dimension does not match the network")
        splits_list = [s or SplitAssignment.empty() for s in splits_list]
        batch_size = len(splits_list)
        reports: List[Optional[BoundReport]] = [None] * batch_size
        if batch_size == 0 or cache is None or parents is None:
            return reports
        require(len(parents) == batch_size,
                "parents must be index-aligned with splits_list")
        num_layers = network.num_relu_layers

        # Rows where the mode applies: a usable one-split delta plus the
        # parent's substitution entry at every hidden layer.  Entries are
        # memoised per parent — phase-split siblings share all of them.
        entries_by_parent: dict = {}

        def _parent_entries(parent):
            found = entries_by_parent.get(id(parent), False)
            if found is not False:
                return found
            entries = []
            for layer in range(num_layers):
                entry = cache.peek_layer(layer, parent.prefix_key(layer))
                if entry is None:
                    entries = None
                    break
                entries.append(entry)
            entries_by_parent[id(parent)] = entries
            return entries

        rows: List[int] = []
        row_deltas: List[ReluSplit] = []
        row_entries: List[List[SubstitutionEntry]] = []
        for index in range(batch_size):
            delta = self._usable_delta(parents[index], splits_list[index],
                                       num_layers)
            if delta is None:
                continue
            entries = _parent_entries(parents[index])
            if entries is None:
                continue
            rows.append(index)
            row_deltas.append(delta)
            row_entries.append(entries)
        if not rows:
            return reports
        count = len(rows)

        # Stack the frozen per-layer relaxations, correcting only the
        # decided neuron of each row's split layer.
        relax_ls: List[np.ndarray] = []
        relax_us: List[np.ndarray] = []
        relax_ui: List[np.ndarray] = []
        pre_bounds_rows: List[List[ScalarBounds]] = [[] for _ in range(count)]
        infeasible = np.zeros(count, dtype=bool)
        with _measure(timings, "correct"):
            for layer in range(num_layers):
                width = network.weights[layer].shape[0]
                ls = np.empty((count, width))
                us = np.empty((count, width))
                ui = np.empty((count, width))
                for row in range(count):
                    entry = row_entries[row][layer]
                    ls[row] = entry.lower_slope
                    us[row] = entry.upper_slope
                    ui[row] = entry.upper_intercept
                    delta = row_deltas[row]
                    if delta.layer == layer:
                        unit = delta.unit
                        (low, high, row_infeasible, ls[row, unit],
                         us[row, unit], ui[row, unit]) = self._correct_neuron(
                            float(entry.lower[unit]), float(entry.upper[unit]),
                            delta.phase)
                        lower = entry.lower.copy()
                        upper = entry.upper.copy()
                        lower[unit] = low
                        upper[unit] = high
                        bounds = ScalarBounds.wrap(lower, upper)
                        infeasible[row] |= row_infeasible or entry.infeasible
                    else:
                        bounds = ScalarBounds.wrap(entry.lower, entry.upper)
                        infeasible[row] |= entry.infeasible
                    pre_bounds_rows[row].append(bounds)
                relax_ls.append(ls)
                relax_us.append(us)
                relax_ui.append(ui)

        # One fused top-level pass bounds outputs and spec rows, exactly as
        # in :meth:`analyze_batch`.
        last_hidden = num_layers - 1
        num_outputs = network.biases[-1].shape[0]
        top_coefficients = network.weights[-1]
        top_constants = network.biases[-1]
        if spec is not None:
            require(spec.output_dim == network.output_dim,
                    "specification output dimension does not match the network")
            top_coefficients = np.vstack([top_coefficients,
                                          spec.coefficients @ network.weights[-1]])
            top_constants = np.concatenate([
                top_constants,
                spec.coefficients @ network.biases[-1] + spec.offsets])
        top_lower, top_upper, top_forms = self._bound_expression_batch(
            np.broadcast_to(top_coefficients, (count,) + top_coefficients.shape),
            np.broadcast_to(top_constants, (count,) + top_constants.shape),
            last_hidden, relax_ls, relax_us, relax_ui, box, timings=timings)
        output_lower = top_lower[:, :num_outputs]
        output_upper = top_upper[:, :num_outputs]

        spec_lower = None
        candidates = None
        worst_rows = None
        if spec is not None:
            spec_lower = top_lower[:, num_outputs:]
            worst_rows = np.argmin(spec_lower, axis=1)
            candidates = BatchedAffineForms(
                top_forms.lower_A[:, num_outputs:, :],
                top_forms.lower_c[:, num_outputs:],
                top_forms.upper_A[:, num_outputs:, :],
                top_forms.upper_c[:, num_outputs:]).minimizers(box, worst_rows)

        for row, index in enumerate(rows):
            spec_row_lower = None
            p_hat = None
            candidate = None
            if spec is not None:
                spec_row_lower = spec_lower[row]
                candidate = candidates[row]
                p_hat = (float("inf") if infeasible[row]
                         else float(spec_row_lower[worst_rows[row]]))
            reports[index] = BoundReport(
                pre_activation_bounds=pre_bounds_rows[row],
                output_bounds=ScalarBounds.wrap(output_lower[row],
                                                output_upper[row]),
                spec_row_lower=spec_row_lower,
                p_hat=p_hat,
                candidate_input=candidate,
                infeasible=bool(infeasible[row]),
                method="deeppoly-relaxed")
        return reports

    @staticmethod
    def _clip_with_splits(bounds: ScalarBounds, layer: int,
                          splits: SplitAssignment) -> ScalarBounds:
        lower = bounds.lower.copy()
        upper = bounds.upper.copy()
        for unit, phase in splits.layer_phases(layer, bounds.size).items():
            if phase == ACTIVE:
                lower[unit] = max(lower[unit], 0.0)
            elif phase == INACTIVE:
                upper[unit] = min(upper[unit], 0.0)
        return ScalarBounds(lower, upper)


def deeppoly_bounds(network: LoweredNetwork, box: InputBox,
                    splits: Optional[SplitAssignment] = None,
                    spec: Optional[LinearOutputSpec] = None,
                    lower_slopes: Optional[Sequence[np.ndarray]] = None) -> BoundReport:
    """Convenience wrapper around :class:`DeepPolyAnalyzer`."""
    return DeepPolyAnalyzer(network).analyze(box, splits=splits, spec=spec,
                                             lower_slopes=lower_slopes)


def deeppoly_bounds_batch(network: LoweredNetwork, box: InputBox,
                          splits_list: Sequence[Optional[SplitAssignment]],
                          spec: Optional[LinearOutputSpec] = None,
                          cache: Optional[BoundCache] = None) -> List[BoundReport]:
    """Convenience wrapper around :meth:`DeepPolyAnalyzer.analyze_batch`."""
    return DeepPolyAnalyzer(network).analyze_batch(box, splits_list, spec=spec,
                                                   cache=cache)
