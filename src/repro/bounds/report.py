"""Common result type returned by all bound-propagation analysers."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

import numpy as np

from repro.bounds.linear_form import ScalarBounds
from repro.bounds.splits import SplitAssignment


@dataclass
class BoundReport:
    """The outcome of one bound computation (one AppVer call).

    Attributes
    ----------
    pre_activation_bounds:
        Per hidden layer, scalar bounds on the pre-activation vector
        (after intersecting with the sub-problem's split constraints).
    output_bounds:
        Scalar bounds on the network output (logits).
    spec_row_lower:
        Lower bound of each output-spec constraint row over the sub-problem,
        or ``None`` when no specification was supplied.
    p_hat:
        The paper's ``p̂``: the minimum of ``spec_row_lower`` (a sound lower
        bound of the specification margin over the sub-problem).
    candidate_input:
        A concrete input in the box that the analyser believes is closest to
        violating the property (the counterexample candidate ``x̂``).
    infeasible:
        True when the split constraints are unsatisfiable within the input
        box — the sub-problem is vacuously verified.
    """

    pre_activation_bounds: List[ScalarBounds]
    output_bounds: ScalarBounds
    spec_row_lower: Optional[np.ndarray] = None
    p_hat: Optional[float] = None
    candidate_input: Optional[np.ndarray] = None
    infeasible: bool = False
    method: str = "unknown"

    def shallow_copy(self) -> "BoundReport":
        """A copy sharing every array but owning its own list and shell.

        Lives next to the field list so a new field cannot be forgotten
        (``dataclasses.replace`` would copy it automatically but costs
        several microseconds per call on the cache hot path).
        """
        return BoundReport(
            pre_activation_bounds=list(self.pre_activation_bounds),
            output_bounds=self.output_bounds,
            spec_row_lower=self.spec_row_lower,
            p_hat=self.p_hat,
            candidate_input=self.candidate_input,
            infeasible=self.infeasible,
            method=self.method)

    def unstable_neurons(self, splits: Optional[SplitAssignment] = None,
                         tolerance: float = 0.0) -> List[Tuple[int, int]]:
        """Neurons whose phase is still ambiguous in this sub-problem.

        A neuron is unstable when its pre-activation bounds straddle zero and
        its phase has not been fixed by a split.
        """
        splits = splits or SplitAssignment.empty()
        unstable: List[Tuple[int, int]] = []
        for layer, bounds in enumerate(self.pre_activation_bounds):
            for unit in range(bounds.size):
                if splits.is_decided(layer, unit):
                    continue
                if bounds.lower[unit] < -tolerance and bounds.upper[unit] > tolerance:
                    unstable.append((layer, unit))
        return unstable

    @property
    def num_unstable(self) -> int:
        return len(self.unstable_neurons())

    @property
    def verified(self) -> bool:
        """True when the bound alone proves the property on this sub-problem."""
        if self.infeasible:
            return True
        return self.p_hat is not None and self.p_hat > 0.0
