"""Interval bound propagation (IBP).

The coarsest approximated verifier in the library: every intermediate
quantity is tracked by an axis-aligned interval.  IBP is cheap but loose; it
is used as a sanity baseline, inside branching-heuristic scores, and in
tests as an independent soundness cross-check for the tighter DeepPoly
analyser.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.bounds.linear_form import ScalarBounds
from repro.bounds.report import BoundReport
from repro.bounds.splits import ACTIVE, INACTIVE, SplitAssignment
from repro.nn.network import LoweredNetwork
from repro.specs.properties import InputBox, LinearOutputSpec
from repro.utils.validation import require


def _affine_interval(weight: np.ndarray, bias: np.ndarray,
                     lower: np.ndarray, upper: np.ndarray) -> ScalarBounds:
    """Interval image of ``W @ h + b`` for ``h`` in ``[lower, upper]``."""
    positive = np.clip(weight, 0.0, None)
    negative = np.clip(weight, None, 0.0)
    new_lower = positive @ lower + negative @ upper + bias
    new_upper = positive @ upper + negative @ lower + bias
    return ScalarBounds(new_lower, new_upper)


def _apply_split_clipping(bounds: ScalarBounds, layer: int,
                          splits: SplitAssignment) -> ScalarBounds:
    """Intersect pre-activation bounds with the layer's split constraints."""
    lower = bounds.lower.copy()
    upper = bounds.upper.copy()
    for unit, phase in splits.layer_phases(layer, bounds.size).items():
        if phase == ACTIVE:
            lower[unit] = max(lower[unit], 0.0)
        elif phase == INACTIVE:
            upper[unit] = min(upper[unit], 0.0)
    return ScalarBounds(lower, upper)


def interval_bounds(network: LoweredNetwork, box: InputBox,
                    splits: Optional[SplitAssignment] = None,
                    spec: Optional[LinearOutputSpec] = None) -> BoundReport:
    """Run IBP on ``network`` over ``box`` under the given split constraints.

    Returns a :class:`BoundReport`; when ``spec`` is provided the report
    carries ``p̂`` (the minimum spec-row lower bound) and a candidate
    counterexample (the box centre, IBP does not produce a sharper witness).
    """
    require(box.dimension == network.input_dim,
            "input box dimension does not match the network")
    splits = splits or SplitAssignment.empty()

    lower = box.lower
    upper = box.upper
    pre_activation_bounds: List[ScalarBounds] = []
    infeasible = False
    for layer in range(network.num_relu_layers):
        pre = _affine_interval(network.weights[layer], network.biases[layer], lower, upper)
        pre = _apply_split_clipping(pre, layer, splits)
        if not pre.is_consistent():
            infeasible = True
            pre = ScalarBounds(np.minimum(pre.lower, pre.upper),
                               np.maximum(pre.lower, pre.upper))
        pre_activation_bounds.append(pre)
        lower = np.maximum(pre.lower, 0.0)
        upper = np.maximum(pre.upper, 0.0)

    output_bounds = _affine_interval(network.weights[-1], network.biases[-1], lower, upper)

    spec_row_lower = None
    p_hat = None
    candidate = None
    if spec is not None:
        require(spec.output_dim == network.output_dim,
                "specification output dimension does not match the network")
        spec_bounds = _affine_interval(spec.coefficients, spec.offsets,
                                       output_bounds.lower, output_bounds.upper)
        spec_row_lower = spec_bounds.lower
        p_hat = float("inf") if infeasible else float(np.min(spec_row_lower))
        candidate = box.center

    return BoundReport(pre_activation_bounds=pre_activation_bounds,
                       output_bounds=output_bounds,
                       spec_row_lower=spec_row_lower,
                       p_hat=p_hat,
                       candidate_input=candidate,
                       infeasible=infeasible,
                       method="ibp")
