"""Interval bound propagation (IBP).

The coarsest approximated verifier in the library: every intermediate
quantity is tracked by an axis-aligned interval.  IBP is cheap but loose; it
is used as a sanity baseline, inside branching-heuristic scores, and in
tests as an independent soundness cross-check for the tighter DeepPoly
analyser.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from repro.bounds.linear_form import ScalarBounds
from repro.bounds.report import BoundReport
from repro.bounds.splits import (
    ACTIVE,
    INACTIVE,
    SplitAssignment,
    clip_bounds_with_phases,
    stacked_phase_array,
)
from repro.nn.network import LoweredNetwork
from repro.specs.properties import InputBox, LinearOutputSpec
from repro.utils.validation import require


def _affine_interval(weight: np.ndarray, bias: np.ndarray,
                     lower: np.ndarray, upper: np.ndarray) -> ScalarBounds:
    """Interval image of ``W @ h + b`` for ``h`` in ``[lower, upper]``."""
    positive = np.clip(weight, 0.0, None)
    negative = np.clip(weight, None, 0.0)
    new_lower = positive @ lower + negative @ upper + bias
    new_upper = positive @ upper + negative @ lower + bias
    return ScalarBounds(new_lower, new_upper)


def _apply_split_clipping(bounds: ScalarBounds, layer: int,
                          splits: SplitAssignment) -> ScalarBounds:
    """Intersect pre-activation bounds with the layer's split constraints."""
    lower = bounds.lower.copy()
    upper = bounds.upper.copy()
    for unit, phase in splits.layer_phases(layer, bounds.size).items():
        if phase == ACTIVE:
            lower[unit] = max(lower[unit], 0.0)
        elif phase == INACTIVE:
            upper[unit] = min(upper[unit], 0.0)
    return ScalarBounds(lower, upper)


def interval_bounds(network: LoweredNetwork, box: InputBox,
                    splits: Optional[SplitAssignment] = None,
                    spec: Optional[LinearOutputSpec] = None) -> BoundReport:
    """Run IBP on ``network`` over ``box`` under the given split constraints.

    Returns a :class:`BoundReport`; when ``spec`` is provided the report
    carries ``p̂`` (the minimum spec-row lower bound) and a candidate
    counterexample (the box centre, IBP does not produce a sharper witness).
    """
    require(box.dimension == network.input_dim,
            "input box dimension does not match the network")
    splits = splits or SplitAssignment.empty()

    lower = box.lower
    upper = box.upper
    pre_activation_bounds: List[ScalarBounds] = []
    infeasible = False
    for layer in range(network.num_relu_layers):
        pre = _affine_interval(network.weights[layer], network.biases[layer], lower, upper)
        pre = _apply_split_clipping(pre, layer, splits)
        if not pre.is_consistent():
            infeasible = True
            pre = ScalarBounds(np.minimum(pre.lower, pre.upper),
                               np.maximum(pre.lower, pre.upper))
        pre_activation_bounds.append(pre)
        lower = np.maximum(pre.lower, 0.0)
        upper = np.maximum(pre.upper, 0.0)

    output_bounds = _affine_interval(network.weights[-1], network.biases[-1], lower, upper)

    spec_row_lower = None
    p_hat = None
    candidate = None
    if spec is not None:
        require(spec.output_dim == network.output_dim,
                "specification output dimension does not match the network")
        spec_bounds = _affine_interval(spec.coefficients, spec.offsets,
                                       output_bounds.lower, output_bounds.upper)
        spec_row_lower = spec_bounds.lower
        p_hat = float("inf") if infeasible else float(np.min(spec_row_lower))
        candidate = box.center

    return BoundReport(pre_activation_bounds=pre_activation_bounds,
                       output_bounds=output_bounds,
                       spec_row_lower=spec_row_lower,
                       p_hat=p_hat,
                       candidate_input=candidate,
                       infeasible=infeasible,
                       method="ibp")


def _affine_interval_batch(weight: np.ndarray, bias: np.ndarray,
                           lower: np.ndarray, upper: np.ndarray):
    """Batched :func:`_affine_interval`: ``lower``/``upper`` are ``(B, dim)``."""
    positive = np.clip(weight, 0.0, None)
    negative = np.clip(weight, None, 0.0)
    new_lower = lower @ positive.T + upper @ negative.T + bias
    new_upper = upper @ positive.T + lower @ negative.T + bias
    return new_lower, new_upper


def interval_bounds_batch(network: LoweredNetwork, box: InputBox,
                          splits_list: Sequence[Optional[SplitAssignment]],
                          spec: Optional[LinearOutputSpec] = None) -> List[BoundReport]:
    """Run IBP on ``B`` sub-problems of the same box in one batched pass.

    Equivalent to ``[interval_bounds(network, box, s, spec) for s in
    splits_list]`` but carries a leading batch axis through the layer loop,
    so the affine images of all sub-problems are computed by shared matmuls.
    """
    require(box.dimension == network.input_dim,
            "input box dimension does not match the network")
    splits_list = [s or SplitAssignment.empty() for s in splits_list]
    batch_size = len(splits_list)
    if batch_size == 0:
        return []

    lower = np.broadcast_to(box.lower, (batch_size, box.dimension))
    upper = np.broadcast_to(box.upper, (batch_size, box.dimension))
    lower_layers: List[np.ndarray] = []
    upper_layers: List[np.ndarray] = []
    infeasible = np.zeros(batch_size, dtype=bool)
    for layer in range(network.num_relu_layers):
        pre_lower, pre_upper = _affine_interval_batch(
            network.weights[layer], network.biases[layer], lower, upper)
        phases = stacked_phase_array(splits_list, layer, pre_lower.shape[1])
        pre_lower, pre_upper, inconsistent = clip_bounds_with_phases(
            pre_lower, pre_upper, phases)
        infeasible |= inconsistent
        lower_layers.append(pre_lower)
        upper_layers.append(pre_upper)
        lower = np.maximum(pre_lower, 0.0)
        upper = np.maximum(pre_upper, 0.0)

    output_lower, output_upper = _affine_interval_batch(
        network.weights[-1], network.biases[-1], lower, upper)

    spec_lower = None
    if spec is not None:
        require(spec.output_dim == network.output_dim,
                "specification output dimension does not match the network")
        spec_lower, _ = _affine_interval_batch(spec.coefficients, spec.offsets,
                                               output_lower, output_upper)

    reports: List[BoundReport] = []
    for row in range(batch_size):
        pre_bounds = [ScalarBounds(lower_layers[layer][row], upper_layers[layer][row])
                      for layer in range(network.num_relu_layers)]
        spec_row_lower = None
        p_hat = None
        candidate = None
        if spec is not None:
            spec_row_lower = spec_lower[row]
            p_hat = (float("inf") if infeasible[row]
                     else float(np.min(spec_row_lower)))
            candidate = box.center
        reports.append(BoundReport(pre_activation_bounds=pre_bounds,
                                   output_bounds=ScalarBounds(output_lower[row],
                                                              output_upper[row]),
                                   spec_row_lower=spec_row_lower,
                                   p_hat=p_hat,
                                   candidate_input=candidate,
                                   infeasible=bool(infeasible[row]),
                                   method="ibp"))
    return reports
