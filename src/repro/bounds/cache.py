"""Split-aware memoisation of bound-propagation work.

BaB-style verifiers evaluate thousands of sub-problems whose
:class:`~repro.bounds.splits.SplitAssignment` constraint sets overlap almost
entirely: the two children of a node share *all* of the parent's splits and
add one decision each.  Because DeepPoly/IBP pre-activation bounds at hidden
layer ``L`` depend only on the splits decided at layers ``<= L``, a child
that splits a neuron at layer ``l*`` can reuse every per-layer result of its
parent for layers ``< l*`` verbatim and only recompute layers at-or-below
the decided neuron.

:class:`BoundCache` exploits this with two kinds of entries, both behind one
bounded LRU store:

* **substitution entries** (:class:`SubstitutionEntry`), keyed by
  ``(layer, SplitAssignment.prefix_key(layer))`` — the post-clip
  pre-activation bounds, the ReLU relaxation derived from them, whether
  clipping made that layer inconsistent, *and* the accumulated input-level
  linear forms of the backward pass that produced the bounds.  The bounds
  and relaxation serve plain prefix reuse; the whole entry additionally
  backs the incremental path: a child that extends the entry's assignment
  by one neuron *at this layer* derives its own entry with a rank-1
  correction (clip the decided neuron's bounds, swap its relaxation row to
  the exact identity/zero form) instead of re-substituting, and inherits
  the parent's forms verbatim — they do not depend on the clip.
* **report entries**, keyed by the full ``SplitAssignment.canonical_key()``
  — the complete :class:`~repro.bounds.report.BoundReport` of a finished
  analysis, so re-evaluating an identical sub-problem (e.g. an FSB probe
  followed by the actual expansion) is free.

Entries are immutable facts about one ``(network, input box)`` pair, so the
only invalidation rule is LRU eviction: an evicted parent entry simply makes
its children fall back to the full backward substitution (which recreates
the entry), never changes a result.

A cache instance is only valid for one fixed ``(network, input box, output
spec)`` triple and for the default (heuristic) relaxation slopes; analyses
with externally supplied ``lower_slopes`` (the α-CROWN optimiser) must
bypass it.  The owning :class:`~repro.verifiers.appver.ApproximateVerifier`
guarantees both.

:class:`LpCache` applies the same idea to the *exact* leaf resolutions of
:func:`~repro.verifiers.milp.solve_leaf_lp_batch`: a bounded LRU store of
``RowOptimum`` results keyed by ``SplitAssignment.canonical_key()``, so a
fully phase-decided leaf that is reached again (within a run, or across
runs on the *same* verification problem when the cache is shared
explicitly) never re-solves its LP.  The same soundness invariant applies —
one cache per ``(network, input box, output spec)`` triple; the bound
analysis is deterministic, so a canonical split assignment always induces
the same LP and a hit returns the identical optimum.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import TYPE_CHECKING, Hashable, Optional, Tuple

import numpy as np

from repro.utils.validation import require

if TYPE_CHECKING:  # runtime import would cycle through repro.specs
    from repro.bounds.linear_form import AffineForms

#: Default capacity shared by every cache owner (AppVer, AbonnConfig).
DEFAULT_CACHE_SIZE = 4096

#: Default capacity of the leaf-LP result cache.  Leaf LPs are far more
#: expensive to recompute than bound passes, and their memoised payload (one
#: ``RowOptimum``) is tiny, so a run rarely needs eviction at all.
DEFAULT_LP_CACHE_SIZE = 2048


@dataclass(frozen=True)
class SubstitutionEntry:
    """Memoised per-layer analysis state (arrays are never mutated).

    ``lower``/``upper`` are the layer's post-clip pre-activation bounds,
    the three relaxation arrays the ReLU relaxation derived from them, and
    ``infeasible`` whether split clipping emptied the layer.  ``forms``
    optionally carries the accumulated input-level linear forms of the
    backward pass that produced the bounds (``None`` for entries created
    before forms were captured); the rank-1 split correction shares the
    parent's ``forms`` object with the child entry because the forms only
    depend on the relaxations *below* the layer, which parent and child
    agree on.
    """

    lower: np.ndarray
    upper: np.ndarray
    lower_slope: np.ndarray
    upper_slope: np.ndarray
    upper_intercept: np.ndarray
    infeasible: bool
    forms: Optional[AffineForms] = None


#: Backwards-compatible name for :class:`SubstitutionEntry` (pre-incremental
#: callers constructed entries without forms; the field defaults to None).
LayerEntry = SubstitutionEntry


@dataclass
class CacheStats:
    """Hit/miss counters, split by entry kind.

    ``delta_corrections`` counts the phase-split children whose layer entry
    was derived from the parent's entry with a rank-1 correction instead of
    a full backward substitution — the incremental path's reuse counter.
    Evictions are likewise split by the kind of the entry that was dropped
    (``layer_evictions`` / ``report_evictions``); :attr:`evictions` stays
    available as their total.
    """

    layer_hits: int = 0
    layer_misses: int = 0
    report_hits: int = 0
    report_misses: int = 0
    layer_evictions: int = 0
    report_evictions: int = 0
    delta_corrections: int = 0

    @property
    def hits(self) -> int:
        return self.layer_hits + self.report_hits

    @property
    def misses(self) -> int:
        return self.layer_misses + self.report_misses

    @property
    def evictions(self) -> int:
        """Total LRU evictions across both entry kinds."""
        return self.layer_evictions + self.report_evictions

    def as_dict(self) -> dict:
        return {
            "layer_hits": self.layer_hits,
            "layer_misses": self.layer_misses,
            "report_hits": self.report_hits,
            "report_misses": self.report_misses,
            "evictions": self.evictions,
            "layer_evictions": self.layer_evictions,
            "report_evictions": self.report_evictions,
            "delta_corrections": self.delta_corrections,
        }


class BoundCache:
    """A bounded LRU cache over layer and report entries.

    Every public method holds an internal re-entrant lock for its whole
    duration, so the LRU bookkeeping (lookup + ``move_to_end``, insert +
    eviction sweep) and the matching stats updates are atomic and one cache
    instance may be shared by concurrent workers.  Entries are immutable, so
    locking the *operations* is all the safety a shared cache needs.
    """

    def __init__(self, max_entries: int = DEFAULT_CACHE_SIZE) -> None:
        require(max_entries >= 1, "max_entries must be positive")
        self.max_entries = int(max_entries)
        self._store: "OrderedDict[Hashable, object]" = OrderedDict()
        self._lock = threading.RLock()
        self.stats = CacheStats()

    # -- generic LRU plumbing (callers must hold ``_lock``) -------------------
    def _get(self, key: Hashable) -> Optional[object]:
        value = self._store.get(key)
        if value is not None:
            self._store.move_to_end(key)
        return value

    def _put(self, key: Hashable, value: object) -> None:
        if key in self._store:
            self._store.move_to_end(key)
        self._store[key] = value
        while len(self._store) > self.max_entries:
            evicted_key, _ = self._store.popitem(last=False)
            if evicted_key[0] == "layer":
                self.stats.layer_evictions += 1  # lint: disable=lock-discipline - caller holds _lock (see section comment)
            else:
                self.stats.report_evictions += 1  # lint: disable=lock-discipline - caller holds _lock (see section comment)

    # -- substitution (per-layer) entries -------------------------------------
    def get_layer(self, layer: int, prefix_key: Tuple) -> Optional[SubstitutionEntry]:
        with self._lock:
            entry = self._get(("layer", layer, prefix_key))
            if entry is None:
                self.stats.layer_misses += 1
            else:
                self.stats.layer_hits += 1
            return entry

    def put_layer(self, layer: int, prefix_key: Tuple,
                  entry: SubstitutionEntry) -> None:
        with self._lock:
            self._put(("layer", layer, prefix_key), entry)

    def peek_layer(self, layer: int, prefix_key: Tuple) -> Optional[SubstitutionEntry]:
        """Like :meth:`get_layer` but without touching the hit/miss counters.

        The incremental path probes for the *parent's* entry before deciding
        whether a rank-1 correction applies; a failed probe is not a cache
        miss of the sub-problem being analysed.
        """
        with self._lock:
            return self._get(("layer", layer, prefix_key))

    # -- report entries -------------------------------------------------------
    def get_report(self, canonical_key: Tuple, with_spec: bool):
        with self._lock:
            report = self._get(("report", canonical_key, with_spec))
            if report is None:
                self.stats.report_misses += 1
            else:
                self.stats.report_hits += 1
            return report

    def put_report(self, canonical_key: Tuple, with_spec: bool, report) -> None:
        with self._lock:
            self._put(("report", canonical_key, with_spec), report)

    # -- stats ----------------------------------------------------------------
    def record_delta_corrections(self, count: int = 1) -> None:
        """Count ``count`` rank-1 split corrections served by this cache.

        The incremental bound path derives child entries from a parent's
        entry; it counts that reuse through this method instead of mutating
        :attr:`stats` directly, which would tear the counter on a
        fingerprint-shared cache under concurrent workers (the same
        discipline as :meth:`LpCache.record_hit`).
        """
        with self._lock:
            self.stats.delta_corrections += count

    def stats_snapshot(self) -> dict:
        """Atomic :meth:`CacheStats.as_dict` snapshot (taken under the lock).

        Reading ``cache.stats.as_dict()`` from another thread can tear
        across the individual counters while a worker is mid-update;
        bundle- and service-level reporting reads through this method so a
        snapshot is internally consistent.
        """
        with self._lock:
            return self.stats.as_dict()

    # -- persistence ----------------------------------------------------------
    def export_entries(self) -> list:
        """Snapshot of every ``(key, entry)`` pair in LRU order (oldest first).

        The pairs are exactly what :meth:`import_entries` accepts, so
        ``import_entries(export_entries())`` on a fresh cache reproduces the
        store including its eviction order.  Entries are immutable, so the
        snapshot shares them with the live cache safely.
        """
        with self._lock:
            return list(self._store.items())

    def import_entries(self, items) -> int:
        """Insert exported ``(key, entry)`` pairs, preserving their order.

        Used by cache-bundle persistence to rebuild a warm cache from a
        snapshot.  Imported entries do not touch the hit/miss counters — a
        restored cache starts with fresh stats — but inserting beyond
        capacity evicts (and counts) exactly like regular puts.  Returns the
        number of entries inserted.
        """
        with self._lock:
            for key, value in items:
                self._put(key, value)
            return len(self._store)

    # -- management -----------------------------------------------------------
    def __len__(self) -> int:
        with self._lock:
            return len(self._store)

    def clear(self) -> None:
        with self._lock:
            self._store.clear()


@dataclass
class LpCacheStats:
    """Counters of the leaf-LP cache: reuse (hits) versus actual solves.

    ``solves`` counts *leaf resolutions* dispatched to the solver — the unit
    hits and misses are measured in (each resolution internally costs one LP
    per specification row).
    """

    hits: int = 0
    misses: int = 0
    solves: int = 0
    evictions: int = 0

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from the cache (0.0 before any lookup)."""
        total = self.hits + self.misses
        return (self.hits / total) if total else 0.0

    def as_dict(self) -> dict:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "solves": self.solves,
            "evictions": self.evictions,
            "hit_rate": self.hit_rate,
        }


class LpCache:
    """A bounded LRU cache of exact leaf-LP optima.

    Keys are ``SplitAssignment.canonical_key()`` tuples; values are the
    :class:`~repro.verifiers.milp.RowOptimum` computed for that leaf (stored
    as an opaque object so this module stays free of verifier imports).  A
    hit returns the *identical* object the solver produced — callers treat
    optima as immutable.  ``solves`` counts leaf resolutions that actually
    reached the solver through this cache (one per miss; each costs one LP
    per spec row internally), so ``hits / (hits + misses)`` and ``solves``
    make the cost of leaf resolution observable end to end.

    As with :class:`BoundCache`, every public method is serialised by an
    internal re-entrant lock, so a fingerprint-shared instance is safe under
    concurrent workers and its counters never tear.
    """

    def __init__(self, max_entries: int = DEFAULT_LP_CACHE_SIZE) -> None:
        require(max_entries >= 1, "max_entries must be positive")
        self.max_entries = int(max_entries)
        self._store: "OrderedDict[Hashable, object]" = OrderedDict()
        self._lock = threading.RLock()
        self.stats = LpCacheStats()

    def get(self, canonical_key: Hashable) -> Optional[object]:
        """Look up a leaf's optimum; counts a hit or a miss."""
        with self._lock:
            value = self._store.get(canonical_key)
            if value is None:
                self.stats.misses += 1
            else:
                self.stats.hits += 1
                self._store.move_to_end(canonical_key)
            return value

    def put(self, canonical_key: Hashable, optimum: object) -> None:
        """Store a freshly solved optimum (LRU eviction beyond capacity)."""
        with self._lock:
            if canonical_key in self._store:
                self._store.move_to_end(canonical_key)
            self._store[canonical_key] = optimum
            while len(self._store) > self.max_entries:
                self._store.popitem(last=False)
                self.stats.evictions += 1

    def record_solve(self, count: int = 1) -> None:
        """Count ``count`` leaf resolutions dispatched to the solver."""
        with self._lock:
            self.stats.solves += count

    def record_hit(self, count: int = 1) -> None:
        """Count ``count`` reuses served without a store lookup.

        The batch LP solver deduplicates identical leaves *within* one
        batch by aliasing the first resolution's optimum; those aliases are
        cache-level reuse and are recorded through this method instead of
        callers mutating :attr:`stats` directly (which would race on a
        shared cache).
        """
        with self._lock:
            self.stats.hits += count

    def stats_snapshot(self) -> dict:
        """Atomic :meth:`LpCacheStats.as_dict` snapshot (under the lock).

        The counterpart of :meth:`BoundCache.stats_snapshot`: reporting
        reads a shared cache's counters through this method so the snapshot
        never tears across a concurrent worker's update.
        """
        with self._lock:
            return self.stats.as_dict()

    def export_entries(self) -> list:
        """Snapshot of every ``(key, optimum)`` pair in LRU order (oldest first).

        The counterpart of :meth:`import_entries`; optima are immutable, so
        the snapshot shares them with the live cache safely.
        """
        with self._lock:
            return list(self._store.items())

    def import_entries(self, items) -> int:
        """Insert exported ``(key, optimum)`` pairs, preserving their order.

        Restored entries leave the hit/miss/solve counters untouched (a
        rebuilt cache starts with fresh stats); inserting beyond capacity
        evicts oldest-first exactly like regular puts.  Returns the number
        of entries inserted.
        """
        with self._lock:
            for key, value in items:
                if key in self._store:
                    self._store.move_to_end(key)
                self._store[key] = value
                while len(self._store) > self.max_entries:
                    self._store.popitem(last=False)
                    self.stats.evictions += 1
            return len(self._store)

    def __len__(self) -> int:
        with self._lock:
            return len(self._store)

    def clear(self) -> None:
        with self._lock:
            self._store.clear()
