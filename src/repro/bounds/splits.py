"""ReLU phase-split constraints shared by bound propagation and BaB.

A BaB sub-problem Γ (§III of the paper) is identified by a sequence of ReLU
input constraints: each split fixes one ReLU neuron to be *active*
(``r+``: pre-activation >= 0) or *inactive* (``r-``: pre-activation <= 0).
The bound-propagation verifiers consume these constraints as a
:class:`SplitAssignment`, which records the decided phase of each neuron.
"""

from __future__ import annotations

import weakref
from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.utils.validation import require

#: Phase constants: pre-activation forced non-negative / non-positive.
ACTIVE = 1
INACTIVE = -1


@dataclass(frozen=True)
class ReluSplit:
    """A single ReLU phase decision ``r+_(layer, unit)`` or ``r-_(layer, unit)``."""

    layer: int
    unit: int
    phase: int

    def __post_init__(self) -> None:
        require(self.layer >= 0, "layer must be non-negative")
        require(self.unit >= 0, "unit must be non-negative")
        require(self.phase in (ACTIVE, INACTIVE), "phase must be ACTIVE (+1) or INACTIVE (-1)")

    @property
    def neuron(self) -> Tuple[int, int]:
        return (self.layer, self.unit)

    def negated(self) -> "ReluSplit":
        """The opposite phase decision for the same neuron."""
        return ReluSplit(self.layer, self.unit, -self.phase)

    def __str__(self) -> str:
        sign = "+" if self.phase == ACTIVE else "-"
        return f"r{sign}({self.layer},{self.unit})"


class SplitAssignment:
    """An immutable mapping from ReLU neurons to decided phases.

    The assignment corresponds to the constraint sequence Γ of a BaB node;
    extending it with one more :class:`ReluSplit` yields a child node's
    assignment.
    """

    def __init__(self, splits: Optional[Mapping[Tuple[int, int], int]] = None) -> None:
        self._phases: Dict[Tuple[int, int], int] = dict(splits or {})
        #: Derivation breadcrumb set by :meth:`with_split`: a weak reference
        #: to the parent plus the added split, when this assignment was
        #: created as a one-split extension.  Purely an accelerator for
        #: :func:`split_delta` — semantics never depend on it (two equal
        #: assignments may differ in provenance), and the weak reference
        #: keeps a child from pinning its whole ancestor chain in memory.
        self._derived_from: Optional[Tuple["weakref.ref", ReluSplit]] = None
        for neuron, phase in self._phases.items():
            require(phase in (ACTIVE, INACTIVE),
                    f"phase for neuron {neuron} must be +1 or -1")

    @classmethod
    def empty(cls) -> "SplitAssignment":
        return cls()

    @classmethod
    def from_splits(cls, splits: Iterable[ReluSplit]) -> "SplitAssignment":
        assignment = cls()
        for split in splits:
            assignment = assignment.with_split(split)
        return assignment

    def with_split(self, split: ReluSplit) -> "SplitAssignment":
        """Return a new assignment extended by ``split``.

        Re-splitting an already-decided neuron with a conflicting phase is a
        programming error in the BaB driver and raises ``ValueError``.
        """
        existing = self._phases.get(split.neuron)
        if existing is not None and existing != split.phase:
            raise ValueError(f"conflicting split for neuron {split.neuron}")
        phases = dict(self._phases)
        phases[split.neuron] = split.phase
        child = SplitAssignment(phases)
        if existing is None:
            child._derived_from = (weakref.ref(self), split)
        return child

    def phase_of(self, layer: int, unit: int) -> int:
        """Return the decided phase of a neuron, or 0 when undecided."""
        return self._phases.get((layer, unit), 0)

    def is_decided(self, layer: int, unit: int) -> bool:
        return (layer, unit) in self._phases

    def decided_neurons(self) -> Tuple[Tuple[int, int], ...]:
        return tuple(sorted(self._phases))

    def layer_phases(self, layer: int, width: int) -> Dict[int, int]:
        """Decided phases restricted to one layer: ``{unit: phase}``."""
        return {unit: phase for (lay, unit), phase in self._phases.items()
                if lay == layer and unit < width}

    def canonical_key(self) -> Tuple[Tuple[int, int, int], ...]:
        """A hashable canonical form: sorted ``(layer, unit, phase)`` triples.

        Two assignments describing the same constraint set always produce the
        same key, which is what the bound cache uses to identify sub-problems.
        """
        return tuple((layer, unit, phase)
                     for (layer, unit), phase in sorted(self._phases.items()))

    def prefix_key(self, max_layer: int) -> Tuple[Tuple[int, int, int], ...]:
        """Canonical key restricted to splits at layers ``<= max_layer``.

        DeepPoly/IBP pre-activation bounds at layer ``L`` depend only on the
        splits decided at layers ``<= L`` (clipping at ``L``, relaxations
        below), so this is the correct cache key for per-layer bounds: a child
        sub-problem shares every prefix entry of its parent below the layer of
        the newly decided neuron.
        """
        return tuple((layer, unit, phase)
                     for (layer, unit), phase in sorted(self._phases.items())
                     if layer <= max_layer)

    def max_layer(self) -> int:
        """The deepest layer with a decided neuron, or ``-1`` when empty."""
        if not self._phases:
            return -1
        return max(layer for layer, _ in self._phases)

    def __len__(self) -> int:
        return len(self._phases)

    def __iter__(self) -> Iterator[ReluSplit]:
        for (layer, unit), phase in sorted(self._phases.items()):
            yield ReluSplit(layer, unit, phase)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, SplitAssignment):
            return NotImplemented
        return self._phases == other._phases

    def __hash__(self) -> int:
        return hash(tuple(sorted(self._phases.items())))

    def __str__(self) -> str:
        if not self._phases:
            return "Γ=ε"
        return "Γ=" + "·".join(str(split) for split in self)

    def layer_phase_array(self, layer: int, width: int) -> np.ndarray:
        """Decided phases of one layer as an integer array (0 = undecided)."""
        phases = np.zeros(width, dtype=int)
        for unit, phase in self.layer_phases(layer, width).items():
            phases[unit] = phase
        return phases

    def satisfied_by(self, pre_activations: Iterable, tolerance: float = 1e-9) -> bool:
        """Whether concrete pre-activation vectors satisfy every decided phase.

        ``pre_activations`` is the per-layer list produced by
        :meth:`repro.nn.network.LoweredNetwork.pre_activations`.
        """
        pre_activations = list(pre_activations)
        for (layer, unit), phase in self._phases.items():
            if layer >= len(pre_activations) or unit >= len(pre_activations[layer]):
                return False
            value = float(pre_activations[layer][unit])
            if phase == ACTIVE and value < -tolerance:
                return False
            if phase == INACTIVE and value > tolerance:
                return False
        return True


def split_delta(parent: Optional["SplitAssignment"],
                child: "SplitAssignment") -> Optional[ReluSplit]:
    """The single split by which ``child`` extends ``parent``, or ``None``.

    This is the relationship the incremental bound path exploits: a BaB
    phase-split child shares *all* of its parent's constraints and adds
    exactly one.  Returns ``None`` when ``parent`` is ``None``, when the
    child is not a one-split extension, or when any shared neuron disagrees
    on its phase — callers then fall back to the non-incremental path.
    """
    if parent is None or len(child) != len(parent) + 1:
        return None
    derived = child._derived_from
    if derived is not None and derived[0]() is parent:
        return derived[1]
    added: Optional[ReluSplit] = None
    for neuron, phase in child._phases.items():
        existing = parent._phases.get(neuron)
        if existing is None:
            if added is not None:
                return None
            added = ReluSplit(neuron[0], neuron[1], phase)
        elif existing != phase:
            return None
    return added


def insert_into_canonical(canonical: Tuple[Tuple[int, int, int], ...],
                          split: ReluSplit) -> Tuple[Tuple[int, int, int], ...]:
    """Insert one split's triple into a canonical key, keeping it sorted.

    ``insert_into_canonical(parent.canonical_key(), delta)`` equals
    ``child.canonical_key()`` when ``child = parent + delta`` — which lets
    the incremental path derive a child's cache keys from the parent's in
    one O(depth) pass instead of re-sorting the whole assignment.
    """
    triple = (split.layer, split.unit, split.phase)
    neuron = (split.layer, split.unit)
    for position, (layer, unit, _) in enumerate(canonical):
        if (layer, unit) > neuron:
            return canonical[:position] + (triple,) + canonical[position:]
    return canonical + (triple,)


def prefix_counts(canonical: Tuple[Tuple[int, int, int], ...],
                  num_layers: int) -> Tuple[int, ...]:
    """Per-layer split counts such that ``canonical[:counts[l]]`` equals
    ``prefix_key(l)``.

    A canonical key is sorted by ``(layer, unit)``, so the splits at layers
    ``<= l`` are literally a leading slice of it; this computes every
    slice boundary in one linear pass, replacing ``num_layers`` sort-based
    ``prefix_key`` calls per sub-problem on the batched hot path.
    """
    counts = []
    position = 0
    total = len(canonical)
    for layer in range(num_layers):
        while position < total and canonical[position][0] <= layer:
            position += 1
        counts.append(position)
    return tuple(counts)


def stacked_phase_array(splits_list: Sequence["SplitAssignment"], layer: int,
                        width: int) -> np.ndarray:
    """Stacked decided-phase array ``(B, width)`` for one layer (0 = undecided)."""
    return np.stack([splits.layer_phase_array(layer, width)
                     for splits in splits_list])


def clip_bounds_with_phases(lower: np.ndarray, upper: np.ndarray,
                            phases: np.ndarray
                            ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Batched split clipping plus per-row inconsistency handling.

    Intersects ``(B, width)`` pre-activation bounds with the decided phases
    (ACTIVE rows clip the lower bound to 0, INACTIVE rows the upper), flags
    each batch row whose intersection became empty (beyond the ``1e-12``
    slack of :meth:`~repro.bounds.linear_form.ScalarBounds.is_consistent`),
    and re-sorts only those rows so downstream relaxations stay well formed
    — exactly matching the sequential analyser's behaviour per sub-problem.
    Returns ``(lower, upper, inconsistent_rows)``.
    """
    lower = np.where(phases == ACTIVE, np.maximum(lower, 0.0), lower)
    upper = np.where(phases == INACTIVE, np.minimum(upper, 0.0), upper)
    inconsistent = ~np.all(lower <= upper + 1e-12, axis=1)
    if np.any(inconsistent):
        swapped_lower = np.minimum(lower[inconsistent], upper[inconsistent])
        swapped_upper = np.maximum(lower[inconsistent], upper[inconsistent])
        lower[inconsistent] = swapped_lower
        upper[inconsistent] = swapped_upper
    return lower, upper, inconsistent
