"""α-CROWN: DeepPoly/CROWN bounds with optimised unstable lower slopes.

CROWN's lower-bound quality depends on the slope chosen for the lower
relaxation of every unstable ReLU.  α-CROWN (Xu et al., adopted by the
αβ-CROWN tool the paper compares against) treats those slopes as free
parameters in ``[0, 1]`` and optimises them to maximise the specification
lower bound ``p̂``.

The original implementation differentiates through the bound computation
with PyTorch autograd.  This numpy reproduction instead uses SPSA
(simultaneous-perturbation stochastic approximation): each iteration
estimates the gradient of ``p̂`` with two bound evaluations under a random
±δ perturbation of all slopes, then takes a projected ascent step.  On the
laptop-scale networks used here a handful of iterations recovers most of the
gap between DeepPoly and the fully optimised bound, which is what matters
for the baseline comparison.

:meth:`AlphaCrownAnalyzer.analyze_batch` runs the same optimisation for
``B`` sub-problems at once: because each sequential :meth:`analyze` call
seeds a fresh RNG, every sub-problem sees the *same* ±1 perturbation
direction sequence, so one shared draw per iteration serves the whole batch
and all ``2B`` perturbed objectives evaluate through one stacked DeepPoly
pass (:meth:`~repro.bounds.deeppoly.DeepPolyAnalyzer.analyze_batch` with
batched ``lower_slopes``).  Ascent steps and best-so-far tracking are
per-element, so results match the per-element loop up to batched-matmul
float noise.

**Parent warm start.**  When the caller threads BaB parent identity
(``parent=`` / ``parents=``), a phase-split child starts its SPSA ascent
from the *parent's optimised slopes* — with the newly decided neuron's
slope swapped to the exact identity/zero value its phase imposes — instead
of re-deriving ``default_lower_slope`` heuristics through an extra
spec-less DeepPoly pass.  Any slope vector in ``[0, 1]`` yields sound
bounds (``ReLU(z) >= s·z`` holds for every ``z``), so the warm start only
changes where the ascent *begins*: children typically start near their
parent's optimum and the initial bounding pass is skipped entirely when
every batch element has a warm entry.  The per-problem slope store is a
bounded LRU keyed by ``SplitAssignment.canonical_key()``.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.bounds.deeppoly import DeepPolyAnalyzer, default_lower_slope
from repro.bounds.report import BoundReport
from repro.bounds.splits import ACTIVE, SplitAssignment, split_delta
from repro.nn.network import LoweredNetwork
from repro.specs.properties import InputBox, LinearOutputSpec
from repro.utils.rng import SeedLike, as_rng
from repro.utils.validation import require

#: Capacity of the per-analyzer optimised-slope store (LRU beyond that).
DEFAULT_SLOPE_STORE_SIZE = 1024


@dataclass(frozen=True)
class AlphaCrownConfig:
    """Hyperparameters of the SPSA slope optimisation.

    ``warm_start`` enables the parent-entry slope warm start: children whose
    parent identity is threaded through ``analyze``/``analyze_batch`` start
    the ascent from the parent's optimised slopes (split neuron corrected)
    instead of the ``default_lower_slope`` heuristic.
    """

    iterations: int = 8
    step_size: float = 0.25
    perturbation: float = 0.15
    seed: int = 0
    warm_start: bool = True

    def __post_init__(self) -> None:
        require(self.iterations >= 0, "iterations must be non-negative")
        require(self.step_size > 0, "step_size must be positive")
        require(0 < self.perturbation <= 0.5, "perturbation must be in (0, 0.5]")


class AlphaCrownAnalyzer:
    """CROWN analyser with SPSA-optimised lower slopes."""

    def __init__(self, network: LoweredNetwork,
                 config: Optional[AlphaCrownConfig] = None) -> None:
        self.network = network
        self.config = config or AlphaCrownConfig()
        self._inner = DeepPolyAnalyzer(network)
        #: Optimised slopes of finished analyses, keyed by canonical splits.
        self._slope_store: "OrderedDict[Tuple, List[np.ndarray]]" = OrderedDict()
        self.warm_starts = 0

    # -- slope store -----------------------------------------------------------
    def _store_slopes(self, splits: SplitAssignment,
                      slopes: Sequence[np.ndarray]) -> None:
        key = splits.canonical_key()
        self._slope_store[key] = [np.asarray(s, dtype=float).copy() for s in slopes]
        self._slope_store.move_to_end(key)
        while len(self._slope_store) > DEFAULT_SLOPE_STORE_SIZE:
            self._slope_store.popitem(last=False)

    def _warm_slopes(self, parent: Optional[SplitAssignment],
                     splits: SplitAssignment) -> Optional[List[np.ndarray]]:
        """The parent's optimised slopes, split-neuron-corrected, or ``None``.

        The correction mirrors the rank-1 relaxation swap of the incremental
        DeepPoly path: the newly decided neuron's lower relaxation becomes
        exact (slope 1 for ``r+``, 0 for ``r-``), every other slope is
        inherited from the parent's optimum.
        """
        if not self.config.warm_start or parent is None:
            return None
        delta = split_delta(parent, splits)
        if delta is None or delta.layer >= self.network.num_relu_layers:
            return None
        stored = self._slope_store.get(parent.canonical_key())
        if stored is None:
            return None
        self._slope_store.move_to_end(parent.canonical_key())
        slopes = [s.copy() for s in stored]
        slopes[delta.layer][delta.unit] = 1.0 if delta.phase == ACTIVE else 0.0
        self.warm_starts += 1
        return slopes

    def _initial_slopes(self, box: InputBox,
                        splits: Optional[SplitAssignment]) -> List[np.ndarray]:
        """Start from the DeepPoly heuristic slopes of a plain analysis."""
        report = self._inner.analyze(box, splits=splits)
        slopes = []
        for bounds in report.pre_activation_bounds:
            slopes.append(default_lower_slope(bounds.lower, bounds.upper))
        return slopes

    def _objective(self, box: InputBox, splits: Optional[SplitAssignment],
                   spec: LinearOutputSpec, slopes: Sequence[np.ndarray]) -> float:
        report = self._inner.analyze(box, splits=splits, spec=spec, lower_slopes=slopes)
        return float("-inf") if report.p_hat is None else float(report.p_hat)

    def analyze(self, box: InputBox, splits: Optional[SplitAssignment] = None,
                spec: Optional[LinearOutputSpec] = None,
                rng: SeedLike = None,
                parent: Optional[SplitAssignment] = None) -> BoundReport:
        """Return bounds with optimised slopes (falls back to DeepPoly without a spec)."""
        if spec is None or self.config.iterations == 0:
            report = self._inner.analyze(box, splits=splits, spec=spec)
            report.method = "alpha-crown"
            return report

        splits = splits or SplitAssignment.empty()
        rng = as_rng(self.config.seed if rng is None else rng)
        slopes = self._warm_slopes(parent, splits)
        if slopes is None:
            slopes = self._initial_slopes(box, splits)
        best_slopes = [s.copy() for s in slopes]
        best_value = self._objective(box, splits, spec, slopes)

        for iteration in range(self.config.iterations):
            directions = [rng.choice([-1.0, 1.0], size=s.shape) for s in slopes]
            delta = self.config.perturbation
            plus = [np.clip(s + delta * d, 0.0, 1.0) for s, d in zip(slopes, directions)]
            minus = [np.clip(s - delta * d, 0.0, 1.0) for s, d in zip(slopes, directions)]
            value_plus = self._objective(box, splits, spec, plus)
            value_minus = self._objective(box, splits, spec, minus)
            gradient_scale = (value_plus - value_minus) / (2.0 * delta)
            step = self.config.step_size / np.sqrt(iteration + 1.0)
            slopes = [np.clip(s + step * gradient_scale * d, 0.0, 1.0)
                      for s, d in zip(slopes, directions)]
            value = self._objective(box, splits, spec, slopes)
            for candidate_value, candidate_slopes in ((value_plus, plus),
                                                      (value_minus, minus),
                                                      (value, slopes)):
                if candidate_value > best_value:
                    best_value = candidate_value
                    best_slopes = [s.copy() for s in candidate_slopes]

        if self.config.warm_start:
            self._store_slopes(splits, best_slopes)
        report = self._inner.analyze(box, splits=splits, spec=spec,
                                     lower_slopes=best_slopes)
        report.method = "alpha-crown"
        return report

    # -- batched optimisation ---------------------------------------------------
    def _objective_batch(self, box: InputBox,
                         splits_list: Sequence[SplitAssignment],
                         spec: LinearOutputSpec,
                         slopes: Sequence[np.ndarray]) -> np.ndarray:
        """Per-element ``p̂`` of one stacked bound evaluation, shape ``(B,)``."""
        reports = self._inner.analyze_batch(box, splits_list, spec=spec,
                                            lower_slopes=slopes)
        return np.array([float("-inf") if report.p_hat is None
                         else float(report.p_hat) for report in reports])

    def _initial_slopes_batch(self, box: InputBox,
                              splits_list: Sequence[SplitAssignment],
                              parents: Optional[Sequence[Optional[SplitAssignment]]]
                              ) -> List[np.ndarray]:
        """Stacked starting slopes: warm entries where available, heuristic
        DeepPoly slopes (one batched spec-less pass over the cold subset)
        otherwise."""
        num_layers = self.network.num_relu_layers
        warm: List[Optional[List[np.ndarray]]] = [None] * len(splits_list)
        if parents is not None:
            for index, splits in enumerate(splits_list):
                warm[index] = self._warm_slopes(parents[index], splits)
        cold = [index for index, slopes in enumerate(warm) if slopes is None]
        cold_slopes: Dict[int, List[np.ndarray]] = {}
        if cold:
            reports = self._inner.analyze_batch(box, [splits_list[i] for i in cold])
            for position, index in enumerate(cold):
                report = reports[position]
                cold_slopes[index] = [
                    default_lower_slope(report.pre_activation_bounds[layer].lower,
                                        report.pre_activation_bounds[layer].upper)
                    for layer in range(num_layers)]
        stacked: List[np.ndarray] = []
        for layer in range(num_layers):
            stacked.append(np.stack([
                (warm[index][layer] if warm[index] is not None
                 else cold_slopes[index][layer])
                for index in range(len(splits_list))]))
        return stacked

    def analyze_batch(self, box: InputBox,
                      splits_list: Sequence[Optional[SplitAssignment]],
                      spec: Optional[LinearOutputSpec] = None,
                      rng: SeedLike = None,
                      parents: Optional[Sequence[Optional[SplitAssignment]]] = None
                      ) -> List[BoundReport]:
        """Optimise slopes for ``B`` sub-problems in stacked SPSA passes.

        Equivalent to ``[self.analyze(box, s, spec) for s in splits_list]``
        up to batched-matmul floating-point noise: the per-element loop
        reseeds its RNG for every sub-problem, so all sub-problems share one
        perturbation-direction sequence, which is exactly what one shared
        draw per iteration reproduces.  Instead of ``B`` independent SPSA
        loops of ``3`` bound computations per iteration, each iteration runs
        three stacked :meth:`DeepPolyAnalyzer.analyze_batch` passes over the
        whole batch.  ``parents`` (index-aligned, ``None`` entries allowed)
        enables the per-element parent warm start; when every element is
        warm the initial spec-less bounding pass is skipped entirely.
        """
        splits_list = [s or SplitAssignment.empty() for s in splits_list]
        if not splits_list:
            return []
        if parents is not None:
            require(len(parents) == len(splits_list),
                    "parents must be index-aligned with splits_list")
        if spec is None or self.config.iterations == 0:
            reports = self._inner.analyze_batch(box, splits_list, spec=spec)
            for report in reports:
                report.method = "alpha-crown"
            return reports

        rng = as_rng(self.config.seed if rng is None else rng)
        slopes = self._initial_slopes_batch(box, splits_list, parents)
        best_slopes = [s.copy() for s in slopes]
        best_value = self._objective_batch(box, splits_list, spec, slopes)

        for iteration in range(self.config.iterations):
            # One shared ±1 draw per layer — the same directions every
            # sequential call would draw from its freshly seeded RNG.
            directions = [np.broadcast_to(
                rng.choice([-1.0, 1.0], size=s.shape[1:]), s.shape)
                for s in slopes]
            delta = self.config.perturbation
            plus = [np.clip(s + delta * d, 0.0, 1.0)
                    for s, d in zip(slopes, directions)]
            minus = [np.clip(s - delta * d, 0.0, 1.0)
                     for s, d in zip(slopes, directions)]
            value_plus = self._objective_batch(box, splits_list, spec, plus)
            value_minus = self._objective_batch(box, splits_list, spec, minus)
            with np.errstate(invalid="ignore"):
                gradient_scale = (value_plus - value_minus) / (2.0 * delta)
            step = self.config.step_size / np.sqrt(iteration + 1.0)
            slopes = [np.clip(s + step * gradient_scale[:, None] * d, 0.0, 1.0)
                      for s, d in zip(slopes, directions)]
            value = self._objective_batch(box, splits_list, spec, slopes)
            for candidate_value, candidate_slopes in ((value_plus, plus),
                                                      (value_minus, minus),
                                                      (value, slopes)):
                with np.errstate(invalid="ignore"):
                    improved = candidate_value > best_value
                if not np.any(improved):
                    continue
                best_value = np.where(improved, candidate_value, best_value)
                for layer, candidate in enumerate(candidate_slopes):
                    best_slopes[layer] = np.where(improved[:, None], candidate,
                                                  best_slopes[layer])

        if self.config.warm_start:
            for index, splits in enumerate(splits_list):
                self._store_slopes(splits, [s[index] for s in best_slopes])
        reports = self._inner.analyze_batch(box, splits_list, spec=spec,
                                            lower_slopes=best_slopes)
        for report in reports:
            report.method = "alpha-crown"
        return reports


def alpha_crown_bounds(network: LoweredNetwork, box: InputBox,
                       splits: Optional[SplitAssignment] = None,
                       spec: Optional[LinearOutputSpec] = None,
                       config: Optional[AlphaCrownConfig] = None) -> BoundReport:
    """Convenience wrapper around :class:`AlphaCrownAnalyzer`."""
    return AlphaCrownAnalyzer(network, config).analyze(box, splits=splits, spec=spec)
