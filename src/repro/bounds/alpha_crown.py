"""α-CROWN: DeepPoly/CROWN bounds with optimised unstable lower slopes.

CROWN's lower-bound quality depends on the slope chosen for the lower
relaxation of every unstable ReLU.  α-CROWN (Xu et al., adopted by the
αβ-CROWN tool the paper compares against) treats those slopes as free
parameters in ``[0, 1]`` and optimises them to maximise the specification
lower bound ``p̂``.

The original implementation differentiates through the bound computation
with PyTorch autograd.  This numpy reproduction instead uses SPSA
(simultaneous-perturbation stochastic approximation): each iteration
estimates the gradient of ``p̂`` with two bound evaluations under a random
±δ perturbation of all slopes, then takes a projected ascent step.  On the
laptop-scale networks used here a handful of iterations recovers most of the
gap between DeepPoly and the fully optimised bound, which is what matters
for the baseline comparison.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from repro.bounds.deeppoly import DeepPolyAnalyzer, default_lower_slope
from repro.bounds.report import BoundReport
from repro.bounds.splits import SplitAssignment
from repro.nn.network import LoweredNetwork
from repro.specs.properties import InputBox, LinearOutputSpec
from repro.utils.rng import SeedLike, as_rng
from repro.utils.validation import require


@dataclass(frozen=True)
class AlphaCrownConfig:
    """Hyperparameters of the SPSA slope optimisation."""

    iterations: int = 8
    step_size: float = 0.25
    perturbation: float = 0.15
    seed: int = 0

    def __post_init__(self) -> None:
        require(self.iterations >= 0, "iterations must be non-negative")
        require(self.step_size > 0, "step_size must be positive")
        require(0 < self.perturbation <= 0.5, "perturbation must be in (0, 0.5]")


class AlphaCrownAnalyzer:
    """CROWN analyser with SPSA-optimised lower slopes."""

    def __init__(self, network: LoweredNetwork,
                 config: Optional[AlphaCrownConfig] = None) -> None:
        self.network = network
        self.config = config or AlphaCrownConfig()
        self._inner = DeepPolyAnalyzer(network)

    def _initial_slopes(self, box: InputBox,
                        splits: Optional[SplitAssignment]) -> List[np.ndarray]:
        """Start from the DeepPoly heuristic slopes of a plain analysis."""
        report = self._inner.analyze(box, splits=splits)
        slopes = []
        for bounds in report.pre_activation_bounds:
            slopes.append(default_lower_slope(bounds.lower, bounds.upper))
        return slopes

    def _objective(self, box: InputBox, splits: Optional[SplitAssignment],
                   spec: LinearOutputSpec, slopes: Sequence[np.ndarray]) -> float:
        report = self._inner.analyze(box, splits=splits, spec=spec, lower_slopes=slopes)
        return float("-inf") if report.p_hat is None else float(report.p_hat)

    def analyze(self, box: InputBox, splits: Optional[SplitAssignment] = None,
                spec: Optional[LinearOutputSpec] = None,
                rng: SeedLike = None) -> BoundReport:
        """Return bounds with optimised slopes (falls back to DeepPoly without a spec)."""
        if spec is None or self.config.iterations == 0:
            report = self._inner.analyze(box, splits=splits, spec=spec)
            report.method = "alpha-crown"
            return report

        rng = as_rng(self.config.seed if rng is None else rng)
        slopes = self._initial_slopes(box, splits)
        best_slopes = [s.copy() for s in slopes]
        best_value = self._objective(box, splits, spec, slopes)

        for iteration in range(self.config.iterations):
            directions = [rng.choice([-1.0, 1.0], size=s.shape) for s in slopes]
            delta = self.config.perturbation
            plus = [np.clip(s + delta * d, 0.0, 1.0) for s, d in zip(slopes, directions)]
            minus = [np.clip(s - delta * d, 0.0, 1.0) for s, d in zip(slopes, directions)]
            value_plus = self._objective(box, splits, spec, plus)
            value_minus = self._objective(box, splits, spec, minus)
            gradient_scale = (value_plus - value_minus) / (2.0 * delta)
            step = self.config.step_size / np.sqrt(iteration + 1.0)
            slopes = [np.clip(s + step * gradient_scale * d, 0.0, 1.0)
                      for s, d in zip(slopes, directions)]
            value = self._objective(box, splits, spec, slopes)
            for candidate_value, candidate_slopes in ((value_plus, plus),
                                                      (value_minus, minus),
                                                      (value, slopes)):
                if candidate_value > best_value:
                    best_value = candidate_value
                    best_slopes = [s.copy() for s in candidate_slopes]

        report = self._inner.analyze(box, splits=splits, spec=spec,
                                     lower_slopes=best_slopes)
        report.method = "alpha-crown"
        return report


def alpha_crown_bounds(network: LoweredNetwork, box: InputBox,
                       splits: Optional[SplitAssignment] = None,
                       spec: Optional[LinearOutputSpec] = None,
                       config: Optional[AlphaCrownConfig] = None) -> BoundReport:
    """Convenience wrapper around :class:`AlphaCrownAnalyzer`."""
    return AlphaCrownAnalyzer(network, config).analyze(box, splits=splits, spec=spec)
