"""α-CROWN: DeepPoly/CROWN bounds with optimised unstable lower slopes.

CROWN's lower-bound quality depends on the slope chosen for the lower
relaxation of every unstable ReLU.  α-CROWN (Xu et al., adopted by the
αβ-CROWN tool the paper compares against) treats those slopes as free
parameters in ``[0, 1]`` and optimises them to maximise the specification
lower bound ``p̂``.

The original implementation differentiates through the bound computation
with PyTorch autograd.  This numpy reproduction instead uses SPSA
(simultaneous-perturbation stochastic approximation): each iteration
estimates the gradient of ``p̂`` with two bound evaluations under a random
±δ perturbation of all slopes, then takes a projected ascent step.  On the
laptop-scale networks used here a handful of iterations recovers most of the
gap between DeepPoly and the fully optimised bound, which is what matters
for the baseline comparison.

:meth:`AlphaCrownAnalyzer.analyze_batch` runs the same optimisation for
``B`` sub-problems at once: because each sequential :meth:`analyze` call
seeds a fresh RNG, every sub-problem sees the *same* ±1 perturbation
direction sequence, so one shared draw per iteration serves the whole batch
and all ``2B`` perturbed objectives evaluate through one stacked DeepPoly
pass (:meth:`~repro.bounds.deeppoly.DeepPolyAnalyzer.analyze_batch` with
batched ``lower_slopes``).  Ascent steps and best-so-far tracking are
per-element, so results match the per-element loop up to batched-matmul
float noise.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from repro.bounds.deeppoly import DeepPolyAnalyzer, default_lower_slope
from repro.bounds.report import BoundReport
from repro.bounds.splits import SplitAssignment
from repro.nn.network import LoweredNetwork
from repro.specs.properties import InputBox, LinearOutputSpec
from repro.utils.rng import SeedLike, as_rng
from repro.utils.validation import require


@dataclass(frozen=True)
class AlphaCrownConfig:
    """Hyperparameters of the SPSA slope optimisation."""

    iterations: int = 8
    step_size: float = 0.25
    perturbation: float = 0.15
    seed: int = 0

    def __post_init__(self) -> None:
        require(self.iterations >= 0, "iterations must be non-negative")
        require(self.step_size > 0, "step_size must be positive")
        require(0 < self.perturbation <= 0.5, "perturbation must be in (0, 0.5]")


class AlphaCrownAnalyzer:
    """CROWN analyser with SPSA-optimised lower slopes."""

    def __init__(self, network: LoweredNetwork,
                 config: Optional[AlphaCrownConfig] = None) -> None:
        self.network = network
        self.config = config or AlphaCrownConfig()
        self._inner = DeepPolyAnalyzer(network)

    def _initial_slopes(self, box: InputBox,
                        splits: Optional[SplitAssignment]) -> List[np.ndarray]:
        """Start from the DeepPoly heuristic slopes of a plain analysis."""
        report = self._inner.analyze(box, splits=splits)
        slopes = []
        for bounds in report.pre_activation_bounds:
            slopes.append(default_lower_slope(bounds.lower, bounds.upper))
        return slopes

    def _objective(self, box: InputBox, splits: Optional[SplitAssignment],
                   spec: LinearOutputSpec, slopes: Sequence[np.ndarray]) -> float:
        report = self._inner.analyze(box, splits=splits, spec=spec, lower_slopes=slopes)
        return float("-inf") if report.p_hat is None else float(report.p_hat)

    def analyze(self, box: InputBox, splits: Optional[SplitAssignment] = None,
                spec: Optional[LinearOutputSpec] = None,
                rng: SeedLike = None) -> BoundReport:
        """Return bounds with optimised slopes (falls back to DeepPoly without a spec)."""
        if spec is None or self.config.iterations == 0:
            report = self._inner.analyze(box, splits=splits, spec=spec)
            report.method = "alpha-crown"
            return report

        rng = as_rng(self.config.seed if rng is None else rng)
        slopes = self._initial_slopes(box, splits)
        best_slopes = [s.copy() for s in slopes]
        best_value = self._objective(box, splits, spec, slopes)

        for iteration in range(self.config.iterations):
            directions = [rng.choice([-1.0, 1.0], size=s.shape) for s in slopes]
            delta = self.config.perturbation
            plus = [np.clip(s + delta * d, 0.0, 1.0) for s, d in zip(slopes, directions)]
            minus = [np.clip(s - delta * d, 0.0, 1.0) for s, d in zip(slopes, directions)]
            value_plus = self._objective(box, splits, spec, plus)
            value_minus = self._objective(box, splits, spec, minus)
            gradient_scale = (value_plus - value_minus) / (2.0 * delta)
            step = self.config.step_size / np.sqrt(iteration + 1.0)
            slopes = [np.clip(s + step * gradient_scale * d, 0.0, 1.0)
                      for s, d in zip(slopes, directions)]
            value = self._objective(box, splits, spec, slopes)
            for candidate_value, candidate_slopes in ((value_plus, plus),
                                                      (value_minus, minus),
                                                      (value, slopes)):
                if candidate_value > best_value:
                    best_value = candidate_value
                    best_slopes = [s.copy() for s in candidate_slopes]

        report = self._inner.analyze(box, splits=splits, spec=spec,
                                     lower_slopes=best_slopes)
        report.method = "alpha-crown"
        return report

    # -- batched optimisation ---------------------------------------------------
    def _objective_batch(self, box: InputBox,
                         splits_list: Sequence[SplitAssignment],
                         spec: LinearOutputSpec,
                         slopes: Sequence[np.ndarray]) -> np.ndarray:
        """Per-element ``p̂`` of one stacked bound evaluation, shape ``(B,)``."""
        reports = self._inner.analyze_batch(box, splits_list, spec=spec,
                                            lower_slopes=slopes)
        return np.array([float("-inf") if report.p_hat is None
                         else float(report.p_hat) for report in reports])

    def analyze_batch(self, box: InputBox,
                      splits_list: Sequence[Optional[SplitAssignment]],
                      spec: Optional[LinearOutputSpec] = None,
                      rng: SeedLike = None) -> List[BoundReport]:
        """Optimise slopes for ``B`` sub-problems in stacked SPSA passes.

        Equivalent to ``[self.analyze(box, s, spec) for s in splits_list]``
        up to batched-matmul floating-point noise: the per-element loop
        reseeds its RNG for every sub-problem, so all sub-problems share one
        perturbation-direction sequence, which is exactly what one shared
        draw per iteration reproduces.  Instead of ``B`` independent SPSA
        loops of ``3`` bound computations per iteration, each iteration runs
        three stacked :meth:`DeepPolyAnalyzer.analyze_batch` passes over the
        whole batch.
        """
        splits_list = [s or SplitAssignment.empty() for s in splits_list]
        if not splits_list:
            return []
        if spec is None or self.config.iterations == 0:
            reports = self._inner.analyze_batch(box, splits_list, spec=spec)
            for report in reports:
                report.method = "alpha-crown"
            return reports

        rng = as_rng(self.config.seed if rng is None else rng)
        # Start from the DeepPoly heuristic slopes of a plain stacked analysis.
        initial_reports = self._inner.analyze_batch(box, splits_list)
        slopes: List[np.ndarray] = []
        for layer in range(self.network.num_relu_layers):
            slopes.append(np.stack([
                default_lower_slope(report.pre_activation_bounds[layer].lower,
                                    report.pre_activation_bounds[layer].upper)
                for report in initial_reports]))
        best_slopes = [s.copy() for s in slopes]
        best_value = self._objective_batch(box, splits_list, spec, slopes)

        for iteration in range(self.config.iterations):
            # One shared ±1 draw per layer — the same directions every
            # sequential call would draw from its freshly seeded RNG.
            directions = [np.broadcast_to(
                rng.choice([-1.0, 1.0], size=s.shape[1:]), s.shape)
                for s in slopes]
            delta = self.config.perturbation
            plus = [np.clip(s + delta * d, 0.0, 1.0)
                    for s, d in zip(slopes, directions)]
            minus = [np.clip(s - delta * d, 0.0, 1.0)
                     for s, d in zip(slopes, directions)]
            value_plus = self._objective_batch(box, splits_list, spec, plus)
            value_minus = self._objective_batch(box, splits_list, spec, minus)
            with np.errstate(invalid="ignore"):
                gradient_scale = (value_plus - value_minus) / (2.0 * delta)
            step = self.config.step_size / np.sqrt(iteration + 1.0)
            slopes = [np.clip(s + step * gradient_scale[:, None] * d, 0.0, 1.0)
                      for s, d in zip(slopes, directions)]
            value = self._objective_batch(box, splits_list, spec, slopes)
            for candidate_value, candidate_slopes in ((value_plus, plus),
                                                      (value_minus, minus),
                                                      (value, slopes)):
                with np.errstate(invalid="ignore"):
                    improved = candidate_value > best_value
                if not np.any(improved):
                    continue
                best_value = np.where(improved, candidate_value, best_value)
                for layer, candidate in enumerate(candidate_slopes):
                    best_slopes[layer] = np.where(improved[:, None], candidate,
                                                  best_slopes[layer])

        reports = self._inner.analyze_batch(box, splits_list, spec=spec,
                                            lower_slopes=best_slopes)
        for report in reports:
            report.method = "alpha-crown"
        return reports


def alpha_crown_bounds(network: LoweredNetwork, box: InputBox,
                       splits: Optional[SplitAssignment] = None,
                       spec: Optional[LinearOutputSpec] = None,
                       config: Optional[AlphaCrownConfig] = None) -> BoundReport:
    """Convenience wrapper around :class:`AlphaCrownAnalyzer`."""
    return AlphaCrownAnalyzer(network, config).analyze(box, splits=splits, spec=spec)
