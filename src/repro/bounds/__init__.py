"""Approximated-verifier substrate: IBP, DeepPoly/CROWN and α-CROWN bounds."""

from repro.bounds.alpha_crown import AlphaCrownAnalyzer, AlphaCrownConfig, alpha_crown_bounds
from repro.bounds.cache import (
    DEFAULT_CACHE_SIZE,
    DEFAULT_LP_CACHE_SIZE,
    BoundCache,
    CacheStats,
    LayerEntry,
    LpCache,
    LpCacheStats,
    SubstitutionEntry,
)
from repro.bounds.deeppoly import (
    DeepPolyAnalyzer,
    deeppoly_bounds,
    deeppoly_bounds_batch,
    default_lower_slope,
)
from repro.bounds.interval import interval_bounds, interval_bounds_batch
from repro.bounds.linear_form import (
    AffineForms,
    BatchedAffineForms,
    BatchedLinearForm,
    LinearForm,
    ScalarBounds,
    concretize_lower,
    concretize_lower_batch,
    concretize_upper,
    concretize_upper_batch,
    minimizing_corner,
    minimizing_corner_batch,
)
from repro.bounds.report import BoundReport
from repro.bounds.splits import (
    ACTIVE,
    INACTIVE,
    ReluSplit,
    SplitAssignment,
    clip_bounds_with_phases,
    split_delta,
    stacked_phase_array,
)

__all__ = [
    "DEFAULT_CACHE_SIZE",
    "DEFAULT_LP_CACHE_SIZE",
    "LpCache",
    "LpCacheStats",
    "clip_bounds_with_phases",
    "split_delta",
    "stacked_phase_array",
    "SubstitutionEntry",
    "AffineForms",
    "BatchedAffineForms",
    "AlphaCrownAnalyzer",
    "AlphaCrownConfig",
    "alpha_crown_bounds",
    "BoundCache",
    "CacheStats",
    "LayerEntry",
    "DeepPolyAnalyzer",
    "deeppoly_bounds",
    "deeppoly_bounds_batch",
    "default_lower_slope",
    "interval_bounds",
    "interval_bounds_batch",
    "BatchedLinearForm",
    "LinearForm",
    "ScalarBounds",
    "concretize_lower",
    "concretize_lower_batch",
    "concretize_upper",
    "concretize_upper_batch",
    "minimizing_corner",
    "minimizing_corner_batch",
    "BoundReport",
    "ACTIVE",
    "INACTIVE",
    "ReluSplit",
    "SplitAssignment",
]
