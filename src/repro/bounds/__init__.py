"""Approximated-verifier substrate: IBP, DeepPoly/CROWN and α-CROWN bounds."""

from repro.bounds.alpha_crown import AlphaCrownAnalyzer, AlphaCrownConfig, alpha_crown_bounds
from repro.bounds.deeppoly import DeepPolyAnalyzer, deeppoly_bounds, default_lower_slope
from repro.bounds.interval import interval_bounds
from repro.bounds.linear_form import (
    LinearForm,
    ScalarBounds,
    concretize_lower,
    concretize_upper,
    minimizing_corner,
)
from repro.bounds.report import BoundReport
from repro.bounds.splits import ACTIVE, INACTIVE, ReluSplit, SplitAssignment

__all__ = [
    "AlphaCrownAnalyzer",
    "AlphaCrownConfig",
    "alpha_crown_bounds",
    "DeepPolyAnalyzer",
    "deeppoly_bounds",
    "default_lower_slope",
    "interval_bounds",
    "LinearForm",
    "ScalarBounds",
    "concretize_lower",
    "concretize_upper",
    "minimizing_corner",
    "BoundReport",
    "ACTIVE",
    "INACTIVE",
    "ReluSplit",
    "SplitAssignment",
]
