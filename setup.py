"""Setuptools entry point.

The pyproject.toml carries all project metadata; this file exists so that
legacy (non-PEP-517) editable installs work in offline environments where
the ``wheel`` package is unavailable.
"""

from setuptools import setup

setup()
