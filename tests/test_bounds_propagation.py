"""Soundness and tightness tests for IBP, DeepPoly and α-CROWN bounds."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bounds.alpha_crown import AlphaCrownAnalyzer, AlphaCrownConfig, alpha_crown_bounds
from repro.bounds.deeppoly import DeepPolyAnalyzer, deeppoly_bounds, default_lower_slope
from repro.bounds.interval import interval_bounds
from repro.bounds.splits import ACTIVE, INACTIVE, ReluSplit, SplitAssignment
from repro.nn.network import dense_network
from repro.specs.robustness import local_robustness_spec
from repro.specs.properties import InputBox


def robustness_problem(network, reference, epsilon):
    reference = np.asarray(reference, dtype=float)
    label = int(network.predict(reference.reshape(1, -1))[0])
    return local_robustness_spec(reference, epsilon, label, network.output_dim)


class TestInterval:
    def test_output_bounds_contain_samples(self, small_network):
        spec = robustness_problem(small_network, [0.4, 0.5, 0.6, 0.3], 0.1)
        lowered = small_network.lowered()
        report = interval_bounds(lowered, spec.input_box, spec=spec.output_spec)
        for sample in spec.input_box.sample(0, count=200):
            output = lowered.forward(sample)[0]
            assert report.output_bounds.contains(output)
            assert spec.output_spec.margin(output) >= report.p_hat - 1e-9

    def test_pre_activation_bounds_contain_samples(self, small_network):
        spec = robustness_problem(small_network, [0.4, 0.5, 0.6, 0.3], 0.1)
        lowered = small_network.lowered()
        report = interval_bounds(lowered, spec.input_box)
        for sample in spec.input_box.sample(1, count=50):
            for layer, pre in enumerate(lowered.pre_activations(sample)):
                assert report.pre_activation_bounds[layer].contains(pre)

    def test_degenerate_box_is_exact(self, small_network):
        point = np.array([0.3, 0.7, 0.2, 0.9])
        lowered = small_network.lowered()
        box = InputBox(point, point)
        report = interval_bounds(lowered, box)
        output = lowered.forward(point)[0]
        np.testing.assert_allclose(report.output_bounds.lower, output, atol=1e-9)
        np.testing.assert_allclose(report.output_bounds.upper, output, atol=1e-9)

    def test_infeasible_split_detected(self, small_network):
        lowered = small_network.lowered()
        point = np.array([0.3, 0.7, 0.2, 0.9])
        box = InputBox(point, point)
        pre = lowered.pre_activations(point)[0]
        # Force a neuron into the phase it certainly does not have.
        unit = int(np.argmax(np.abs(pre)))
        wrong_phase = INACTIVE if pre[unit] > 0 else ACTIVE
        splits = SplitAssignment.from_splits([ReluSplit(0, unit, wrong_phase)])
        report = interval_bounds(lowered, box, splits=splits)
        assert report.infeasible


class TestDeepPoly:
    def test_soundness_on_spec_margin(self, small_network):
        spec = robustness_problem(small_network, [0.4, 0.5, 0.6, 0.3], 0.15)
        lowered = small_network.lowered()
        report = deeppoly_bounds(lowered, spec.input_box, spec=spec.output_spec)
        for sample in spec.input_box.sample(2, count=300):
            margin = spec.output_spec.margin(lowered.forward(sample)[0])
            assert margin >= report.p_hat - 1e-7

    def test_at_least_as_tight_as_interval(self, small_network):
        spec = robustness_problem(small_network, [0.4, 0.5, 0.6, 0.3], 0.1)
        lowered = small_network.lowered()
        dp = deeppoly_bounds(lowered, spec.input_box, spec=spec.output_spec)
        ibp = interval_bounds(lowered, spec.input_box, spec=spec.output_spec)
        assert dp.p_hat >= ibp.p_hat - 1e-9
        for layer in range(lowered.num_relu_layers):
            assert np.all(dp.pre_activation_bounds[layer].lower
                          >= ibp.pre_activation_bounds[layer].lower - 1e-7)
            assert np.all(dp.pre_activation_bounds[layer].upper
                          <= ibp.pre_activation_bounds[layer].upper + 1e-7)

    def test_candidate_is_inside_box(self, small_network):
        spec = robustness_problem(small_network, [0.4, 0.5, 0.6, 0.3], 0.2)
        report = deeppoly_bounds(small_network.lowered(), spec.input_box,
                                 spec=spec.output_spec)
        assert spec.input_box.contains(report.candidate_input)

    def test_split_removes_the_neuron_from_the_unstable_set(self, small_network):
        spec = robustness_problem(small_network, [0.4, 0.5, 0.6, 0.3], 0.25)
        lowered = small_network.lowered()
        analyzer = DeepPolyAnalyzer(lowered)
        root = analyzer.analyze(spec.input_box, spec=spec.output_spec)
        unstable = root.unstable_neurons()
        assert unstable, "test requires at least one unstable neuron"
        layer, unit = unstable[0]
        for phase in (ACTIVE, INACTIVE):
            splits = SplitAssignment.from_splits([ReluSplit(layer, unit, phase)])
            child = analyzer.analyze(spec.input_box, splits=splits, spec=spec.output_spec)
            assert (layer, unit) not in child.unstable_neurons(splits)
            assert np.isfinite(child.p_hat)

    def test_split_clips_pre_activation_bounds(self, small_network):
        spec = robustness_problem(small_network, [0.4, 0.5, 0.6, 0.3], 0.25)
        lowered = small_network.lowered()
        analyzer = DeepPolyAnalyzer(lowered)
        root = analyzer.analyze(spec.input_box, spec=spec.output_spec)
        layer, unit = root.unstable_neurons()[0]
        active = analyzer.analyze(spec.input_box, spec=spec.output_spec,
                                  splits=SplitAssignment.from_splits(
                                      [ReluSplit(layer, unit, ACTIVE)]))
        inactive = analyzer.analyze(spec.input_box, spec=spec.output_spec,
                                    splits=SplitAssignment.from_splits(
                                        [ReluSplit(layer, unit, INACTIVE)]))
        assert active.pre_activation_bounds[layer].lower[unit] >= -1e-12
        assert inactive.pre_activation_bounds[layer].upper[unit] <= 1e-12

    def test_split_soundness_over_restricted_region(self, small_network):
        """The split bound must hold for inputs that satisfy the split constraints."""
        spec = robustness_problem(small_network, [0.4, 0.5, 0.6, 0.3], 0.25)
        lowered = small_network.lowered()
        analyzer = DeepPolyAnalyzer(lowered)
        root = analyzer.analyze(spec.input_box, spec=spec.output_spec)
        unstable = root.unstable_neurons()
        layer, unit = unstable[0]
        for phase in (ACTIVE, INACTIVE):
            splits = SplitAssignment.from_splits([ReluSplit(layer, unit, phase)])
            report = analyzer.analyze(spec.input_box, splits=splits, spec=spec.output_spec)
            if report.infeasible:
                continue
            for sample in spec.input_box.sample(layer + phase + 5, count=300):
                pre = lowered.pre_activations(sample)
                if not splits.satisfied_by(pre):
                    continue
                margin = spec.output_spec.margin(lowered.forward(sample)[0])
                assert margin >= report.p_hat - 1e-7

    def test_fully_split_problem_has_no_unstable_neurons_and_stays_sound(self):
        network = dense_network([3, 4, 4, 2], seed=9)
        spec = robustness_problem(network, [0.5, 0.5, 0.5], 0.3)
        lowered = network.lowered()
        analyzer = DeepPolyAnalyzer(lowered)
        splits = SplitAssignment.empty()
        report = analyzer.analyze(spec.input_box, spec=spec.output_spec)
        # Greedily fix every unstable neuron to its ACTIVE phase.
        while report.unstable_neurons(splits):
            layer, unit = report.unstable_neurons(splits)[0]
            splits = splits.with_split(ReluSplit(layer, unit, ACTIVE))
            report = analyzer.analyze(spec.input_box, splits=splits, spec=spec.output_spec)
        assert report.unstable_neurons(splits) == []
        # The bound remains sound over the inputs that satisfy the splits.
        if not report.infeasible:
            for sample in spec.input_box.sample(11, count=400):
                pre = lowered.pre_activations(sample)
                if not splits.satisfied_by(pre):
                    continue
                margin = spec.output_spec.margin(lowered.forward(sample)[0])
                assert margin >= report.p_hat - 1e-7

    def test_custom_lower_slopes_remain_sound(self, small_network):
        spec = robustness_problem(small_network, [0.4, 0.5, 0.6, 0.3], 0.2)
        lowered = small_network.lowered()
        rng = np.random.default_rng(4)
        slopes = [rng.random(size) for size in lowered.relu_layer_sizes()]
        report = deeppoly_bounds(lowered, spec.input_box, spec=spec.output_spec,
                                 lower_slopes=slopes)
        for sample in spec.input_box.sample(5, count=200):
            margin = spec.output_spec.margin(lowered.forward(sample)[0])
            assert margin >= report.p_hat - 1e-7

    def test_default_lower_slope(self):
        slopes = default_lower_slope(np.array([-1.0, -3.0]), np.array([2.0, 1.0]))
        np.testing.assert_allclose(slopes, [1.0, 0.0])

    def test_wrong_box_dimension_rejected(self, small_network):
        with pytest.raises(ValueError):
            deeppoly_bounds(small_network.lowered(), InputBox([0.0], [1.0]))


class TestAlphaCrown:
    def test_never_looser_than_deeppoly(self, small_network):
        spec = robustness_problem(small_network, [0.4, 0.5, 0.6, 0.3], 0.2)
        lowered = small_network.lowered()
        dp = deeppoly_bounds(lowered, spec.input_box, spec=spec.output_spec)
        alpha = alpha_crown_bounds(lowered, spec.input_box, spec=spec.output_spec,
                                   config=AlphaCrownConfig(iterations=5, seed=0))
        assert alpha.p_hat >= dp.p_hat - 1e-9

    def test_soundness(self, small_network):
        spec = robustness_problem(small_network, [0.4, 0.5, 0.6, 0.3], 0.2)
        lowered = small_network.lowered()
        report = alpha_crown_bounds(lowered, spec.input_box, spec=spec.output_spec,
                                    config=AlphaCrownConfig(iterations=4, seed=1))
        for sample in spec.input_box.sample(6, count=200):
            margin = spec.output_spec.margin(lowered.forward(sample)[0])
            assert margin >= report.p_hat - 1e-7

    def test_without_spec_falls_back_to_deeppoly(self, small_network):
        spec = robustness_problem(small_network, [0.4, 0.5, 0.6, 0.3], 0.1)
        lowered = small_network.lowered()
        report = AlphaCrownAnalyzer(lowered).analyze(spec.input_box)
        assert report.method == "alpha-crown"
        assert report.p_hat is None

    def test_zero_iterations_equals_deeppoly(self, small_network):
        spec = robustness_problem(small_network, [0.4, 0.5, 0.6, 0.3], 0.1)
        lowered = small_network.lowered()
        dp = deeppoly_bounds(lowered, spec.input_box, spec=spec.output_spec)
        alpha = alpha_crown_bounds(lowered, spec.input_box, spec=spec.output_spec,
                                   config=AlphaCrownConfig(iterations=0))
        assert alpha.p_hat == pytest.approx(dp.p_hat)

    def test_invalid_config_rejected(self):
        with pytest.raises(ValueError):
            AlphaCrownConfig(iterations=-1)
        with pytest.raises(ValueError):
            AlphaCrownConfig(perturbation=0.9)


class TestBoundReport:
    def test_unstable_neurons_excludes_decided(self, small_network):
        spec = robustness_problem(small_network, [0.4, 0.5, 0.6, 0.3], 0.3)
        lowered = small_network.lowered()
        report = deeppoly_bounds(lowered, spec.input_box, spec=spec.output_spec)
        unstable = report.unstable_neurons()
        assert unstable
        layer, unit = unstable[0]
        splits = SplitAssignment.from_splits([ReluSplit(layer, unit, ACTIVE)])
        remaining = report.unstable_neurons(splits)
        assert (layer, unit) not in remaining
        assert len(remaining) == len(unstable) - 1

    def test_verified_flag(self, small_network):
        spec = robustness_problem(small_network, [0.4, 0.5, 0.6, 0.3], 0.001)
        report = deeppoly_bounds(small_network.lowered(), spec.input_box,
                                 spec=spec.output_spec)
        assert report.verified == (report.p_hat > 0)


@settings(max_examples=15, deadline=None)
@given(seed=st.integers(min_value=0, max_value=5000),
       epsilon=st.floats(min_value=0.01, max_value=0.4))
def test_deeppoly_soundness_property(seed, epsilon):
    """Property: DeepPoly's p̂ is a sound lower bound of the margin for random networks."""
    rng = np.random.default_rng(seed)
    network = dense_network([3, 5, 4, 2], seed=seed)
    lowered = network.lowered()
    reference = rng.random(3)
    label = int(network.predict(reference.reshape(1, -1))[0])
    spec = local_robustness_spec(reference, epsilon, label, 2)
    report = deeppoly_bounds(lowered, spec.input_box, spec=spec.output_spec)
    samples = spec.input_box.sample(rng, count=60)
    margins = [spec.output_spec.margin(lowered.forward(s)[0]) for s in samples]
    assert min(margins) >= report.p_hat - 1e-7
