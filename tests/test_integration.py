"""Cross-verifier integration tests: all complete verifiers must agree.

These tests are the library's strongest correctness argument: for a set of
randomly generated and trained networks and a spread of perturbation radii,
the verdicts of ABONN, BaB-baseline, the αβ-CROWN-like baseline and the MILP
oracle must never contradict each other, and every reported counterexample
must be a real one.
"""

import numpy as np
import pytest

from repro import (
    AbonnConfig,
    AbonnVerifier,
    AlphaBetaCrownVerifier,
    BaBBaselineVerifier,
    Budget,
    MilpVerifier,
    dense_network,
    local_robustness_spec,
)
from repro.verifiers.result import VerificationStatus


def make_problem(seed, epsilon):
    rng = np.random.default_rng(seed)
    network = dense_network([4, 7, 6, 3], seed=seed)
    reference = rng.random(4)
    label = int(network.predict(reference.reshape(1, -1))[0])
    spec = local_robustness_spec(reference, epsilon, label, 3,
                                 name=f"random-{seed}-{epsilon}")
    return network, spec


ALL_VERIFIERS = {
    "ABONN": lambda: AbonnVerifier(),
    "ABONN-exploit": lambda: AbonnVerifier(AbonnConfig(exploration=0.0)),
    "BaB-baseline": lambda: BaBBaselineVerifier(),
    "alpha-beta-CROWN": lambda: AlphaBetaCrownVerifier(),
}


@pytest.mark.parametrize("seed", [11, 23, 37])
@pytest.mark.parametrize("epsilon", [0.05, 0.2, 0.35])
def test_all_verifiers_agree_with_milp(seed, epsilon):
    network, spec = make_problem(seed, epsilon)
    oracle = MilpVerifier().verify(network, spec)
    assert oracle.solved, "the MILP oracle must decide these tiny problems"
    for name, factory in ALL_VERIFIERS.items():
        result = factory().verify(network, spec, Budget(max_nodes=4000))
        assert result.solved, f"{name} should decide this tiny problem"
        assert result.status == oracle.status, f"{name} contradicts the MILP oracle"
        if result.status == VerificationStatus.FALSIFIED:
            assert result.check_counterexample(network, spec), \
                f"{name} reported a spurious counterexample"


@pytest.mark.parametrize("epsilon", [0.08, 0.5])
def test_all_verifiers_agree_on_trained_network(epsilon, trained_network):
    """Agreement also holds on a trained classifier, including violated problems."""
    from repro.specs import local_robustness_spec as build_spec

    network, dataset = trained_network
    image, label = dataset.sample(33)
    spec = build_spec(image.reshape(-1), epsilon, label, dataset.num_classes)
    oracle = MilpVerifier().verify(network, spec)
    if not oracle.solved:
        pytest.skip("oracle could not decide the problem")
    for name, factory in ALL_VERIFIERS.items():
        result = factory().verify(network, spec, Budget(max_nodes=4000))
        if not result.solved:
            continue  # a timeout is acceptable; a contradiction is not
        assert result.status == oracle.status, f"{name} contradicts the MILP oracle"
        if result.status == VerificationStatus.FALSIFIED:
            assert result.check_counterexample(network, spec)


def test_verdict_monotone_in_epsilon():
    """If a radius is falsified, every larger radius must also be falsified."""
    network, _ = make_problem(5, 0.1)
    reference = np.full(4, 0.5)
    label = int(network.predict(reference.reshape(1, -1))[0])
    statuses = []
    for epsilon in (0.02, 0.1, 0.3, 0.6):
        spec = local_robustness_spec(reference, epsilon, label, 3)
        result = AbonnVerifier().verify(network, spec, Budget(max_nodes=4000))
        statuses.append(result.status)
    seen_falsified = False
    for status in statuses:
        if status == VerificationStatus.FALSIFIED:
            seen_falsified = True
        if seen_falsified and status.is_conclusive:
            assert status == VerificationStatus.FALSIFIED


def test_vnnlib_roundtrip_preserves_verdict(tmp_path):
    """Saving and reloading the spec through VNN-LIB must not change the verdict."""
    from repro import load_vnnlib, save_vnnlib

    network, spec = make_problem(42, 0.25)
    direct = AbonnVerifier().verify(network, spec, Budget(max_nodes=2000))
    path = tmp_path / "problem.vnnlib"
    save_vnnlib(spec, path)
    reloaded = load_vnnlib(path)
    roundtrip = AbonnVerifier().verify(network, reloaded, Budget(max_nodes=2000))
    if direct.solved and roundtrip.solved:
        assert direct.status == roundtrip.status


def test_conv_network_end_to_end(conv_network):
    """The whole stack works for convolutional networks as well."""
    reference = np.full(36, 0.5)
    label = int(conv_network.predict(reference.reshape(1, 1, 6, 6))[0])
    spec = local_robustness_spec(reference, 0.05, label, 3)
    oracle = MilpVerifier().verify(conv_network, spec)
    result = AbonnVerifier().verify(conv_network, spec, Budget(max_nodes=2000))
    if oracle.solved and result.solved:
        assert oracle.status == result.status
