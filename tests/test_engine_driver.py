"""Tests for the shared frontier engine (``repro.engine.driver``).

Two layers of coverage:

* **contract tests** drive :class:`FrontierDriver` with a scripted
  :class:`WorkSource` and a stub AppVer, pinning the round lifecycle —
  charge points, deferred leaf-LP resolution order, starvation push-back,
  truncation — independently of any real verifier;
* **integration tests** assert verdict equality at ``K ∈ {1, 2, 8}`` for
  all three work sources (MCTS tree, FIFO/LIFO queue, best-first heap) and
  that the engine is the *only* place that dispatches batched bounds.
"""

from pathlib import Path

import pytest

from repro.bab import BaBBaselineVerifier
from repro.baselines.alphabeta_crown import AlphaBetaCrownVerifier
from repro.bounds.splits import ACTIVE, INACTIVE, SplitAssignment
from repro.core.abonn import AbonnVerifier
from repro.core.config import AbonnConfig
from repro.engine.driver import DriverVerdict, FrontierDriver, WorkSource
from repro.specs.robustness import local_robustness_spec
from repro.utils import Budget
from repro.verifiers.result import VerificationStatus

REPO_ROOT = Path(__file__).resolve().parent.parent


def problem(dataset, index, epsilon):
    image, label = dataset.sample(index)
    return local_robustness_spec(image.reshape(-1), epsilon, label,
                                 dataset.num_classes)


class StubAppver:
    """Records evaluate_batch calls and returns placeholder outcomes."""

    def __init__(self):
        self.batches = []
        self.parent_batches = []

    def evaluate_batch(self, splits_list, parents=None):
        self.batches.append(list(splits_list))
        self.parent_batches.append(list(parents) if parents is not None else None)
        return [f"outcome-{i}" for i in range(len(splits_list))]


class ScriptedSource(WorkSource):
    """A WorkSource driven by a script of (kind, payload) work items.

    ``items`` entries: ``("leaf", name)`` → fully decided leaf;
    ``("split", name)`` → splittable item with two children.
    """

    def __init__(self, items, resolve_verdict=None, starve_after=None):
        self.items = list(items)
        self.resolve_verdict = resolve_verdict
        self.starve_after = starve_after  # item names that starve (no phases)
        self.events = []
        self.resolved = []
        self.attached = []
        self.unknown = False

    def has_work(self):
        return bool(self.items)

    def next_item(self, budget, gathered, planned):
        if not self.items:
            return None
        return self.items.pop(0)

    def select_neuron(self, item):
        kind, name = item
        return None if kind == "leaf" else (0, 0)

    def child_splits(self, item, neuron, phases):
        return [SplitAssignment.empty() for _ in phases]

    def push_back(self, item, gathered):
        self.events.append(("push_back", item[1], gathered))
        if not gathered:
            return self.timeout()
        self.items.insert(0, item)
        return None

    def resolve_leaves(self, items):
        self.resolved.append([name for _, name in items])
        return self.resolve_verdict

    def attach(self, item, phase, splits, outcome):
        self.attached.append((item[1], phase, outcome))
        return None

    def timeout(self):
        return DriverVerdict(VerificationStatus.TIMEOUT)

    def drained(self):
        return DriverVerdict(VerificationStatus.VERIFIED)


class ScriptedBudget(Budget):
    """A budget whose ``exhausted()`` answers follow a script (then False).

    Lets a test exhaust the wall clock at an exact point of the attach
    loop without sleeping.
    """

    def __init__(self, script, **kwargs):
        super().__init__(**kwargs)
        self.script = list(script)

    def exhausted(self):
        if self.script:
            return bool(self.script.pop(0))
        return False


class BackpropRecordingSource(ScriptedSource):
    """ScriptedSource that records ``leaf_attached`` back-propagations."""

    def __init__(self, items):
        super().__init__(items)
        self.completed = []

    def leaf_attached(self, item, added):
        self.completed.append((item[1], added))
        return False


class TestPartialAttachBackprop:
    """Regression: ``leaf_attached`` fired on wall-clock-cut expansions.

    The hook's contract is "all of the item's children for this round are
    attached"; when ``attach_exhausted`` stops the round between two
    children, the expansion is partial and must not be back-propagated as
    complete.
    """

    def test_exhausted_expansion_is_not_reported_complete(self):
        appver = StubAppver()
        source = BackpropRecordingSource([("split", "a")])
        # run-loop check, affordable_phases check, then exhaustion between
        # the two children of "a".
        budget = ScriptedBudget([False, False, True])
        FrontierDriver(appver, frontier_size=1).run(source, budget)
        assert [name for name, _, _ in source.attached] == ["a"]
        assert source.completed == []  # partial: leaf_attached must not fire

    def test_complete_expansion_is_reported_with_all_children(self):
        appver = StubAppver()
        source = BackpropRecordingSource([("split", "a")])
        FrontierDriver(appver, frontier_size=1).run(source, Budget())
        assert [name for name, _, _ in source.attached] == ["a", "a"]
        assert source.completed == [("a", 2)]


class TestDriverContract:
    def test_rejects_invalid_frontier_size(self):
        with pytest.raises(ValueError):
            FrontierDriver(StubAppver(), frontier_size=0)

    def test_round_gathers_up_to_frontier_size_and_batches_children(self):
        appver = StubAppver()
        source = ScriptedSource([("split", "a"), ("split", "b"), ("split", "c")])
        driver = FrontierDriver(appver, frontier_size=2)
        verdict = driver.run(source, Budget())
        # Two rounds of two/one expansions; every child bounded in one call
        # per round, attached in order, then the drained verdict.
        assert verdict.status == VerificationStatus.VERIFIED
        assert [len(batch) for batch in appver.batches] == [4, 2]
        assert [name for name, _, _ in source.attached] == ["a", "a", "b", "b",
                                                            "c", "c"]

    def test_children_charge_one_node_each(self):
        appver = StubAppver()
        source = ScriptedSource([("split", "a"), ("split", "b")])
        budget = Budget()
        FrontierDriver(appver, frontier_size=2).run(source, budget)
        assert budget.nodes == 4  # two children per expansion

    def test_decided_leaves_charged_and_resolved_in_pop_order(self):
        appver = StubAppver()
        source = ScriptedSource([("leaf", "l1"), ("split", "a"), ("leaf", "l2")])
        budget = Budget()
        verdict = FrontierDriver(appver, frontier_size=8).run(source, budget)
        assert verdict.status == VerificationStatus.VERIFIED
        # One charge per leaf LP + two child charges.
        assert budget.nodes == 4
        assert source.resolved == [["l1", "l2"]]

    def test_lp_falsification_aborts_round_before_bounding(self):
        appver = StubAppver()
        falsified = DriverVerdict(VerificationStatus.FALSIFIED)
        source = ScriptedSource([("split", "a"), ("leaf", "bad")],
                                resolve_verdict=falsified)
        verdict = FrontierDriver(appver, frontier_size=8).run(source, Budget())
        assert verdict.status == VerificationStatus.FALSIFIED
        # The planned expansion of "a" must never have been bounded.
        assert appver.batches == []
        assert source.attached == []

    def test_starved_round_resolves_pending_before_timing_out(self):
        appver = StubAppver()
        source = ScriptedSource([("leaf", "l"), ("split", "a")])
        # The leaf LP charge exhausts the single node of budget, so "a"
        # starves with nothing gathered: push_back returns TIMEOUT — but the
        # charged leaf must still be resolved first.
        verdict = FrontierDriver(appver, frontier_size=2).run(
            source, Budget(max_nodes=1))
        assert ("push_back", "a", 0) in source.events
        assert source.resolved == [["l"]]
        assert verdict.status == VerificationStatus.TIMEOUT
        assert appver.batches == []

    def test_push_back_keeps_item_for_next_round(self):
        appver = StubAppver()

        class StarvingOnce(ScriptedSource):
            def __init__(self, items):
                super().__init__(items)
                self.starved_names = []

        source = StarvingOnce([("split", "a"), ("split", "b")])
        budget = Budget(max_nodes=2)  # round 1: a's 2 children; b starves
        verdict = FrontierDriver(appver, frontier_size=2).run(source, budget)
        # b was pushed back (gathered=1), the first batch holds only a's
        # children, and exhaustion then surfaces as the source's TIMEOUT.
        assert ("push_back", "b", 1) in source.events
        assert [len(batch) for batch in appver.batches] == [2]
        assert verdict.status == VerificationStatus.TIMEOUT


class TestVerdictEqualityAcrossSources:
    """Verdicts must not depend on K for any of the three work sources."""

    @pytest.mark.parametrize("index,epsilon", [(12, 0.2), (13, 0.2), (13, 0.12)])
    def test_mcts_source(self, index, epsilon, trained_network):
        network, dataset = trained_network
        spec = problem(dataset, index, epsilon)
        statuses = {
            AbonnVerifier(AbonnConfig(frontier_size=k)).verify(
                network, spec, Budget(max_nodes=2000)).status
            for k in (1, 2, 8)
        }
        assert len(statuses) == 1

    @pytest.mark.parametrize("exploration", ["bfs", "dfs"])
    def test_queue_source(self, exploration, trained_network):
        network, dataset = trained_network
        spec = problem(dataset, 13, 0.2)
        statuses = {
            BaBBaselineVerifier(exploration=exploration,
                                frontier_size=k).verify(
                network, spec, Budget(max_nodes=2000)).status
            for k in (1, 2, 8)
        }
        assert len(statuses) == 1

    def test_heap_source(self, trained_network):
        network, dataset = trained_network
        spec = problem(dataset, 13, 0.2)
        statuses = {
            AlphaBetaCrownVerifier(frontier_size=k).verify(
                network, spec, Budget(max_nodes=2000)).status
            for k in (1, 2, 8)
        }
        assert len(statuses) == 1

    def test_lp_cache_stats_exposed_by_all_sources(self, trained_network):
        network, dataset = trained_network
        spec = problem(dataset, 13, 0.12)
        for verifier in (AbonnVerifier(AbonnConfig(frontier_size=2)),
                         BaBBaselineVerifier(frontier_size=2),
                         AlphaBetaCrownVerifier(frontier_size=2)):
            result = verifier.verify(network, spec, Budget(max_nodes=300))
            stats = result.extras["lp_cache"]
            assert set(stats) == {"hits", "misses", "solves", "evictions",
                                  "hit_rate"}
            assert stats["misses"] == stats["solves"]


class TestSingleFrontierLoop:
    def test_only_the_engine_dispatches_batched_bounds(self):
        """The gather/flatten/attach loop exists exactly once: the three
        driver modules never call the batched bound entry points."""
        drivers = [
            REPO_ROOT / "src" / "repro" / "core" / "abonn.py",
            REPO_ROOT / "src" / "repro" / "bab" / "baseline.py",
            REPO_ROOT / "src" / "repro" / "baselines" / "alphabeta_crown.py",
        ]
        for path in drivers:
            text = path.read_text(encoding="utf-8")
            assert "evaluate_batch" not in text, f"{path.name} bypasses the engine"
            assert "engine" in text, f"{path.name} does not use the engine"
        engine = (REPO_ROOT / "src" / "repro" / "engine" / "driver.py").read_text(
            encoding="utf-8")
        assert engine.count("self.appver.evaluate_batch") == 1
