"""Fault injection against the verification service.

Failures are data, not crashes: a worker raising mid-round, a verifier
factory that cannot even build, a budget exhausting between siblings, or a
poisoned shared-cache entry must fail *only the job that hit it* — with a
structured :class:`~repro.service.jobs.JobError` naming the stage — while
every other job in the pool finishes solo-identical and the fingerprint's
cache bundle is quarantined so the poison cannot outlive the job it broke.
The isolation tests run on both execution transports: a failing job must
not take down a cooperative scheduling loop *or* a real worker thread.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.bounds.splits import SplitAssignment
from repro.core.abonn import AbonnVerifier
from repro.nn import dense_network
from repro.service import ServiceConfig, VerificationService
from repro.utils import Budget
from repro.verifiers.result import VerificationStatus, VerifierRun

from conftest import make_robustness_problem

BUDGET_NODES = 60


def _problem(seed, shape, reference, epsilon):
    network = dense_network(shape, seed=seed)
    return network, make_robustness_problem(network, reference, epsilon)


PROBLEM_A = _problem(1, [4, 8, 6, 3], [0.45, 0.55, 0.5, 0.4], 0.08)
PROBLEM_B = _problem(3, [3, 8, 8, 3], [0.4, 0.6, 0.5], 0.12)
#: Verified only after ~13 nodes of branching — tiny budgets exhaust it
#: mid-expansion (odd ``nodes_explored``: between the siblings of a pair).
PROBLEM_BRANCHING = _problem(1, [6, 10, 8, 4], [0.5] * 6, 0.1)


def _solo(problem, budget_nodes=BUDGET_NODES):
    network, spec = problem
    return AbonnVerifier().verify(network, spec,
                                  Budget(max_nodes=budget_nodes))


SOLO_A = _solo(PROBLEM_A)
SOLO_B = _solo(PROBLEM_B)


def _assert_identical(result, solo) -> None:
    assert result.status == solo.status
    assert result.nodes_explored == solo.nodes_explored
    assert result.tree_size == solo.tree_size
    if solo.counterexample is None:
        assert result.counterexample is None
    else:
        assert result.counterexample.tobytes() == solo.counterexample.tobytes()


class _ExplodingRun(VerifierRun):
    """A run that survives a few rounds, then raises mid-round."""

    def __init__(self, rounds_before_failure: int) -> None:
        self.remaining = rounds_before_failure

    def step(self):
        if self.remaining == 0:
            raise RuntimeError("injected mid-round failure")
        self.remaining -= 1
        return None

    def interrupt(self):
        return None


class _ExplodingVerifier:
    def __init__(self, rounds_before_failure: int) -> None:
        self.rounds_before_failure = rounds_before_failure

    def start_run(self, network, spec, budget=None):
        return _ExplodingRun(self.rounds_before_failure)


class TestRoundFailure:
    @pytest.mark.parametrize("transport", ["cooperative", "threaded"])
    def test_mid_round_exception_fails_only_that_job(self, transport):
        service = VerificationService(ServiceConfig(pool_size=2,
                                                    rounds_per_slice=1,
                                                    transport=transport))
        with service:
            bad = service.submit(
                *PROBLEM_A, budget=Budget(max_nodes=BUDGET_NODES),
                verifier_factory=lambda bundle: _ExplodingVerifier(3))
            good_same = service.submit(*PROBLEM_A,
                                       budget=Budget(max_nodes=BUDGET_NODES))
            good_other = service.submit(*PROBLEM_B,
                                        budget=Budget(max_nodes=BUDGET_NODES))
            results = {done.job_id: done for done in service.as_completed()}
        assert set(results) == {bad, good_same, good_other}

        failed = results[bad]
        assert not failed.ok
        assert failed.result is None
        assert failed.error.stage == "round"
        assert failed.error.kind == "RuntimeError"
        assert "injected" in failed.error.message
        # The failure survived three rounds first, so it was mid-flight.
        assert failed.slices >= 3

        # Every other job — same fingerprint or not — is solo-identical.
        assert results[good_same].ok
        _assert_identical(results[good_same].result, SOLO_A)
        assert results[good_other].ok
        _assert_identical(results[good_other].result, SOLO_B)

        stats = service.stats()
        assert stats["jobs_failed"] == 1
        assert stats["jobs_completed"] == 3


class TestSetupFailure:
    @pytest.mark.parametrize("transport", ["cooperative", "threaded"])
    def test_broken_factory_fails_at_setup(self, transport):
        def broken_factory(bundle):
            raise ValueError("no verifier for you")

        service = VerificationService(ServiceConfig(pool_size=1,
                                                    transport=transport))
        with service:
            bad = service.submit(*PROBLEM_A,
                                 budget=Budget(max_nodes=BUDGET_NODES),
                                 verifier_factory=broken_factory)
            good = service.submit(*PROBLEM_A,
                                  budget=Budget(max_nodes=BUDGET_NODES))
            results = {done.job_id: done for done in service.as_completed()}

        failed = results[bad]
        assert not failed.ok
        assert failed.error.stage == "setup"
        assert failed.error.kind == "ValueError"
        assert failed.error.as_dict() == {
            "kind": "ValueError",
            "message": "no verifier for you",
            "stage": "setup",
        }
        assert results[good].ok
        _assert_identical(results[good].result, SOLO_A)


class TestBudgetExhaustion:
    @pytest.mark.parametrize("max_nodes", [2, 3, 5])
    def test_exhaustion_between_siblings_matches_solo(self, max_nodes):
        """A budget dying between siblings is a TIMEOUT, not a failure.

        Tiny node budgets exhaust mid-expansion (after one sibling of a
        pair, exercising the engine's partial-attach path); the service
        must surface the same TIMEOUT the solo run produces, as a result —
        never as a JobError.
        """
        solo = _solo(PROBLEM_BRANCHING, budget_nodes=max_nodes)
        assert solo.status == VerificationStatus.TIMEOUT

        service = VerificationService(ServiceConfig(pool_size=1,
                                                    rounds_per_slice=1))
        job_id = service.submit(*PROBLEM_BRANCHING,
                                budget=Budget(max_nodes=max_nodes))
        done = next(iter(service.as_completed()))
        assert done.job_id == job_id
        assert done.ok
        assert not done.deadline_exceeded
        _assert_identical(done.result, solo)


class TestPoisonedCache:
    def _poison(self, service, problem):
        network, spec = problem
        fingerprint = service.pool.fingerprint_for(network, spec)
        bundle = service.pool.bundle(fingerprint)
        # A truthy non-report value: any consumer blows up on first use.
        root_key = SplitAssignment.empty().canonical_key()
        bundle.bound_cache.put_report(root_key, True, "poison")
        bundle.bound_cache.put_report(root_key, False, "poison")
        return fingerprint, bundle

    @pytest.mark.parametrize("transport", ["cooperative", "threaded"])
    def test_poisoned_entry_fails_job_and_quarantines_bundle(self, transport):
        service = VerificationService(ServiceConfig(pool_size=2,
                                                    transport=transport))
        with service:
            fingerprint, poisoned = self._poison(service, PROBLEM_A)

            bad = service.submit(*PROBLEM_A,
                                 budget=Budget(max_nodes=BUDGET_NODES))
            good = service.submit(*PROBLEM_B,
                                  budget=Budget(max_nodes=BUDGET_NODES))
            results = {done.job_id: done for done in service.as_completed()}

            failed = results[bad]
            assert not failed.ok
            # The root bound is computed while the run is being built, so the
            # poison surfaces at the setup stage with the consumer's exception.
            assert failed.error.stage == "setup"
            assert failed.error.kind == "AttributeError"

            # Only the job that read the poison failed; the other fingerprint
            # never saw it.
            assert results[good].ok
            _assert_identical(results[good].result, SOLO_B)

            # The poisoned bundle was quarantined: the fingerprint resolves
            # to a fresh (cold, unpoisoned) bundle now.
            fresh = service.pool.bundle(fingerprint)
            assert fresh is not poisoned
            assert fresh.bound_cache.peek_layer(0, ()) is None

            # Resubmitting the same problem succeeds against the fresh bundle.
            retry = service.submit(*PROBLEM_A,
                                   budget=Budget(max_nodes=BUDGET_NODES))
            done = next(done for done in service.as_completed()
                        if done.job_id == retry)
            assert done.ok
            _assert_identical(done.result, SOLO_A)
            assert service.stats()["jobs_failed"] == 1

    def test_quarantine_can_be_disabled(self):
        service = VerificationService(ServiceConfig(pool_size=1,
                                                    quarantine_on_error=False))
        fingerprint, poisoned = self._poison(service, PROBLEM_A)
        service.submit(*PROBLEM_A, budget=Budget(max_nodes=BUDGET_NODES))
        done = next(iter(service.as_completed()))
        assert not done.ok
        # With quarantine off the (still poisoned) bundle survives.
        assert service.pool.bundle(fingerprint) is poisoned
