"""Fault injection against the verification service.

Failures are data, not crashes: a worker raising mid-round, a verifier
factory that cannot even build, a budget exhausting between siblings, or a
poisoned shared-cache entry must fail *only the job that hit it* — with a
structured :class:`~repro.service.jobs.JobError` naming the stage — while
every other job in the pool finishes solo-identical and the fingerprint's
cache bundle is quarantined so the poison cannot outlive the job it broke.
The isolation tests run on every execution transport: a failing job must
not take down a cooperative scheduling loop, a real worker thread, *or*
the service hosting a worker process.

The kill-based tests go further than exceptions: they SIGKILL the worker
*process* mid-round (no cleanup, no goodbye — the closest cheap stand-in
for a segfault or an OOM kill) and require the supervision layer to detect
the death, restart the worker, retry the interrupted job to a
solo-identical verdict, and fail a deterministically crashing (poison) job
with ``JobError(kind="WorkerCrash")`` after ``max_attempts`` without
taking the service down.
"""

from __future__ import annotations

import functools
import os
import signal

import numpy as np
import pytest

from repro.bounds.splits import SplitAssignment
from repro.core.abonn import AbonnVerifier
from repro.nn import dense_network
from repro.service import RetryPolicy, ServiceConfig, VerificationService
from repro.utils import Budget
from repro.verifiers.result import VerificationStatus, VerifierRun

from conftest import make_robustness_problem

BUDGET_NODES = 60


def _problem(seed, shape, reference, epsilon):
    network = dense_network(shape, seed=seed)
    return network, make_robustness_problem(network, reference, epsilon)


PROBLEM_A = _problem(1, [4, 8, 6, 3], [0.45, 0.55, 0.5, 0.4], 0.08)
PROBLEM_B = _problem(3, [3, 8, 8, 3], [0.4, 0.6, 0.5], 0.12)
#: Verified only after ~13 nodes of branching — tiny budgets exhaust it
#: mid-expansion (odd ``nodes_explored``: between the siblings of a pair).
PROBLEM_BRANCHING = _problem(1, [6, 10, 8, 4], [0.5] * 6, 0.1)


def _solo(problem, budget_nodes=BUDGET_NODES):
    network, spec = problem
    return AbonnVerifier().verify(network, spec,
                                  Budget(max_nodes=budget_nodes))


SOLO_A = _solo(PROBLEM_A)
SOLO_B = _solo(PROBLEM_B)


def _assert_identical(result, solo) -> None:
    assert result.status == solo.status
    assert result.nodes_explored == solo.nodes_explored
    assert result.tree_size == solo.tree_size
    if solo.counterexample is None:
        assert result.counterexample is None
    else:
        assert result.counterexample.tobytes() == solo.counterexample.tobytes()


class _ExplodingRun(VerifierRun):
    """A run that survives a few rounds, then raises mid-round."""

    def __init__(self, rounds_before_failure: int) -> None:
        self.remaining = rounds_before_failure

    def step(self):
        if self.remaining == 0:
            raise RuntimeError("injected mid-round failure")
        self.remaining -= 1
        return None

    def interrupt(self):
        return None


class _ExplodingVerifier:
    def __init__(self, rounds_before_failure: int) -> None:
        self.rounds_before_failure = rounds_before_failure

    def start_run(self, network, spec, budget=None):
        return _ExplodingRun(self.rounds_before_failure)


class _CrashOnceRun(VerifierRun):
    """Delegates to a real run, but SIGKILLs its own process once.

    The marker file makes the crash once-per-path: the first ``step()``
    creates it and kills the process (uncatchable, mid-round); after the
    worker restarts, the retried job's fresh run sees the marker and
    delegates untouched — so the retry's trajectory is exactly a solo run.
    """

    def __init__(self, inner, marker: str) -> None:
        self.inner = inner
        self.marker = marker

    def step(self):
        if not os.path.exists(self.marker):
            with open(self.marker, "w"):
                pass
            os.kill(os.getpid(), signal.SIGKILL)
        return self.inner.step()

    def interrupt(self):
        return self.inner.interrupt()


class _CrashOnceVerifier:
    def __init__(self, bundle, marker: str) -> None:
        self.inner = AbonnVerifier(lp_cache=bundle.lp_cache,
                                   bound_cache=bundle.bound_cache)
        self.marker = marker

    def start_run(self, network, spec, budget=None):
        return _CrashOnceRun(self.inner.start_run(network, spec, budget),
                             self.marker)


def _crash_once_factory(bundle, marker: str):
    """Module-level (hence picklable) factory for the crash-once verifier."""
    return _CrashOnceVerifier(bundle, marker)


class _SigkillRun(VerifierRun):
    """A poison run: SIGKILLs its process on every step, every attempt."""

    def step(self):
        os.kill(os.getpid(), signal.SIGKILL)

    def interrupt(self):
        return None


class _SigkillVerifier:
    def __init__(self, bundle) -> None:
        pass

    def start_run(self, network, spec, budget=None):
        return _SigkillRun()


def _sigkill_factory(bundle):
    """Module-level (hence picklable) factory for the poison verifier."""
    return _SigkillVerifier(bundle)


class TestWorkerCrash:
    """Real SIGKILLs against the process transport's supervision layer."""

    def _config(self, **kwargs):
        kwargs.setdefault("transport", "process")
        kwargs.setdefault("retry", RetryPolicy(backoff_seconds=0.01))
        return ServiceConfig(**kwargs)

    def test_sigkill_mid_round_retries_and_other_jobs_match_solo(
            self, tmp_path):
        """A worker SIGKILLed mid-round: the job retries to the solo
        verdict and every unrelated job — same shard or other shards —
        completes identical to a cooperative (solo) run."""
        marker = str(tmp_path / "crashed-once")
        service = VerificationService(self._config(pool_size=2))
        with service:
            crashing = service.submit(
                *PROBLEM_A, budget=Budget(max_nodes=BUDGET_NODES),
                verifier_factory=functools.partial(_crash_once_factory,
                                                   marker=marker))
            good_same_shard = service.submit(
                *PROBLEM_A, budget=Budget(max_nodes=BUDGET_NODES))
            good_other = service.submit(
                *PROBLEM_B, budget=Budget(max_nodes=BUDGET_NODES))
            results = {done.job_id: done for done in service.as_completed()}
        assert set(results) == {crashing, good_same_shard, good_other}

        crashed = results[crashing]
        assert crashed.ok, f"retry did not recover: {crashed.error}"
        assert crashed.worker_crashes == 1
        assert crashed.attempts == 2  # the crash cost exactly one retry
        _assert_identical(crashed.result, SOLO_A)

        assert results[good_same_shard].ok
        _assert_identical(results[good_same_shard].result, SOLO_A)
        assert results[good_other].ok
        _assert_identical(results[good_other].result, SOLO_B)

        stats = service.stats()
        assert stats["worker_crashes"] == 1
        assert stats["worker_restarts"] >= 1
        assert stats["retries"] == 1
        assert stats["jobs_failed"] == 0
        assert stats["transport_downgrades"] == []

    def test_poison_job_fails_with_worker_crash_after_max_attempts(self):
        """A job that kills its worker every time is poison: after
        ``max_attempts`` crashes it fails with ``kind="WorkerCrash"`` —
        and the service, its shard and the other jobs all survive."""
        retry = RetryPolicy(max_attempts=2, backoff_seconds=0.01)
        service = VerificationService(self._config(pool_size=1, retry=retry))
        with service:
            bad = service.submit(*PROBLEM_A,
                                 budget=Budget(max_nodes=BUDGET_NODES),
                                 verifier_factory=_sigkill_factory)
            good = service.submit(*PROBLEM_B,
                                  budget=Budget(max_nodes=BUDGET_NODES))
            results = {done.job_id: done for done in service.as_completed()}

            failed = results[bad]
            assert not failed.ok
            assert failed.error.kind == "WorkerCrash"
            assert failed.error.stage == "round"
            assert failed.worker_crashes == retry.max_attempts
            assert failed.attempts == retry.max_attempts

            assert results[good].ok
            _assert_identical(results[good].result, SOLO_B)

            # The service is still alive and serving after the poison job.
            again = service.submit(*PROBLEM_A,
                                   budget=Budget(max_nodes=BUDGET_NODES))
            done = next(done for done in service.as_completed()
                        if done.job_id == again)
            assert done.ok
            _assert_identical(done.result, SOLO_A)
        stats = service.stats()
        assert stats["worker_crashes"] == retry.max_attempts
        assert stats["jobs_failed"] == 1

    def test_quarantined_bundle_never_leaks_poison_across_restart(
            self, tmp_path):
        """Quarantine survives worker restarts: a poisoned bundle is
        discarded on the parent *and* the worker side, so neither the
        restarted worker nor the parent pool ever serves the poisoned
        entries again."""
        service = VerificationService(self._config(pool_size=1))
        with service:
            network, spec = PROBLEM_A
            fingerprint = service.pool.fingerprint_for(network, spec)
            bundle = service.pool.bundle(fingerprint)
            root_key = SplitAssignment.empty().canonical_key()
            bundle.bound_cache.put_report(root_key, True, "poison")
            bundle.bound_cache.put_report(root_key, False, "poison")

            # The poisoned bundle is handed to the worker and breaks the
            # job's setup there; quarantine discards both copies.
            bad = service.submit(*PROBLEM_A,
                                 budget=Budget(max_nodes=BUDGET_NODES))
            done = next(done for done in service.as_completed()
                        if done.job_id == bad)
            assert not done.ok
            assert done.error.stage == "setup"
            assert service.pool.bundle(fingerprint) is not bundle

            # Kill the worker (crash-once job) to force a full restart...
            marker = str(tmp_path / "restart-marker")
            crasher = service.submit(
                *PROBLEM_A, budget=Budget(max_nodes=BUDGET_NODES),
                verifier_factory=functools.partial(_crash_once_factory,
                                                   marker=marker))
            done = next(done for done in service.as_completed()
                        if done.job_id == crasher)
            assert done.ok and done.worker_crashes == 1

            # ... and the post-restart worker serves the fingerprint from
            # the fresh bundle: no poisoned entry anywhere.
            clean = service.submit(*PROBLEM_A,
                                   budget=Budget(max_nodes=BUDGET_NODES))
            done = next(done for done in service.as_completed()
                        if done.job_id == clean)
            assert done.ok
            _assert_identical(done.result, SOLO_A)
            fresh = service.pool.bundle(fingerprint)
            assert fresh.bound_cache.get_report(root_key, True) is not True


class TestRoundFailure:
    @pytest.mark.parametrize("transport",
                             ["cooperative", "threaded", "process"])
    def test_mid_round_exception_fails_only_that_job(self, transport):
        service = VerificationService(ServiceConfig(pool_size=2,
                                                    rounds_per_slice=1,
                                                    transport=transport))
        with service:
            bad = service.submit(
                *PROBLEM_A, budget=Budget(max_nodes=BUDGET_NODES),
                verifier_factory=lambda bundle: _ExplodingVerifier(3))
            good_same = service.submit(*PROBLEM_A,
                                       budget=Budget(max_nodes=BUDGET_NODES))
            good_other = service.submit(*PROBLEM_B,
                                        budget=Budget(max_nodes=BUDGET_NODES))
            results = {done.job_id: done for done in service.as_completed()}
        assert set(results) == {bad, good_same, good_other}

        failed = results[bad]
        assert not failed.ok
        assert failed.result is None
        assert failed.error.stage == "round"
        assert failed.error.kind == "RuntimeError"
        assert "injected" in failed.error.message
        # The failure survived three rounds first, so it was mid-flight.
        assert failed.slices >= 3

        # Every other job — same fingerprint or not — is solo-identical.
        assert results[good_same].ok
        _assert_identical(results[good_same].result, SOLO_A)
        assert results[good_other].ok
        _assert_identical(results[good_other].result, SOLO_B)

        stats = service.stats()
        assert stats["jobs_failed"] == 1
        assert stats["jobs_completed"] == 3


class TestSetupFailure:
    @pytest.mark.parametrize("transport",
                             ["cooperative", "threaded", "process"])
    def test_broken_factory_fails_at_setup(self, transport):
        def broken_factory(bundle):
            raise ValueError("no verifier for you")

        service = VerificationService(ServiceConfig(pool_size=1,
                                                    transport=transport))
        with service:
            bad = service.submit(*PROBLEM_A,
                                 budget=Budget(max_nodes=BUDGET_NODES),
                                 verifier_factory=broken_factory)
            good = service.submit(*PROBLEM_A,
                                  budget=Budget(max_nodes=BUDGET_NODES))
            results = {done.job_id: done for done in service.as_completed()}

        failed = results[bad]
        assert not failed.ok
        assert failed.error.stage == "setup"
        assert failed.error.kind == "ValueError"
        assert failed.error.as_dict() == {
            "kind": "ValueError",
            "message": "no verifier for you",
            "stage": "setup",
        }
        assert results[good].ok
        _assert_identical(results[good].result, SOLO_A)


class TestBudgetExhaustion:
    @pytest.mark.parametrize("max_nodes", [2, 3, 5])
    def test_exhaustion_between_siblings_matches_solo(self, max_nodes):
        """A budget dying between siblings is a TIMEOUT, not a failure.

        Tiny node budgets exhaust mid-expansion (after one sibling of a
        pair, exercising the engine's partial-attach path); the service
        must surface the same TIMEOUT the solo run produces, as a result —
        never as a JobError.
        """
        solo = _solo(PROBLEM_BRANCHING, budget_nodes=max_nodes)
        assert solo.status == VerificationStatus.TIMEOUT

        service = VerificationService(ServiceConfig(pool_size=1,
                                                    rounds_per_slice=1))
        job_id = service.submit(*PROBLEM_BRANCHING,
                                budget=Budget(max_nodes=max_nodes))
        done = next(iter(service.as_completed()))
        assert done.job_id == job_id
        assert done.ok
        assert not done.deadline_exceeded
        _assert_identical(done.result, solo)


class TestPoisonedCache:
    def _poison(self, service, problem):
        network, spec = problem
        fingerprint = service.pool.fingerprint_for(network, spec)
        bundle = service.pool.bundle(fingerprint)
        # A truthy non-report value: any consumer blows up on first use.
        root_key = SplitAssignment.empty().canonical_key()
        bundle.bound_cache.put_report(root_key, True, "poison")
        bundle.bound_cache.put_report(root_key, False, "poison")
        return fingerprint, bundle

    @pytest.mark.parametrize("transport",
                             ["cooperative", "threaded", "process"])
    def test_poisoned_entry_fails_job_and_quarantines_bundle(self, transport):
        service = VerificationService(ServiceConfig(pool_size=2,
                                                    transport=transport))
        with service:
            fingerprint, poisoned = self._poison(service, PROBLEM_A)

            bad = service.submit(*PROBLEM_A,
                                 budget=Budget(max_nodes=BUDGET_NODES))
            good = service.submit(*PROBLEM_B,
                                  budget=Budget(max_nodes=BUDGET_NODES))
            results = {done.job_id: done for done in service.as_completed()}

            failed = results[bad]
            assert not failed.ok
            # The root bound is computed while the run is being built, so the
            # poison surfaces at the setup stage with the consumer's exception.
            assert failed.error.stage == "setup"
            assert failed.error.kind == "AttributeError"

            # Only the job that read the poison failed; the other fingerprint
            # never saw it.
            assert results[good].ok
            _assert_identical(results[good].result, SOLO_B)

            # The poisoned bundle was quarantined: the fingerprint resolves
            # to a fresh (cold, unpoisoned) bundle now.
            fresh = service.pool.bundle(fingerprint)
            assert fresh is not poisoned
            assert fresh.bound_cache.peek_layer(0, ()) is None

            # Resubmitting the same problem succeeds against the fresh bundle.
            retry = service.submit(*PROBLEM_A,
                                   budget=Budget(max_nodes=BUDGET_NODES))
            done = next(done for done in service.as_completed()
                        if done.job_id == retry)
            assert done.ok
            _assert_identical(done.result, SOLO_A)
            assert service.stats()["jobs_failed"] == 1

    def test_quarantine_can_be_disabled(self):
        service = VerificationService(ServiceConfig(pool_size=1,
                                                    quarantine_on_error=False))
        fingerprint, poisoned = self._poison(service, PROBLEM_A)
        service.submit(*PROBLEM_A, budget=Budget(max_nodes=BUDGET_NODES))
        done = next(iter(service.as_completed()))
        assert not done.ok
        # With quarantine off the (still poisoned) bundle survives.
        assert service.pool.bundle(fingerprint) is poisoned
