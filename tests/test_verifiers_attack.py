"""Tests for repro.verifiers.attack (FGSM / PGD falsification substrate)."""

import numpy as np
import pytest

from repro.specs.robustness import local_robustness_spec
from repro.verifiers.attack import (
    AttackConfig,
    empirical_robustness_radius,
    fgsm,
    margin_and_gradient,
    pgd_attack,
)


def problem(network, reference, epsilon):
    reference = np.asarray(reference, dtype=float)
    label = int(network.predict(reference.reshape(1, -1))[0])
    return local_robustness_spec(reference, epsilon, label, network.output_dim)


class TestMarginAndGradient:
    def test_margin_matches_spec(self, small_network):
        spec = problem(small_network, [0.4, 0.5, 0.6, 0.3], 0.1)
        point = spec.input_box.center
        margin, _ = margin_and_gradient(small_network, spec.output_spec, point)
        output = small_network.forward(point.reshape(1, -1))[0]
        assert margin == pytest.approx(spec.output_spec.margin(output))

    def test_gradient_matches_numerical(self, small_network):
        spec = problem(small_network, [0.4, 0.5, 0.6, 0.3], 0.1)
        point = spec.input_box.center + 1e-3  # avoid kinks right at the centre
        _, gradient = margin_and_gradient(small_network, spec.output_spec, point)
        numeric = np.zeros_like(point)
        eps = 1e-6
        for index in range(point.size):
            perturbed = point.copy()
            perturbed[index] += eps
            up, _ = margin_and_gradient(small_network, spec.output_spec, perturbed)
            perturbed[index] -= 2 * eps
            down, _ = margin_and_gradient(small_network, spec.output_spec, perturbed)
            numeric[index] = (up - down) / (2 * eps)
        np.testing.assert_allclose(gradient, numeric, atol=1e-4)


class TestPgdAttack:
    def test_finds_counterexample_on_fragile_problem(self, trained_network):
        network, dataset = trained_network
        image, label = dataset.sample(0)
        reference = image.reshape(-1)
        # A huge radius always contains an adversarial example for a
        # multi-class classifier that is not constant.
        spec = local_robustness_spec(reference, 0.9, label, dataset.num_classes)
        result = pgd_attack(network, spec, AttackConfig(steps=40, restarts=4, seed=0))
        assert result.is_counterexample
        assert spec.input_box.contains(result.best_input)
        assert spec.is_counterexample(network, result.best_input)

    def test_reports_best_margin_even_when_robust(self, small_network):
        spec = problem(small_network, [0.4, 0.5, 0.6, 0.3], 0.01)
        result = pgd_attack(small_network, spec, AttackConfig(steps=5, restarts=2))
        assert result.best_margin >= 0.0
        assert spec.input_box.contains(result.best_input)

    def test_result_stays_in_box(self, small_network):
        spec = problem(small_network, [0.05, 0.95, 0.5, 0.2], 0.3)
        result = pgd_attack(small_network, spec, AttackConfig(steps=15, restarts=3))
        assert spec.input_box.contains(result.best_input)

    def test_deterministic_for_seed(self, small_network):
        spec = problem(small_network, [0.4, 0.5, 0.6, 0.3], 0.2)
        a = pgd_attack(small_network, spec, AttackConfig(steps=10, restarts=2, seed=3))
        b = pgd_attack(small_network, spec, AttackConfig(steps=10, restarts=2, seed=3))
        np.testing.assert_allclose(a.best_input, b.best_input)
        assert a.best_margin == pytest.approx(b.best_margin)

    def test_invalid_config_rejected(self):
        with pytest.raises(ValueError):
            AttackConfig(steps=0)
        with pytest.raises(ValueError):
            AttackConfig(restarts=0)


class TestFgsm:
    def test_does_not_increase_margin(self, small_network):
        spec = problem(small_network, [0.4, 0.5, 0.6, 0.3], 0.2)
        start_margin, _ = margin_and_gradient(small_network, spec.output_spec,
                                              spec.input_box.center)
        result = fgsm(small_network, spec)
        assert result.best_margin <= start_margin + 1e-9

    def test_output_in_box(self, small_network):
        spec = problem(small_network, [0.4, 0.5, 0.6, 0.3], 0.2)
        assert spec.input_box.contains(fgsm(small_network, spec).best_input)


class TestEmpiricalRadius:
    def test_radius_is_consistent_with_attack(self, trained_network):
        network, dataset = trained_network
        image, label = dataset.sample(1)
        reference = image.reshape(-1)
        radius = empirical_robustness_radius(network, reference, label,
                                             dataset.num_classes, upper=0.9,
                                             tolerance=5e-3,
                                             config=AttackConfig(steps=30, restarts=3))
        assert 0.0 < radius <= 0.9
        # The attack succeeds slightly above the radius.
        spec_above = local_robustness_spec(reference, min(radius * 1.2 + 1e-3, 1.0),
                                           label, dataset.num_classes)
        attack = pgd_attack(network, spec_above, AttackConfig(steps=40, restarts=4))
        assert attack.best_margin < np.inf  # attack ran; success not strictly guaranteed

    def test_robust_network_returns_upper(self, small_network):
        # With a tiny radius cap the attack cannot flip a confident prediction.
        reference = np.array([0.4, 0.5, 0.6, 0.3])
        label = int(small_network.predict(reference.reshape(1, -1))[0])
        radius = empirical_robustness_radius(small_network, reference, label,
                                             small_network.output_dim, upper=1e-4)
        assert radius == pytest.approx(1e-4)
