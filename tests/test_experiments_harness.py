"""Tests for the experiment harness: runner, metrics, tables and figures."""

import numpy as np
import pytest

from repro.bab import BaBBaselineVerifier
from repro.core import AbonnConfig, AbonnVerifier
from repro.experiments.figures import (
    TREE_SIZE_BINS,
    bin_label,
    fig3_tree_size_histogram,
    fig4_speedup_scatter,
    fig5_hyperparameter_grid,
    fig6_violated_certified,
    render_fig3,
    render_fig4,
    render_fig5,
    render_fig6,
    scatter_points_csv_rows,
)
from repro.experiments.metrics import (
    BoxStatistics,
    average_nodes,
    average_speedup,
    average_time,
    solved_count,
    speedups,
    times_by_group,
)
from repro.experiments.runner import ground_truth_statuses, run_matrix, run_suite
from repro.experiments.suite import SuiteConfig, generate_suite
from repro.experiments.tables import (
    render_table,
    render_table1,
    render_table2,
    rows_to_csv,
    table2,
    table2_headers,
)
from repro.utils import Budget
from repro.verifiers.result import VerificationStatus


@pytest.fixture(scope="module")
def suite():
    config = SuiteConfig(families=("MNIST_L2",), instances_per_family=4, seed=1,
                         search_steps=6)
    return generate_suite(config)


@pytest.fixture(scope="module")
def matrix_results(suite):
    budget = Budget(max_nodes=80)
    return run_matrix({
        "BaB-baseline": lambda: BaBBaselineVerifier(),
        "ABONN": lambda: AbonnVerifier(),
    }, suite, budget)


class TestRunner:
    def test_run_suite_covers_all_instances(self, suite, matrix_results):
        for result in matrix_results.values():
            assert len(result) == len(suite)

    def test_run_for_lookup(self, suite, matrix_results):
        result = matrix_results["ABONN"]
        first = suite.instances[0]
        assert result.run_for(first.instance_id).instance is first
        assert result.run_for("missing") is None

    def test_budget_is_per_instance(self, suite, matrix_results):
        for result in matrix_results.values():
            for run in result.runs:
                assert run.nodes <= 90  # 80-node budget plus small leaf-LP slack

    def test_ground_truth_statuses(self, matrix_results):
        truth = ground_truth_statuses(matrix_results.values())
        assert all(status in (VerificationStatus.VERIFIED, VerificationStatus.FALSIFIED)
                   for status in truth.values())

    def test_progress_callback_invoked(self, suite):
        seen = []
        run_suite(lambda: AbonnVerifier(), suite, Budget(max_nodes=10),
                  instances=suite.instances[:2],
                  progress=lambda instance, result: seen.append(instance.instance_id))
        assert len(seen) == 2


class TestMetrics:
    def test_solved_count_and_average_time(self, matrix_results):
        runs = matrix_results["ABONN"].runs
        assert 0 <= solved_count(runs) <= len(runs)
        assert average_time(runs) >= 0.0
        assert average_nodes(runs) >= 1.0

    def test_average_time_charges_timeouts(self, matrix_results):
        runs = matrix_results["BaB-baseline"].runs
        charged = average_time(runs, timeout_seconds=100.0)
        plain = average_time(runs)
        if any(not run.solved for run in runs):
            assert charged > plain
        else:
            assert charged == pytest.approx(plain)

    def test_speedups_structure(self, matrix_results):
        points = speedups(matrix_results["ABONN"], matrix_results["BaB-baseline"])
        assert len(points) == len(matrix_results["ABONN"].runs)
        for point in points:
            assert point.speedup > 0
            assert point.node_speedup > 0
        assert average_speedup(points) > 0

    def test_empty_speedups(self, matrix_results):
        assert average_speedup([]) == 0.0

    def test_box_statistics(self):
        stats = BoxStatistics.from_values([1.0, 2.0, 3.0, 4.0, 100.0])
        assert stats.minimum == 1.0 and stats.maximum == 100.0
        assert stats.median == pytest.approx(3.0)
        assert stats.interquartile_range >= 0
        assert stats.count == 5

    def test_box_statistics_empty_rejected(self):
        with pytest.raises(ValueError):
            BoxStatistics.from_values([])

    def test_times_by_group(self, matrix_results, suite):
        runs = matrix_results["ABONN"].runs
        ids = [suite.instances[0].instance_id]
        times = times_by_group(runs, ids)
        assert len(times) == 1


class TestTables:
    def test_render_table_generic(self):
        text = render_table(["a", "b"], [[1, 2], [3, 4]], title="T")
        assert "T" in text and "a" in text and "4" in text

    def test_rows_to_csv(self):
        text = rows_to_csv(["x", "y"], [[1, 2]])
        assert "x,y" in text and "1,2" in text

    def test_table1_render(self, suite):
        text = render_table1(suite)
        assert "MNIST_L2" in text and "#Neurons" in text

    def test_table2_rows_and_headers(self, suite, matrix_results):
        headers = table2_headers(matrix_results)
        rows = table2(suite, matrix_results, timeout_seconds=10.0)
        assert headers[0] == "Model"
        assert len(headers) == 1 + 2 * len(matrix_results)
        assert len(rows) == len(suite.families)
        text = render_table2(suite, matrix_results)
        assert "ABONN Solved" in text


class TestFigures:
    def test_fig3_histogram_counts_every_instance(self, suite, matrix_results):
        histogram = fig3_tree_size_histogram(matrix_results["BaB-baseline"])
        total = sum(sum(counts.values()) for counts in histogram.values())
        assert total == len(suite)
        assert "MNIST_L2" in histogram
        text = render_fig3(histogram)
        assert bin_label(TREE_SIZE_BINS[0]) in text

    def test_fig4_scatter(self, matrix_results):
        scatter = fig4_speedup_scatter(matrix_results["ABONN"],
                                       matrix_results["BaB-baseline"])
        assert "MNIST_L2" in scatter
        text = render_fig4(scatter)
        assert "mean speedup" in text
        rows = scatter_points_csv_rows(scatter)
        assert len(rows) == len(matrix_results["ABONN"].runs)

    def test_fig5_grid(self, suite, matrix_results):
        grid = fig5_hyperparameter_grid(
            suite, matrix_results["BaB-baseline"],
            make_abonn=lambda lam, c: AbonnVerifier(AbonnConfig(lam=lam, exploration=c)),
            budget=Budget(max_nodes=30),
            lambdas=(0.0, 0.5), explorations=(0.0, 0.2),
            instances=suite.instances[:2])
        assert len(grid.cells) == 4
        assert grid.matrix("solved").shape == (2, 2)
        best = grid.best_cell("average_speedup")
        assert best in grid.cells
        text = render_fig5(grid)
        assert "Fig. 5a" in text and "Fig. 5c" in text

    def test_fig5_missing_cell_rejected(self, suite, matrix_results):
        grid = fig5_hyperparameter_grid(
            suite, matrix_results["BaB-baseline"],
            make_abonn=lambda lam, c: AbonnVerifier(AbonnConfig(lam=lam, exploration=c)),
            budget=Budget(max_nodes=10),
            lambdas=(0.5,), explorations=(0.2,),
            instances=suite.instances[:1])
        with pytest.raises(KeyError):
            grid.cell(0.9, 0.9)

    def test_fig6_boxes(self, suite, matrix_results):
        boxes = fig6_violated_certified(suite, matrix_results, timeout_seconds=10.0)
        # two verifiers x two groups x one family
        assert len(boxes) == 4
        text = render_fig6(boxes)
        assert "violated" in text and "certified" in text
