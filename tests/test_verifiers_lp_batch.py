"""Tests for batched + cached leaf-LP resolution (``solve_leaf_lp_batch``)."""

import sys
from pathlib import Path

import numpy as np
import pytest

from repro.bounds.cache import LpCache
from repro.bounds.splits import SplitAssignment
from repro.nn import dense_network
from repro.specs.robustness import local_robustness_spec
from repro.verifiers.appver import ApproximateVerifier
from repro.verifiers.milp import (
    RowOptimum,
    _encode_problem,
    _objective_vector,
    _solve,
    solve_leaf_lp,
    solve_leaf_lp_batch,
)

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "benchmarks"))

# The sibling-heavy decided-leaf generator is shared with the CI-gated
# benchmark so the acceptance workload and the tested workload never drift.
from bench_batching import _decided_leaf_workload  # noqa: E402


def _problem(network, reference, epsilon):
    reference = np.asarray(reference, dtype=float)
    label = int(network.predict(reference.reshape(1, -1))[0])
    return local_robustness_spec(reference, epsilon, label, network.output_dim)


def _reference_leaf_lp(lowered, box, spec, splits, report):
    """The pre-batching leaf LP, built through the *independent*
    ``_encode_problem`` encoding (the MILP verifier's row construction) —
    guards the new per-layer row blocks against an encoding bug that would
    fool a batch-vs-wrapper self-comparison."""
    encoding, builder, var_lower, var_upper, _ = _encode_problem(
        lowered, box, report, splits, with_binaries=False)
    constraints = builder.to_constraint()
    integrality = np.zeros(encoding.num_variables)
    best = RowOptimum(float("inf"), None, feasible=False)
    any_feasible = False
    for row_index in range(spec.num_constraints):
        objective, constant = _objective_vector(lowered,
                                                spec.coefficients[row_index],
                                                encoding)
        constant += float(spec.offsets[row_index])
        optimum = _solve(objective, constant, constraints, var_lower, var_upper,
                         integrality, encoding, None)
        if not optimum.feasible:
            continue
        any_feasible = True
        if optimum.value < best.value or best.minimizer is None:
            best = optimum
    if not any_feasible:
        return RowOptimum(float("inf"), None, feasible=False)
    return best


@pytest.fixture(scope="module")
def lp_workload():
    network = dense_network([3, 6, 5, 3], seed=4)
    spec = _problem(network, [0.5, 0.4, 0.6], 0.25)
    lowered, leaves = _decided_leaf_workload(network, spec, clusters=3, seed=3)
    assert len(leaves) >= 4, "workload generator produced too few decided leaves"
    return lowered, spec, leaves


class TestBatchedLeafLp:
    def test_batch_matches_independent_reference_encoding(self, lp_workload):
        """The batched row blocks must reproduce the ``_encode_problem``
        encoding exactly — a genuinely independent construction, since
        ``solve_leaf_lp`` itself now delegates to the batch path."""
        lowered, spec, leaves = lp_workload
        reference = [_reference_leaf_lp(lowered, spec.input_box,
                                        spec.output_spec, splits, report)
                     for splits, report in leaves]
        batched = solve_leaf_lp_batch(lowered, spec.input_box, spec.output_spec,
                                      leaves)
        for a, b in zip(reference, batched):
            assert a.feasible == b.feasible
            if a.feasible:
                assert a.value == pytest.approx(b.value, abs=1e-9)
                if a.minimizer is not None:
                    np.testing.assert_allclose(a.minimizer, b.minimizer,
                                               atol=1e-9)

    def test_batch_matches_one_at_a_time(self, lp_workload):
        lowered, spec, leaves = lp_workload
        single = [solve_leaf_lp(lowered, spec.input_box, spec.output_spec,
                                splits, report) for splits, report in leaves]
        batched = solve_leaf_lp_batch(lowered, spec.input_box, spec.output_spec,
                                      leaves)
        assert len(batched) == len(single)
        for a, b in zip(single, batched):
            assert a.feasible == b.feasible
            if a.feasible:
                assert a.value == pytest.approx(b.value, abs=1e-9)
                if a.minimizer is None:
                    assert b.minimizer is None
                else:
                    np.testing.assert_allclose(a.minimizer, b.minimizer,
                                               atol=1e-9)

    def test_empty_batch(self, lp_workload):
        lowered, spec, _ = lp_workload
        assert solve_leaf_lp_batch(lowered, spec.input_box, spec.output_spec,
                                   []) == []

    def test_rejects_undecided_leaves(self, lp_workload):
        lowered, spec, leaves = lp_workload
        network = dense_network([3, 6, 5, 3], seed=4)
        root_report = ApproximateVerifier(network, spec,
                                          use_cache=False).evaluate().report
        assert root_report.unstable_neurons(), "root must have unstable neurons"
        with pytest.raises(ValueError):
            solve_leaf_lp_batch(lowered, spec.input_box, spec.output_spec,
                                [(SplitAssignment.empty(), root_report)])


class TestLpCache:
    def test_hit_returns_identical_row_optimum(self, lp_workload):
        lowered, spec, leaves = lp_workload
        cache = LpCache()
        cold = solve_leaf_lp_batch(lowered, spec.input_box, spec.output_spec,
                                   leaves, cache=cache)
        assert cache.stats.hits == 0
        assert cache.stats.misses == len(leaves)
        assert cache.stats.solves == len(leaves)
        warm = solve_leaf_lp_batch(lowered, spec.input_box, spec.output_spec,
                                   leaves, cache=cache)
        assert cache.stats.hits == len(leaves)
        assert cache.stats.solves == len(leaves)  # nothing re-solved
        for a, b in zip(cold, warm):
            assert a is b  # the identical object, not a recomputation

    def test_duplicates_within_one_batch_solve_once(self, lp_workload):
        lowered, spec, leaves = lp_workload
        cache = LpCache()
        doubled = list(leaves) + list(leaves)
        results = solve_leaf_lp_batch(lowered, spec.input_box, spec.output_spec,
                                      doubled, cache=cache)
        assert cache.stats.solves == len(leaves)
        assert cache.stats.hits == len(leaves)
        for first, second in zip(results[:len(leaves)], results[len(leaves):]):
            assert first is second

    def test_single_leaf_path_uses_cache(self, lp_workload):
        lowered, spec, leaves = lp_workload
        splits, report = leaves[0]
        cache = LpCache()
        first = solve_leaf_lp(lowered, spec.input_box, spec.output_spec,
                              splits, report, cache=cache)
        second = solve_leaf_lp(lowered, spec.input_box, spec.output_spec,
                               splits, report, cache=cache)
        assert first is second
        assert cache.stats.solves == 1

    def test_eviction_respects_lru_order(self):
        cache = LpCache(max_entries=2)
        a = RowOptimum(1.0, None, feasible=True)
        b = RowOptimum(2.0, None, feasible=True)
        c = RowOptimum(3.0, None, feasible=True)
        cache.put(("a",), a)
        cache.put(("b",), b)
        assert cache.get(("a",)) is a  # refreshes "a" to most-recent
        cache.put(("c",), c)           # evicts "b", the least recent
        assert cache.stats.evictions == 1
        assert cache.get(("b",)) is None
        assert cache.get(("a",)) is a
        assert cache.get(("c",)) is c
        assert len(cache) == 2

    def test_rejects_invalid_capacity(self):
        with pytest.raises(ValueError):
            LpCache(max_entries=0)

    def test_hit_rate(self):
        cache = LpCache()
        assert cache.stats.hit_rate == 0.0
        cache.put(("k",), RowOptimum(0.0, None, feasible=True))
        cache.get(("k",))
        cache.get(("missing",))
        assert cache.stats.hit_rate == pytest.approx(0.5)
