"""Transport-specific behaviour: threaded lifecycle, asyncio front-end.

The conformance suite (``test_service_scheduler.py``) pins the properties
every backend shares; this module pins what is *particular* to each — the
threaded transport's lifecycle (autonomous workers, draining shutdown,
completion listeners, fault isolation across real threads) and the asyncio
front-end's contracts (bounded in-flight submissions that block the
producer, one-loop binding, forced threaded transport underneath).
"""

from __future__ import annotations

import asyncio
import threading

import pytest

from repro.core.abonn import AbonnVerifier
from repro.nn import dense_network
from repro.service import (
    AsyncVerificationService,
    JobRequest,
    ServiceConfig,
    VerificationService,
)
from repro.utils import Budget
from repro.verifiers.result import (
    VerificationResult,
    VerificationStatus,
    VerifierRun,
)

from conftest import make_robustness_problem

BUDGET_NODES = 60


def _problem(seed, shape, reference, epsilon):
    network = dense_network(shape, seed=seed)
    return network, make_robustness_problem(network, reference, epsilon)


PROBLEM_A = _problem(1, [4, 8, 6, 3], [0.45, 0.55, 0.5, 0.4], 0.08)
PROBLEM_B = _problem(3, [3, 8, 8, 3], [0.4, 0.6, 0.5], 0.12)

SOLO_A = AbonnVerifier().verify(*PROBLEM_A, Budget(max_nodes=BUDGET_NODES))
SOLO_B = AbonnVerifier().verify(*PROBLEM_B, Budget(max_nodes=BUDGET_NODES))


def _assert_identical(result, solo) -> None:
    assert result.status == solo.status
    assert result.nodes_explored == solo.nodes_explored
    assert result.tree_size == solo.tree_size


class _GatedRun(VerifierRun):
    """A run that blocks its worker thread until the test opens the gate."""

    def __init__(self, gate: threading.Event) -> None:
        self.gate = gate

    def step(self):
        assert self.gate.wait(timeout=10.0), "test gate never opened"
        return VerificationResult(status=VerificationStatus.VERIFIED,
                                  verifier="gated", elapsed_seconds=0.0)

    def interrupt(self):
        return None


class _GatedVerifier:
    def __init__(self, gate: threading.Event) -> None:
        self.gate = gate

    def start_run(self, network, spec, budget=None):
        return _GatedRun(self.gate)


class _ExplodingRun(VerifierRun):
    def __init__(self) -> None:
        self.remaining = 2

    def step(self):
        if self.remaining == 0:
            raise RuntimeError("injected thread failure")
        self.remaining -= 1
        return None

    def interrupt(self):
        return None


class TestThreadedLifecycle:
    def test_step_raises_on_threaded_transport(self):
        with VerificationService(ServiceConfig(transport="threaded")) as svc:
            with pytest.raises(ValueError, match="autonomously"):
                svc.step()

    def test_shutdown_drains_pending_jobs(self):
        """shutdown(wait=True) finishes accepted jobs instead of dropping them."""
        service = VerificationService(ServiceConfig(transport="threaded",
                                                    pool_size=2))
        ids = [service.submit(*PROBLEM_A, budget=Budget(max_nodes=BUDGET_NODES))
               for _ in range(4)]
        service.shutdown(wait=True)
        for job_id in ids:
            done = service.result(job_id)
            assert done is not None and done.ok
            _assert_identical(done.result, SOLO_A)

    def test_shutdown_is_idempotent_and_rejects_submissions(self):
        service = VerificationService(ServiceConfig(transport="threaded"))
        service.submit(*PROBLEM_A, budget=Budget(max_nodes=BUDGET_NODES))
        service.shutdown(wait=True)
        service.shutdown(wait=True)  # second call is a no-op
        with pytest.raises(ValueError, match="shut down"):
            service.submit(*PROBLEM_A, budget=Budget(max_nodes=BUDGET_NODES))

    def test_completion_listeners_fire_once_per_job(self):
        seen = []
        lock = threading.Lock()
        service = VerificationService(ServiceConfig(transport="threaded",
                                                    pool_size=2))
        service.add_completion_listener(
            lambda done: (lock.acquire(), seen.append(done.job_id),
                          lock.release()))
        with service:
            ids = {service.submit(*problem,
                                  budget=Budget(max_nodes=BUDGET_NODES))
                   for problem in (PROBLEM_A, PROBLEM_B, PROBLEM_A)}
            service.run_until_complete()
        assert sorted(seen) == sorted(ids)

    def test_thread_failure_is_isolated_to_its_job(self):
        """A job raising on a worker thread fails alone; the thread survives."""
        with VerificationService(ServiceConfig(transport="threaded",
                                               pool_size=1,
                                               rounds_per_slice=1)) as service:
            bad = service.submit(
                *PROBLEM_A, budget=Budget(max_nodes=BUDGET_NODES),
                verifier_factory=lambda bundle: _ExplodingVerifierFactory())
            good = service.submit(*PROBLEM_A,
                                  budget=Budget(max_nodes=BUDGET_NODES))
            results = {done.job_id: done for done in service.as_completed()}
        assert not results[bad].ok
        assert results[bad].error.stage == "round"
        assert results[good].ok
        _assert_identical(results[good].result, SOLO_A)
        assert service.stats()["jobs_failed"] == 1

    def test_stats_report_threaded_transport(self):
        with VerificationService(ServiceConfig(transport="threaded")) as svc:
            assert svc.stats()["transport"] == "threaded"
            assert svc.threaded

    def test_workers_run_off_the_calling_thread(self):
        """The submitting thread never executes a verification round."""
        threads = set()
        lock = threading.Lock()

        class _RecordingRun(VerifierRun):
            def step(self):
                with lock:
                    threads.add(threading.current_thread().name)
                return VerificationResult(status=VerificationStatus.VERIFIED,
                                          verifier="recording",
                                          elapsed_seconds=0.0)

            def interrupt(self):
                return None

        class _RecordingVerifier:
            def start_run(self, network, spec, budget=None):
                return _RecordingRun()

        with VerificationService(
                ServiceConfig(transport="threaded"),
                verifier_factory=lambda bundle: _RecordingVerifier()) as svc:
            svc.submit(*PROBLEM_A, budget=Budget(max_nodes=BUDGET_NODES))
            svc.run_until_complete()
        assert threads
        assert threading.current_thread().name not in threads
        assert all(name.startswith("verification-worker-")
                   for name in threads)


class _ExplodingVerifierFactory:
    def start_run(self, network, spec, budget=None):
        return _ExplodingRun()


class TestAsyncFrontEnd:
    def test_transport_is_forced_to_threaded(self):
        svc = AsyncVerificationService(ServiceConfig(transport="cooperative"))
        assert svc.service.threaded
        # Never bound to a loop, never started threads — nothing to close.

    def test_invalid_max_pending_rejected(self):
        with pytest.raises(ValueError, match="max_pending"):
            AsyncVerificationService(max_pending=0)

    def test_backpressure_blocks_the_producer(self):
        """The (max_pending+1)-th submit awaits until a completion frees a slot."""
        gate = threading.Event()

        async def scenario():
            config = ServiceConfig(pool_size=1, rounds_per_slice=1)
            async with AsyncVerificationService(
                    config,
                    verifier_factory=lambda bundle: _GatedVerifier(gate),
                    max_pending=2) as svc:
                first = await svc.submit(
                    *PROBLEM_A, budget=Budget(max_nodes=BUDGET_NODES))
                second = await svc.submit(
                    *PROBLEM_A, budget=Budget(max_nodes=BUDGET_NODES))
                assert svc.in_flight == 2
                third = asyncio.ensure_future(svc.submit(
                    *PROBLEM_A, budget=Budget(max_nodes=BUDGET_NODES)))
                await asyncio.sleep(0.1)
                # Both slots are held by gated jobs: the producer is parked.
                assert not third.done()
                gate.set()
                third_id = await asyncio.wait_for(third, timeout=10.0)
                for job_id in (first, second, third_id):
                    done = await svc.result(job_id)
                    assert done.ok
                    assert done.result.status == VerificationStatus.VERIFIED

        asyncio.run(scenario())

    def test_as_completed_yields_every_submission(self):
        async def scenario():
            async with AsyncVerificationService(
                    ServiceConfig(pool_size=2)) as svc:
                ids = {await svc.submit(*problem,
                                        budget=Budget(max_nodes=BUDGET_NODES))
                       for problem in (PROBLEM_A, PROBLEM_B, PROBLEM_A)}
                seen = set()
                async for done in svc.as_completed():
                    assert done.ok
                    seen.add(done.job_id)
                assert seen == ids

        asyncio.run(scenario())

    def test_run_returns_submission_order(self):
        async def scenario():
            async with AsyncVerificationService(
                    ServiceConfig(pool_size=2)) as svc:
                requests = [JobRequest(network=network, spec=spec,
                                       budget=Budget(max_nodes=BUDGET_NODES))
                            for network, spec in (PROBLEM_B, PROBLEM_A,
                                                  PROBLEM_B)]
                results = await svc.run(requests)
                seqs = [int(done.job_id.split("-")[1]) for done in results]
                assert seqs == sorted(seqs)
                _assert_identical(results[0].result, SOLO_B)
                _assert_identical(results[1].result, SOLO_A)
                _assert_identical(results[2].result, SOLO_B)

        asyncio.run(scenario())

    def test_result_raises_for_unknown_job(self):
        async def scenario():
            async with AsyncVerificationService() as svc:
                with pytest.raises(KeyError):
                    await svc.result("job-404")

        asyncio.run(scenario())

    def test_refuses_use_from_a_second_loop(self):
        svc = AsyncVerificationService()

        async def first_use():
            await svc.submit(*PROBLEM_A, budget=Budget(max_nodes=BUDGET_NODES))
            async for _ in svc.as_completed():
                pass

        async def second_use():
            with pytest.raises(RuntimeError, match="different"):
                await svc.submit(*PROBLEM_A,
                                 budget=Budget(max_nodes=BUDGET_NODES))
            await svc.close()

        asyncio.run(first_use())
        asyncio.run(second_use())

    def test_stats_expose_front_end_gauges(self):
        async def scenario():
            async with AsyncVerificationService(max_pending=7) as svc:
                await svc.submit(*PROBLEM_A,
                                 budget=Budget(max_nodes=BUDGET_NODES))
                stats = svc.stats()
                assert stats["transport"] == "threaded"
                assert stats["async_max_pending"] == 7
                assert 0 <= stats["async_in_flight"] <= 1

        asyncio.run(scenario())
