"""Property-based equivalence suite for the incremental bound path.

The rank-1 parent-pass reuse of :class:`~repro.bounds.deeppoly.DeepPolyAnalyzer`
must be *numerically identical* to full recomputation: for random networks,
boxes and split chains, a child analysed with ``parent=`` (and a cache
warmed by the parent's own analysis) must reproduce the from-scratch
sequential analysis bit for bit — every pre-activation bound, the output
bounds, the spec-row lower bounds, ``p̂``, the counterexample corner and
the ``infeasible`` flag.  The batched path with ``parents=`` must agree
with the sequential dense path to the established sub-1e-9 GEMM noise
while keeping the verdict-grade fields (flags, corners) exact.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.bounds.cache import BoundCache
from repro.bounds.deeppoly import DeepPolyAnalyzer
from repro.bounds.splits import (
    ACTIVE,
    INACTIVE,
    ReluSplit,
    SplitAssignment,
    insert_into_canonical,
    prefix_counts,
    split_delta,
)
from repro.nn.layers import Dense, Flatten, ReLU
from repro.nn.network import Network
from repro.specs.robustness import local_robustness_spec

TOLERANCE = 1e-9


def _random_problem(seed: int, depth: int, width: int, epsilon: float):
    """A random dense network plus a robustness spec around a random point."""
    rng = np.random.default_rng(seed)
    input_dim = int(rng.integers(3, 6))
    num_classes = int(rng.integers(2, 5))
    layers = [Flatten()]
    previous = input_dim
    for index in range(depth):
        layers.append(Dense(previous, width, seed=seed * 31 + index))
        layers.append(ReLU())
        previous = width
    layers.append(Dense(previous, num_classes, seed=seed * 31 + depth))
    network = Network(layers, (input_dim,), name=f"rand-{seed}")
    reference = rng.uniform(0.2, 0.8, size=input_dim)
    label = int(network.predict(reference.reshape(1, -1))[0])
    spec = local_robustness_spec(reference, epsilon, label, num_classes)
    return network.lowered(), spec


def _random_chain(rng, analyzer, box, spec, cache, length: int):
    """A parent chain of random splits, analysed as the search would.

    Returns ``(parent, child, delta)`` where the child extends the parent
    by one random split on a neuron of the parent's report (unstable where
    possible, any undecided neuron otherwise — exercising the stable-split
    and infeasible corners too).
    """
    parent = SplitAssignment.empty()
    report = analyzer.analyze(box, parent, spec=spec, cache=cache)
    for _ in range(length + 1):
        candidates = report.unstable_neurons(parent)
        if not candidates or rng.random() < 0.25:
            # Occasionally split an already-stable neuron: the clip then
            # either does nothing or empties the region (infeasible corner).
            undecided = [(layer, unit)
                         for layer, bounds in
                         enumerate(report.pre_activation_bounds)
                         for unit in range(bounds.size)
                         if not parent.is_decided(layer, unit)]
            assume(undecided)
            layer, unit = undecided[int(rng.integers(len(undecided)))]
        else:
            layer, unit = candidates[int(rng.integers(len(candidates)))]
        phase = ACTIVE if rng.random() < 0.5 else INACTIVE
        child = parent.with_split(ReluSplit(layer, unit, phase))
        delta = ReluSplit(layer, unit, phase)
        if len(child) == length + 1:
            return parent, child, delta
        parent = child
        report = analyzer.analyze(box, parent, spec=spec, cache=cache)
    raise AssertionError("unreachable: the chain always reaches length + 1")


def _assert_reports_bitwise(incremental, dense):
    assert incremental.infeasible == dense.infeasible
    assert incremental.p_hat == dense.p_hat
    for got, want in zip(incremental.pre_activation_bounds,
                         dense.pre_activation_bounds):
        np.testing.assert_array_equal(got.lower, want.lower)
        np.testing.assert_array_equal(got.upper, want.upper)
    np.testing.assert_array_equal(incremental.output_bounds.lower,
                                  dense.output_bounds.lower)
    np.testing.assert_array_equal(incremental.output_bounds.upper,
                                  dense.output_bounds.upper)
    if dense.spec_row_lower is None:
        assert incremental.spec_row_lower is None
    else:
        np.testing.assert_array_equal(incremental.spec_row_lower,
                                      dense.spec_row_lower)
    if dense.candidate_input is None:
        assert incremental.candidate_input is None
    else:
        np.testing.assert_array_equal(incremental.candidate_input,
                                      dense.candidate_input)


class TestSequentialBitwiseEquivalence:
    @settings(max_examples=25, deadline=None)
    @given(seed=st.integers(0, 10_000),
           depth=st.integers(1, 4),
           width=st.integers(2, 6),
           chain=st.integers(0, 4),
           epsilon=st.floats(0.01, 0.4))
    def test_incremental_child_equals_full_recompute(self, seed, depth, width,
                                                     chain, epsilon):
        """Incremental child bounds == from-scratch bounds, bit for bit."""
        network, spec = _random_problem(seed, depth, width, epsilon)
        analyzer = DeepPolyAnalyzer(network)
        box = spec.input_box
        cache = BoundCache()
        rng = np.random.default_rng(seed + 1)
        parent, child, delta = _random_chain(rng, analyzer, box,
                                             spec.output_spec, cache, chain)
        incremental = analyzer.analyze(box, child, spec=spec.output_spec,
                                       cache=cache, parent=parent)
        dense = analyzer.analyze(box, child, spec=spec.output_spec)
        _assert_reports_bitwise(incremental, dense)

    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(0, 10_000), chain=st.integers(0, 3))
    def test_infeasible_corner_matches(self, seed, chain):
        """Splitting a provably-stable neuron against its phase must yield
        an identical infeasible flag (and swapped bounds) either way."""
        network, spec = _random_problem(seed, 2, 4, 0.05)
        analyzer = DeepPolyAnalyzer(network)
        box = spec.input_box
        cache = BoundCache()
        parent = SplitAssignment.empty()
        report = analyzer.analyze(box, parent, spec=spec.output_spec,
                                  cache=cache)
        stable = [(layer, unit, bounds.lower[unit])
                  for layer, bounds in enumerate(report.pre_activation_bounds)
                  for unit in range(bounds.size)
                  if bounds.lower[unit] > 1e-6]
        assume(stable)
        layer, unit, _ = stable[0]
        child = parent.with_split(ReluSplit(layer, unit, INACTIVE))
        incremental = analyzer.analyze(box, child, spec=spec.output_spec,
                                       cache=cache, parent=parent)
        dense = analyzer.analyze(box, child, spec=spec.output_spec)
        assert incremental.infeasible and dense.infeasible
        assert incremental.p_hat == dense.p_hat == float("inf")
        _assert_reports_bitwise(incremental, dense)


class TestBatchedEquivalence:
    @settings(max_examples=15, deadline=None)
    @given(seed=st.integers(0, 10_000), depth=st.integers(1, 3),
           width=st.integers(2, 5))
    def test_batched_incremental_matches_sequential(self, seed, depth, width):
        """`analyze_batch(parents=...)` == per-child `analyze` to 1e-9, with
        the verdict-grade fields (flags, corners) exactly equal."""
        network, spec = _random_problem(seed, depth, width, 0.1)
        analyzer = DeepPolyAnalyzer(network)
        box = spec.input_box
        cache = BoundCache()
        rng = np.random.default_rng(seed + 2)
        parent = SplitAssignment.empty()
        report = analyzer.analyze(box, parent, spec=spec.output_spec,
                                  cache=cache)
        unstable = report.unstable_neurons(parent)
        assume(unstable)
        children, parents = [], []
        for layer, unit in unstable[:4]:
            for phase in (ACTIVE, INACTIVE):
                children.append(parent.with_split(ReluSplit(layer, unit, phase)))
                parents.append(parent)
        batched = analyzer.analyze_batch(box, children, spec=spec.output_spec,
                                         cache=cache, parents=parents)
        for child, got in zip(children, batched):
            want = analyzer.analyze(box, child, spec=spec.output_spec)
            assert got.infeasible == want.infeasible
            if want.p_hat == float("inf"):
                assert got.p_hat == float("inf")
            else:
                assert got.p_hat == pytest.approx(want.p_hat, abs=TOLERANCE)
            for got_bounds, want_bounds in zip(got.pre_activation_bounds,
                                               want.pre_activation_bounds):
                np.testing.assert_allclose(got_bounds.lower, want_bounds.lower,
                                           atol=TOLERANCE)
                np.testing.assert_allclose(got_bounds.upper, want_bounds.upper,
                                           atol=TOLERANCE)

    def test_corrected_entry_shares_parent_forms(self, small_network):
        """The rank-1 correction must inherit the parent's accumulated
        input-level forms by reference (they do not depend on the clip)."""
        reference = np.array([0.45, 0.55, 0.5, 0.4])
        label = int(small_network.predict(reference.reshape(1, -1))[0])
        spec = local_robustness_spec(reference, 0.12, label, 3)
        lowered = small_network.lowered()
        analyzer = DeepPolyAnalyzer(lowered)
        cache = BoundCache()
        parent = SplitAssignment.empty()
        report = analyzer.analyze(spec.input_box, parent,
                                  spec=spec.output_spec, cache=cache)
        unstable = report.unstable_neurons()
        assert unstable
        layer, unit = unstable[0]
        child = parent.with_split(ReluSplit(layer, unit, ACTIVE))
        analyzer.analyze(spec.input_box, child, spec=spec.output_spec,
                         cache=cache, parent=parent)
        assert cache.stats.delta_corrections == 1
        parent_entry = cache.peek_layer(layer, parent.prefix_key(layer))
        child_entry = cache.peek_layer(layer, child.prefix_key(layer))
        assert child_entry is not None and parent_entry is not None
        assert child_entry.forms is parent_entry.forms
        # The forms concretise to the parent's pre-clip bounds.
        pre_clip = parent_entry.forms.concretize(spec.input_box)
        clipped = np.maximum(pre_clip.lower[unit], 0.0)
        assert child_entry.lower[unit] == clipped


class TestKeyDerivation:
    @settings(max_examples=50, deadline=None)
    @given(seed=st.integers(0, 100_000), size=st.integers(0, 10))
    def test_insert_into_canonical_matches_with_split(self, seed, size):
        rng = np.random.default_rng(seed)
        parent = SplitAssignment.empty()
        for _ in range(size):
            layer = int(rng.integers(0, 4))
            unit = int(rng.integers(0, 6))
            if parent.is_decided(layer, unit):
                continue
            phase = ACTIVE if rng.random() < 0.5 else INACTIVE
            parent = parent.with_split(ReluSplit(layer, unit, phase))
        free = [(layer, unit) for layer in range(4) for unit in range(6)
                if not parent.is_decided(layer, unit)]
        layer, unit = free[int(rng.integers(len(free)))]
        delta = ReluSplit(layer, unit, INACTIVE)
        child = parent.with_split(delta)
        assert insert_into_canonical(parent.canonical_key(), delta) \
            == child.canonical_key()

    @settings(max_examples=50, deadline=None)
    @given(seed=st.integers(0, 100_000), size=st.integers(0, 10),
           num_layers=st.integers(1, 5))
    def test_prefix_counts_match_prefix_key(self, seed, size, num_layers):
        rng = np.random.default_rng(seed)
        splits = SplitAssignment.empty()
        for _ in range(size):
            layer = int(rng.integers(0, num_layers))
            unit = int(rng.integers(0, 6))
            if splits.is_decided(layer, unit):
                continue
            phase = ACTIVE if rng.random() < 0.5 else INACTIVE
            splits = splits.with_split(ReluSplit(layer, unit, phase))
        canonical = splits.canonical_key()
        counts = prefix_counts(canonical, num_layers)
        for layer in range(num_layers):
            assert canonical[:counts[layer]] == splits.prefix_key(layer)

    def test_split_delta_detects_one_split_extensions(self):
        parent = SplitAssignment.from_splits([ReluSplit(0, 1, ACTIVE),
                                              ReluSplit(1, 0, INACTIVE)])
        child = parent.with_split(ReluSplit(2, 3, ACTIVE))
        delta = split_delta(parent, child)
        assert delta == ReluSplit(2, 3, ACTIVE)
        # Rebuilt (breadcrumb-free) assignments are detected structurally.
        rebuilt = SplitAssignment.from_splits(list(child))
        assert split_delta(parent, rebuilt) == ReluSplit(2, 3, ACTIVE)
        # Not a one-split extension.
        assert split_delta(parent, parent) is None
        assert split_delta(None, child) is None
        grandchild = child.with_split(ReluSplit(3, 0, ACTIVE))
        assert split_delta(parent, grandchild) is None
        # A same-size assignment with a flipped phase is no extension.
        flipped = SplitAssignment.from_splits(
            [ReluSplit(0, 1, INACTIVE), ReluSplit(1, 0, INACTIVE),
             ReluSplit(2, 3, ACTIVE)])
        assert split_delta(parent, flipped) is None


class TestEndToEndEquality:
    @pytest.mark.parametrize("frontier_size", [1, 2, 8])
    def test_verifier_runs_identical_with_and_without_incremental(
            self, small_network, frontier_size):
        from repro.core.abonn import AbonnVerifier
        from repro.core.config import AbonnConfig
        from repro.utils.timing import Budget

        reference = np.array([0.45, 0.55, 0.5, 0.4])
        label = int(small_network.predict(reference.reshape(1, -1))[0])
        spec = local_robustness_spec(reference, 0.12, label, 3)
        results = {}
        for incremental in (False, True):
            config = AbonnConfig(frontier_size=frontier_size,
                                 incremental=incremental)
            results[incremental] = AbonnVerifier(config).verify(
                small_network, spec, Budget(max_nodes=96))
        baseline, observed = results[False], results[True]
        assert baseline.status == observed.status
        assert baseline.nodes_explored == observed.nodes_explored
        if baseline.counterexample is None:
            assert observed.counterexample is None
        else:
            np.testing.assert_array_equal(baseline.counterexample,
                                          observed.counterexample)
        assert observed.extras["bound_cache"]["delta_corrections"] >= 0
        assert "timings" in observed.extras
