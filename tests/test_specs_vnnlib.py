"""Tests for repro.specs.vnnlib (parser and writer)."""

import numpy as np
import pytest

from repro.specs.properties import InputBox, LinearOutputSpec, Specification
from repro.specs.robustness import local_robustness_spec
from repro.specs.vnnlib import (
    VnnLibError,
    load_vnnlib,
    parse_vnnlib,
    save_vnnlib,
    specification_to_vnnlib,
)

ROBUSTNESS_EXAMPLE = """
; a 2-input, 3-output robustness property (label 0)
(declare-const X_0 Real)
(declare-const X_1 Real)
(declare-const Y_0 Real)
(declare-const Y_1 Real)
(declare-const Y_2 Real)

(assert (>= X_0 0.1))
(assert (<= X_0 0.3))
(assert (>= X_1 0.4))
(assert (<= X_1 0.6))

(assert (or (and (<= Y_0 Y_1)) (and (<= Y_0 Y_2))))
"""


class TestParsing:
    def test_input_box(self):
        parsed = parse_vnnlib(ROBUSTNESS_EXAMPLE)
        np.testing.assert_allclose(parsed.input_lower, [0.1, 0.4])
        np.testing.assert_allclose(parsed.input_upper, [0.3, 0.6])

    def test_counts(self):
        parsed = parse_vnnlib(ROBUSTNESS_EXAMPLE)
        assert parsed.num_inputs == 2
        assert parsed.num_outputs == 3
        assert len(parsed.unsafe_disjuncts) == 2

    def test_specification_semantics(self):
        spec = parse_vnnlib(ROBUSTNESS_EXAMPLE).to_specification()
        # Safe when Y_0 strictly dominates the others.
        assert spec.output_spec.satisfied(np.array([2.0, 1.0, 0.0]))
        # Unsafe (violated) when some other class wins.
        assert not spec.output_spec.satisfied(np.array([0.0, 1.0, -1.0]))

    def test_reversed_bound_direction(self):
        text = ROBUSTNESS_EXAMPLE.replace("(assert (>= X_0 0.1))", "(assert (<= 0.1 X_0))")
        parsed = parse_vnnlib(text)
        np.testing.assert_allclose(parsed.input_lower[0], 0.1)

    def test_comments_ignored(self):
        parsed = parse_vnnlib("; leading comment\n" + ROBUSTNESS_EXAMPLE)
        assert parsed.num_inputs == 2

    def test_constant_output_constraint(self):
        text = """
(declare-const X_0 Real)
(declare-const Y_0 Real)
(assert (>= X_0 0.0))
(assert (<= X_0 1.0))
(assert (>= Y_0 3.5))
"""
        spec = parse_vnnlib(text).to_specification()
        # The unsafe region is Y_0 >= 3.5, so the property is Y_0 <= 3.5.
        assert spec.output_spec.satisfied(np.array([3.0]))
        assert not spec.output_spec.satisfied(np.array([4.0]))

    def test_missing_input_bound_rejected(self):
        text = """
(declare-const X_0 Real)
(declare-const Y_0 Real)
(assert (>= X_0 0.0))
(assert (>= Y_0 1.0))
"""
        with pytest.raises(VnnLibError):
            parse_vnnlib(text)

    def test_unbalanced_parenthesis_rejected(self):
        with pytest.raises(VnnLibError):
            parse_vnnlib("(assert (>= X_0 0.0)")

    def test_missing_outputs_rejected(self):
        with pytest.raises(VnnLibError):
            parse_vnnlib("(declare-const X_0 Real)\n(assert (>= X_0 0.0))")

    def test_multi_atom_disjunct_rejected_on_conversion(self):
        text = """
(declare-const X_0 Real)
(declare-const Y_0 Real)
(declare-const Y_1 Real)
(assert (>= X_0 0.0))
(assert (<= X_0 1.0))
(assert (or (and (<= Y_0 Y_1) (<= Y_0 0.5))))
"""
        parsed = parse_vnnlib(text)
        with pytest.raises(VnnLibError):
            parsed.to_specification()

    def test_no_output_constraints_rejected_on_conversion(self):
        text = """
(declare-const X_0 Real)
(declare-const Y_0 Real)
(assert (>= X_0 0.0))
(assert (<= X_0 1.0))
"""
        with pytest.raises(VnnLibError):
            parse_vnnlib(text).to_specification()


class TestWriting:
    def test_roundtrip_robustness_spec(self, tmp_path):
        reference = np.array([0.3, 0.6, 0.5])
        original = local_robustness_spec(reference, 0.1, label=1, num_classes=3)
        path = tmp_path / "prop.vnnlib"
        save_vnnlib(original, path)
        restored = load_vnnlib(path)
        np.testing.assert_allclose(restored.input_box.lower, original.input_box.lower)
        np.testing.assert_allclose(restored.input_box.upper, original.input_box.upper)
        # Same satisfaction behaviour on a few outputs.
        for logits in (np.array([0.0, 1.0, 0.5]), np.array([2.0, 0.0, 0.0]),
                       np.array([0.0, 0.3, 0.8])):
            assert (restored.output_spec.satisfied(logits)
                    == original.output_spec.satisfied(logits))

    def test_single_output_constraint_written(self, tmp_path):
        spec = Specification(InputBox([0.0], [1.0]),
                             LinearOutputSpec(np.array([[1.0]]), np.array([-2.0])))
        text = specification_to_vnnlib(spec)
        assert "Y_0" in text
        restored = parse_vnnlib(text).to_specification()
        assert restored.output_spec.satisfied(np.array([3.0]))
        assert not restored.output_spec.satisfied(np.array([1.0]))

    def test_unwritable_constraint_rejected(self):
        spec = Specification(InputBox([0.0], [1.0]),
                             LinearOutputSpec(np.array([[1.0, 2.0]]), np.array([0.0])))
        with pytest.raises(VnnLibError):
            specification_to_vnnlib(spec)
