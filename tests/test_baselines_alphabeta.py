"""Tests for repro.baselines.alphabeta_crown."""

import numpy as np
import pytest

from repro.baselines.alphabeta_crown import AlphaBetaCrownVerifier
from repro.bounds.alpha_crown import AlphaCrownConfig
from repro.specs.robustness import local_robustness_spec
from repro.utils import Budget
from repro.verifiers.attack import AttackConfig
from repro.verifiers.milp import MilpVerifier
from repro.verifiers.result import VerificationStatus


def problem(network, reference, epsilon):
    reference = np.asarray(reference, dtype=float)
    label = int(network.predict(reference.reshape(1, -1))[0])
    return local_robustness_spec(reference, epsilon, label, network.output_dim)


class TestAlphaBetaCrown:
    def test_verifies_small_epsilon(self, small_network):
        spec = problem(small_network, [0.4, 0.5, 0.6, 0.3], 1e-3)
        result = AlphaBetaCrownVerifier().verify(small_network, spec,
                                                 Budget(max_nodes=200))
        assert result.status == VerificationStatus.VERIFIED

    def test_attack_falsifies_fragile_problem_quickly(self, trained_network):
        network, dataset = trained_network
        image, label = dataset.sample(28)
        spec = local_robustness_spec(image.reshape(-1), 0.9, label, dataset.num_classes)
        result = AlphaBetaCrownVerifier().verify(network, spec, Budget(max_nodes=300))
        assert result.status == VerificationStatus.FALSIFIED
        assert spec.is_counterexample(network, result.counterexample)
        # The PGD pre-pass should dispatch it within a couple of node charges.
        assert result.nodes_explored <= 2

    @pytest.mark.parametrize("epsilon", [0.05, 0.2])
    def test_agrees_with_milp_oracle(self, epsilon, trained_network):
        network, dataset = trained_network
        image, label = dataset.sample(29)
        spec = local_robustness_spec(image.reshape(-1), epsilon, label,
                                     dataset.num_classes)
        oracle = MilpVerifier().verify(network, spec)
        result = AlphaBetaCrownVerifier().verify(network, spec, Budget(max_nodes=3000))
        if result.solved and oracle.solved:
            assert result.status == oracle.status

    def test_alpha_crown_root_charge_reflected_in_node_count(self, trained_network):
        network, dataset = trained_network
        image, label = dataset.sample(30)
        spec = local_robustness_spec(image.reshape(-1), 0.05, label, dataset.num_classes)
        config = AlphaCrownConfig(iterations=4)
        result = AlphaBetaCrownVerifier(alpha_config=config).verify(
            network, spec, Budget(max_nodes=500))
        if result.status == VerificationStatus.VERIFIED and result.tree_size <= 20:
            # Root-only verification still charges the α-CROWN iterations.
            assert result.nodes_explored >= 2 + 3 * config.iterations

    def test_respects_budget(self, trained_network):
        network, dataset = trained_network
        image, label = dataset.sample(31)
        spec = local_robustness_spec(image.reshape(-1), 0.25, label, dataset.num_classes)
        result = AlphaBetaCrownVerifier().verify(network, spec, Budget(max_nodes=40))
        assert result.nodes_explored <= 60

    def test_custom_attack_config_is_used(self, small_network):
        spec = problem(small_network, [0.4, 0.5, 0.6, 0.3], 0.05)
        verifier = AlphaBetaCrownVerifier(attack_config=AttackConfig(steps=2, restarts=1))
        result = verifier.verify(small_network, spec, Budget(max_nodes=200))
        assert result.status in (VerificationStatus.VERIFIED, VerificationStatus.FALSIFIED,
                                 VerificationStatus.TIMEOUT)

    def test_extras_record_configuration(self, small_network):
        spec = problem(small_network, [0.4, 0.5, 0.6, 0.3], 0.05)
        result = AlphaBetaCrownVerifier(heuristic="babsr").verify(
            small_network, spec, Budget(max_nodes=200))
        assert result.extras["heuristic"] == "babsr"
        assert "alpha_iterations" in result.extras
