"""Contract suite of the verification service scheduler.

The service's core promise: multiplexing many jobs over one process never
changes any job's answer.  The property-based tests here submit random job
mixes (problems, priorities, pool sizes, slice lengths) and require every
job's verdict, node charges, tree size, bound and counterexample to be
byte-identical to a solo run of a fresh verifier on a fresh driver.  On
top of that, the scheduling policy itself is pinned: priorities order work
but never starve (bounded wait), and deadlines are honoured within one
round's granularity.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.abonn import AbonnVerifier
from repro.nn import dense_network
from repro.service import JobRequest, ServiceConfig, VerificationService
from repro.utils import Budget
from repro.verifiers.result import VerificationStatus

from conftest import make_robustness_problem

#: Node-only budgets keep solo and multiplexed trajectories deterministic
#: (wall-clock budgets would see the time spent preempted, as documented).
BUDGET_NODES = 60


def _problems():
    """A small bank of distinct problems (distinct fingerprints)."""
    bank = []
    for seed, shape, reference, epsilon in (
            (1, [4, 8, 6, 3], [0.45, 0.55, 0.5, 0.4], 0.08),
            (1, [4, 8, 6, 3], [0.45, 0.55, 0.5, 0.4], 0.15),
            (1, [6, 10, 8, 4], [0.5] * 6, 0.1),
            (3, [3, 8, 8, 3], [0.4, 0.6, 0.5], 0.12),
    ):
        network = dense_network(shape, seed=seed)
        bank.append((network, make_robustness_problem(network, reference,
                                                      epsilon)))
    return bank


PROBLEMS = _problems()


def _solo(problem_index: int):
    network, spec = PROBLEMS[problem_index]
    return AbonnVerifier().verify(network, spec, Budget(max_nodes=BUDGET_NODES))


SOLO_RESULTS = [_solo(index) for index in range(len(PROBLEMS))]


def _assert_identical(result, solo) -> None:
    assert result.status == solo.status
    assert result.nodes_explored == solo.nodes_explored
    assert result.tree_size == solo.tree_size
    if solo.bound is None:
        assert result.bound is None
    else:
        assert result.bound == solo.bound
    if solo.counterexample is None:
        assert result.counterexample is None
    else:
        assert result.counterexample.tobytes() == solo.counterexample.tobytes()


class TestSoloIdentical:
    @settings(max_examples=20, deadline=None)
    @given(jobs=st.lists(st.tuples(st.integers(0, len(PROBLEMS) - 1),
                                   st.integers(-5, 5)),
                         min_size=1, max_size=8),
           pool_size=st.sampled_from((1, 2, 4)),
           rounds_per_slice=st.integers(1, 6))
    def test_random_mixes_match_solo_runs(self, jobs, pool_size,
                                          rounds_per_slice):
        """Any mix at any pool size: every verdict/charge/cex solo-identical."""
        service = VerificationService(ServiceConfig(
            pool_size=pool_size, rounds_per_slice=rounds_per_slice))
        job_ids = []
        for problem_index, priority in jobs:
            network, spec = PROBLEMS[problem_index]
            job_ids.append(service.submit(
                network, spec, budget=Budget(max_nodes=BUDGET_NODES),
                priority=priority))
        completed = {done.job_id: done for done in service.as_completed()}
        assert set(completed) == set(job_ids)
        for (problem_index, _), job_id in zip(jobs, job_ids):
            done = completed[job_id]
            assert done.ok, f"job failed: {done.error}"
            _assert_identical(done.result, SOLO_RESULTS[problem_index])

    def test_run_until_complete_orders_by_submission(self):
        service = VerificationService(ServiceConfig(pool_size=2))
        network, spec = PROBLEMS[0]
        ids = [service.submit(network, spec,
                              budget=Budget(max_nodes=BUDGET_NODES),
                              priority=priority)
               for priority in (0, 9, 3)]
        results = service.run_until_complete()
        assert [done.job_id for done in results] == ids

    def test_stream_results_accepts_requests(self):
        service = VerificationService(ServiceConfig(pool_size=1))
        network, spec = PROBLEMS[1]
        requests = [JobRequest(network=network, spec=spec,
                               budget=Budget(max_nodes=BUDGET_NODES))
                    for _ in range(3)]
        seen = list(service.stream_results(requests))
        assert len(seen) == 3
        for done in seen:
            _assert_identical(done.result, SOLO_RESULTS[1])


class TestBoundedWait:
    def test_priorities_order_work_within_a_worker(self):
        """With one worker, the high-priority job finishes first."""
        service = VerificationService(ServiceConfig(pool_size=1,
                                                    rounds_per_slice=1))
        network, spec = PROBLEMS[0]
        low = service.submit(network, spec,
                             budget=Budget(max_nodes=BUDGET_NODES), priority=0)
        high = service.submit(network, spec,
                              budget=Budget(max_nodes=BUDGET_NODES), priority=5)
        order = [done.job_id for done in service.as_completed()]
        assert order.index(high) < order.index(low)

    @settings(max_examples=10, deadline=None)
    @given(max_wait=st.integers(1, 4), rivals=st.integers(2, 5))
    def test_low_priority_job_is_never_starved(self, max_wait, rivals):
        """A continuous stream of high-priority rivals cannot starve a job.

        New rivals are injected every slice; the low-priority job must
        still run within ``max_wait_slices`` slices of any point in time,
        so it finishes long before the (endless) rival stream drains.
        """
        service = VerificationService(ServiceConfig(
            pool_size=1, rounds_per_slice=1, max_wait_slices=max_wait))
        network, spec = PROBLEMS[2]
        low = service.submit(network, spec,
                             budget=Budget(max_nodes=BUDGET_NODES), priority=0)
        for _ in range(rivals):
            service.submit(network, spec,
                           budget=Budget(max_nodes=BUDGET_NODES), priority=10)
        slices = 0
        while service.result(low) is None:
            # Keep the pressure on: one fresh high-priority rival per slice.
            service.submit(network, spec,
                           budget=Budget(max_nodes=BUDGET_NODES), priority=10)
            service.step()
            slices += 1
            assert slices < 500, "low-priority job starved"
        done = service.result(low)
        assert done.ok
        # Bounded wait: the low job is the oldest submission, so between two
        # of its slices at most max_wait_slices slices go to rivals.
        assert done.wait_slices <= done.slices * max_wait
        _assert_identical(done.result, SOLO_RESULTS[2])


class TestDeadlines:
    def test_expired_deadline_times_out_within_one_slice(self):
        service = VerificationService(ServiceConfig(pool_size=1))
        network, spec = PROBLEMS[0]
        job_id = service.submit(network, spec,
                                budget=Budget(max_nodes=BUDGET_NODES),
                                deadline_seconds=1e-9)
        done = next(iter(service.as_completed()))
        assert done.job_id == job_id
        assert done.deadline_exceeded
        assert done.result.status == VerificationStatus.TIMEOUT
        assert done.slices == 1  # honoured before the first round

    def test_generous_deadline_does_not_disturb_the_run(self):
        service = VerificationService(ServiceConfig(pool_size=1))
        network, spec = PROBLEMS[0]
        job_id = service.submit(network, spec,
                                budget=Budget(max_nodes=BUDGET_NODES),
                                deadline_seconds=3600.0)
        done = next(iter(service.as_completed()))
        assert done.job_id == job_id
        assert not done.deadline_exceeded
        _assert_identical(done.result, SOLO_RESULTS[0])

    def test_mid_run_deadline_interrupts_with_best_bound(self):
        """A deadline that expires mid-run yields TIMEOUT with a bound."""
        service = VerificationService(ServiceConfig(pool_size=1,
                                                    rounds_per_slice=1))
        network, spec = PROBLEMS[1]
        job_id = service.submit(network, spec,
                                budget=Budget(max_nodes=10_000),
                                deadline_seconds=0.5)
        while service.result(job_id) is None:
            service.step()
        done = service.result(job_id)
        assert done.ok
        if done.deadline_exceeded:
            assert done.result.status == VerificationStatus.TIMEOUT

    def test_invalid_deadline_rejected(self):
        service = VerificationService()
        network, spec = PROBLEMS[0]
        with pytest.raises(ValueError):
            service.submit(network, spec, deadline_seconds=0.0)


class TestSchedulerPlumbing:
    def test_step_without_work_returns_none(self):
        service = VerificationService()
        assert service.step() is None
        assert not service.has_pending()

    def test_result_raises_for_unknown_job(self):
        service = VerificationService()
        with pytest.raises(KeyError):
            service.result("job-404")

    def test_stats_counts_jobs_and_slices(self):
        service = VerificationService(ServiceConfig(pool_size=2))
        network, spec = PROBLEMS[0]
        for _ in range(3):
            service.submit(network, spec,
                           budget=Budget(max_nodes=BUDGET_NODES))
        service.run_until_complete()
        stats = service.stats()
        assert stats["jobs_submitted"] == 3
        assert stats["jobs_completed"] == 3
        assert stats["jobs_failed"] == 0
        assert stats["slices"] >= 3
        assert stats["pool"]["fingerprints"] == 1

    def test_sharding_keeps_a_fingerprint_on_one_worker(self):
        """Same fingerprint, same worker index at every pool size."""
        network, spec = PROBLEMS[0]
        for pool_size in (1, 2, 4):
            service = VerificationService(ServiceConfig(pool_size=pool_size))
            ids = [service.submit(network, spec,
                                  budget=Budget(max_nodes=BUDGET_NODES))
                   for _ in range(3)]
            workers = {service._jobs[job_id].worker for job_id in ids}
            assert len(workers) == 1
